//! The fleet scheduler: fans session specs out to a worker-thread pool
//! over a bounded channel (backpressure), executes each with
//! failover-on-down-node, and aggregates the outcomes.

use std::time::Instant;

use crossbeam::channel;
use tinman_obs::{MetricsRegistry, TraceEvent, TraceHandle};
use tinman_sim::{SimDuration, SimTime};

use crate::failure::{backoff_delay, degraded_link, FleetError, NodeHealth};
use crate::pool::NodePool;
use crate::report::FleetReport;
use crate::session::{base_link, outcome_from_report, run_session_traced, SessionOutcome};
use crate::spec::{build_session_specs, FleetConfig, SessionSpec};

/// Observability wiring for a fleet run: a trace emitter shared by the
/// scheduler and every session runtime, plus the fleet-level metrics
/// registry ([`FleetReport`] reads `fleet.attempts` / `fleet.failovers`
/// out of it). The default is fully disabled tracing and a fresh
/// registry — the configuration the determinism tests pin down.
#[derive(Clone, Debug, Default)]
pub struct FleetObs {
    /// Trace emitter. Scheduler events (placement, failover, backoff,
    /// pool clamp) and each session's runtime events share the sink;
    /// session `spec.id` is the track.
    pub trace: TraceHandle,
    /// Fleet-level counters and histograms. Counter sums commute across
    /// worker threads, so registry-sourced report fields stay
    /// deterministic at any worker count.
    pub metrics: MetricsRegistry,
}

/// Runs one session with the fleet's retry policy: walk the replica
/// order, skip nodes that cannot serve — `Down`, or `CatchingUp` on a
/// stale vault — charging simulated backoff, run on the first live node,
/// degrade the link when that node is `Degraded`.
///
/// With a static [`crate::failure::FaultPlan`] this is a pure function of
/// `(cfg, spec, pool topology)` — no wall-clock state feeds the result.
pub fn execute_with_failover(
    cfg: &FleetConfig,
    pool: &NodePool,
    spec: &SessionSpec,
) -> SessionOutcome {
    execute_with_failover_obs(cfg, pool, spec, &FleetObs::default())
}

/// [`execute_with_failover`] with observability: emits
/// `fleet_placement` / `fleet_failover` / `fleet_backoff` events on the
/// session's track (stamped with the session's accumulated simulated
/// backoff — each session runs on its own simulated timeline) and keeps
/// the `fleet.*` counters.
pub fn execute_with_failover_obs(
    cfg: &FleetConfig,
    pool: &NodePool,
    spec: &SessionSpec,
    obs: &FleetObs,
) -> SessionOutcome {
    let order = pool.replica_order(spec.placement_key());
    let mut penalty = SimDuration::ZERO;
    let mut attempts = 0u32;
    for (i, &node) in order.iter().take(cfg.max_attempts as usize).enumerate() {
        attempts += 1;
        obs.metrics.incr("fleet.attempts");
        if i > 0 {
            // A retry: the previous placement was skipped or failed.
            obs.metrics.incr("fleet.failovers");
        }
        // A vanished shard (stale order naming a decommissioned index)
        // is treated as an unservable node, never a panic.
        let shard = pool.try_shard(node).ok().map(|s| (s, s.health()));
        let Some((shard, health)) = shard.filter(|&(_, h)| h.can_serve()) else {
            let delay = backoff_delay(cfg.backoff, i as u32);
            penalty += delay;
            obs.metrics.add("fleet.backoff_ns", delay.as_nanos());
            if obs.trace.is_enabled() {
                let t = SimTime::ZERO + penalty;
                obs.trace.emit_on(
                    spec.id,
                    t,
                    TraceEvent::FleetFailover {
                        session: spec.id,
                        node: node as u64,
                        attempt: i as u32,
                    },
                );
                obs.trace.emit_on(
                    spec.id,
                    t,
                    TraceEvent::FleetBackoff {
                        session: spec.id,
                        attempt: i as u32,
                        delay_ns: delay.as_nanos(),
                    },
                );
            }
            continue;
        };
        let base = base_link(spec.link);
        let link = if health == NodeHealth::Degraded { degraded_link(&base) } else { base };
        if obs.trace.is_enabled() {
            obs.trace.emit_on(
                spec.id,
                SimTime::ZERO + penalty,
                TraceEvent::FleetPlacement { session: spec.id, node: node as u64 },
            );
        }
        // Admission control: wall-clock flow only, no simulated effect.
        let _permit = shard.acquire();
        match run_session_traced(spec, (shard.label_start, shard.label_end), link, &obs.trace) {
            Ok(report) => {
                obs.metrics
                    .observe("fleet.session_latency_ns", (report.latency + penalty).as_nanos());
                return outcome_from_report(spec, node, attempts, penalty, &report);
            }
            Err(_) => {
                let delay = backoff_delay(cfg.backoff, i as u32);
                penalty += delay;
                obs.metrics.add("fleet.backoff_ns", delay.as_nanos());
            }
        }
    }
    SessionOutcome::failed(spec.id, attempts, penalty)
}

/// Drives `cfg.sessions` device sessions across `cfg.workers` threads
/// against a fresh node pool and returns the aggregated report.
///
/// The simulated aggregate ([`FleetReport::simulated_value`]) is
/// bit-identical for any worker count: every session's result depends
/// only on its spec and its (deterministic) placement, outcomes are
/// re-sorted by session id before aggregation, and wall-clock never
/// enters the simulated fields.
pub fn run_fleet(cfg: &FleetConfig) -> Result<FleetReport, FleetError> {
    run_fleet_obs(cfg, &FleetObs::default())
}

/// Feeds specs into the bounded queue. A `send` only fails when every
/// worker has exited — with specs still unsent that means a worker
/// panicked, so the producer stops quietly and lets the pool join
/// re-raise the worker's own panic instead of masking it with a
/// producer-side `expect` (the old behavior buried the real backtrace).
/// Returns how many specs were enqueued.
fn feed_specs(spec_tx: &channel::Sender<SessionSpec>, specs: Vec<SessionSpec>) -> usize {
    let mut sent = 0;
    for spec in specs {
        if spec_tx.send(spec).is_err() {
            break;
        }
        sent += 1;
    }
    sent
}

/// Fans `specs` out to `workers` threads over a bounded queue
/// (backpressure) and collects every outcome. If a worker panics, its
/// original panic payload is re-raised here — not swallowed by a failed
/// `send` on the producer side, and not replaced by `thread::scope`'s
/// generic "a scoped thread panicked".
pub(crate) fn run_worker_pool<F>(
    workers: usize,
    queue_depth: usize,
    specs: Vec<SessionSpec>,
    work: F,
) -> Vec<SessionOutcome>
where
    F: Fn(SessionSpec) -> SessionOutcome + Sync,
{
    let (spec_tx, spec_rx) = channel::bounded::<SessionSpec>(queue_depth.max(1));
    let (out_tx, out_rx) = channel::unbounded::<SessionOutcome>();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..workers.max(1) {
            let rx = spec_rx.clone();
            let tx = out_tx.clone();
            let work = &work;
            handles.push(s.spawn(move || {
                for spec in rx.iter() {
                    let _ = tx.send(work(spec));
                }
            }));
        }
        drop(spec_rx);
        drop(out_tx);
        feed_specs(&spec_tx, specs);
        drop(spec_tx);
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    out_rx.iter().collect()
}

/// Surfaces a clamped pool build: stderr warning, `fleet.pool_clamped`
/// counter, and a `pool_clamp` trace event. Shared by the clean and
/// chaos schedulers.
pub(crate) fn surface_clamp(pool: &NodePool, obs: &FleetObs) {
    if !pool.was_clamped() {
        return;
    }
    eprintln!(
        "tinman-fleet: requested {} nodes but the label space only supports {}; \
         running with {} shards",
        pool.requested_nodes(),
        NodePool::max_nodes(),
        pool.len()
    );
    obs.metrics.incr("fleet.pool_clamped");
    if obs.trace.is_enabled() {
        obs.trace.emit_on(
            0,
            SimTime::ZERO,
            TraceEvent::PoolClamp {
                requested: pool.requested_nodes() as u64,
                effective: pool.len() as u64,
            },
        );
    }
}

/// [`run_fleet`] with observability: scheduler and session events land in
/// `obs.trace`, and the report's `attempts` / `failovers` are read back
/// from `obs.metrics` (registry deltas) rather than recomputed — the
/// registry is the source of truth the outcomes merely mirror.
///
/// Fails without running anything if the config's fault plan names nodes
/// outside the (post-clamp) pool.
pub fn run_fleet_obs(cfg: &FleetConfig, obs: &FleetObs) -> Result<FleetReport, FleetError> {
    let specs = build_session_specs(cfg);
    let pool = NodePool::new(cfg.nodes, cfg.node_capacity, &cfg.faults)?;
    surface_clamp(&pool, obs);
    // Snapshot the registry so report fields are per-run deltas even when
    // the caller reuses one registry across several fleet runs.
    let attempts_start = obs.metrics.get("fleet.attempts");
    let failovers_start = obs.metrics.get("fleet.failovers");
    let start = Instant::now();

    let mut outcomes = run_worker_pool(cfg.workers, cfg.queue_depth, specs, |spec| {
        execute_with_failover_obs(cfg, &pool, &spec, obs)
    });

    let wall_secs = start.elapsed().as_secs_f64();
    outcomes.sort_by_key(|o| o.id);
    let mut report = FleetReport::aggregate(cfg, &pool, outcomes, wall_secs);
    // The scheduler counted every attempt and retry as it made them;
    // surface those registry deltas instead of the outcome-derived sums
    // (they agree by construction — `registry_and_outcomes_agree` pins it).
    report.attempts = obs.metrics.get("fleet.attempts") - attempts_start;
    report.failovers = obs.metrics.get("fleet.failovers") - failovers_start;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FaultPlan;

    #[test]
    fn small_fleet_completes_every_session() {
        let mut cfg = FleetConfig::new(12, 4);
        cfg.queue_depth = 2; // exercise backpressure
        let report = run_fleet(&cfg).expect("fleet runs");
        assert_eq!(report.sessions, 12);
        assert_eq!(report.ok, 12, "all sessions succeed on a healthy pool");
        assert_eq!(report.failovers, 0);
        assert!(report.offloads >= 12, "every workload offloads at least once");
        assert_eq!(report.outcomes.len(), 12);
        assert!(report.outcomes.windows(2).all(|w| w[0].id < w[1].id), "sorted by id");
    }

    #[test]
    fn down_primary_fails_over_to_replica() {
        let mut cfg = FleetConfig::new(6, 2);
        cfg.nodes = 2;
        cfg.faults = FaultPlan { down_nodes: vec![0], slow_nodes: vec![] };
        let report = run_fleet(&cfg).expect("fleet runs");
        assert_eq!(report.ok, 6, "replica absorbs the downed node's sessions");
        let served_by_down: u64 =
            report.outcomes.iter().filter(|o| o.node == Some(0)).count() as u64;
        assert_eq!(served_by_down, 0, "nothing runs on the downed node");
        assert!(report.failovers > 0, "some primaries were down");
        // Failed-over sessions carry the simulated backoff penalty.
        let penalized = report.outcomes.iter().find(|o| o.attempts > 1).expect("a failover");
        assert!(penalized.latency >= cfg.backoff);
    }

    #[test]
    fn rejoining_node_serves_nothing_while_behind() {
        let mut cfg = FleetConfig::new(6, 2);
        cfg.nodes = 2;
        cfg.faults = FaultPlan { down_nodes: vec![0], slow_nodes: vec![] };
        let pool = NodePool::new(cfg.nodes, cfg.node_capacity, &cfg.faults).unwrap();
        // While node 0 was down, node 1's vault advanced.
        pool.set_watermark(1, 9).unwrap();
        // Node 0 comes back — but behind, so the rejoin gates it.
        pool.set_health(0, NodeHealth::Healthy).unwrap();
        assert_eq!(pool.shard(0).health(), NodeHealth::CatchingUp);
        let obs = FleetObs::default();
        for spec in build_session_specs(&cfg) {
            let out = execute_with_failover_obs(&cfg, &pool, &spec, &obs);
            assert!(out.success);
            assert_ne!(out.node, Some(0), "a catching-up node must not serve session {}", out.id);
        }
        // After anti-entropy the node serves again.
        pool.catch_up(0).unwrap();
        assert_eq!(pool.shard(0).health(), NodeHealth::Healthy);
        let spec = build_session_specs(&cfg).remove(0);
        let out = execute_with_failover_obs(&cfg, &pool, &spec, &obs);
        assert!(out.success);
    }

    #[test]
    fn all_nodes_down_reports_failures_not_panics() {
        let mut cfg = FleetConfig::new(3, 2);
        cfg.nodes = 2;
        cfg.faults = FaultPlan { down_nodes: vec![0, 1], slow_nodes: vec![] };
        let report = run_fleet(&cfg).expect("fleet runs");
        assert_eq!(report.ok, 0);
        assert_eq!(report.failed, 3);
        assert!(report.outcomes.iter().all(|o| !o.success && o.node.is_none()));
    }

    #[test]
    fn worker_panic_is_propagated_not_masked() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // Enough specs that the producer is still feeding the bounded
        // queue when the lone worker dies on the first one — the old
        // `send(..).expect(..)` producer panicked here with its own
        // message, burying the worker's.
        let specs = build_session_specs(&FleetConfig::new(64, 1));
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_worker_pool(1, 1, specs, |_spec| panic!("worker died mid-session"))
        }));
        let payload = result.expect_err("the worker panic must surface");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(
            msg, "worker died mid-session",
            "the producer masked the worker's panic with its own"
        );
    }

    #[test]
    fn registry_and_outcomes_agree() {
        let mut cfg = FleetConfig::new(6, 2);
        cfg.nodes = 2;
        cfg.faults = FaultPlan { down_nodes: vec![0], slow_nodes: vec![] };
        let obs = FleetObs::default();
        let report = run_fleet_obs(&cfg, &obs).expect("fleet runs");
        let attempts: u64 = report.outcomes.iter().map(|o| u64::from(o.attempts)).sum();
        let failovers: u64 = report.outcomes.iter().map(|o| u64::from(o.attempts) - 1).sum();
        assert_eq!(report.attempts, attempts, "registry delta == outcome-derived attempts");
        assert_eq!(report.failovers, failovers, "registry delta == outcome-derived failovers");
        assert_eq!(report.attempts, obs.metrics.get("fleet.attempts"));
        assert!(report.failovers > 0, "the downed primary forces failovers");
    }

    #[test]
    fn fleet_trace_records_placements_and_failovers() {
        let (handle, sink) = TraceHandle::ring(4096);
        let obs = FleetObs { trace: handle, metrics: MetricsRegistry::default() };
        let mut cfg = FleetConfig::new(4, 1);
        cfg.nodes = 2;
        cfg.faults = FaultPlan { down_nodes: vec![0], slow_nodes: vec![] };
        let report = run_fleet_obs(&cfg, &obs).expect("fleet runs");
        assert_eq!(report.ok, 4);
        let records = sink.snapshot();
        let count = |name: &str| records.iter().filter(|r| r.event.name() == name).count() as u64;
        assert_eq!(count("fleet_placement"), report.ok);
        assert_eq!(count("fleet_failover"), report.failovers);
        assert_eq!(count("fleet_backoff"), report.failovers);
        assert!(
            records.iter().any(|r| r.event.name() == "offload_trigger"),
            "session runtime events share the fleet sink"
        );
    }

    #[test]
    fn degraded_node_still_serves_but_slower() {
        let mut base = FleetConfig::new(4, 2);
        base.nodes = 1;
        let healthy = run_fleet(&base).expect("fleet runs");

        let mut slow = base.clone();
        slow.faults = FaultPlan { down_nodes: vec![], slow_nodes: vec![0] };
        let degraded = run_fleet(&slow).expect("fleet runs");

        assert_eq!(degraded.ok, 4);
        assert!(
            degraded.latency.mean > healthy.latency.mean,
            "degraded link must cost simulated time: {:?} vs {:?}",
            degraded.latency.mean,
            healthy.latency.mean
        );
    }
}
