//! The fleet scheduler: fans session specs out to a worker-thread pool
//! over a bounded channel (backpressure), executes each with
//! failover-on-down-node, and aggregates the outcomes.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;
use tinman_sim::SimDuration;

use crate::failure::{backoff_delay, degraded_link, NodeHealth};
use crate::pool::NodePool;
use crate::report::FleetReport;
use crate::session::{base_link, outcome_from_report, run_session, SessionOutcome};
use crate::spec::{build_session_specs, FleetConfig, SessionSpec};

/// Runs one session with the fleet's retry policy: walk the replica
/// order, skip `Down` nodes (charging simulated backoff), run on the
/// first live node, degrade the link when that node is `Degraded`.
///
/// With a static [`crate::failure::FaultPlan`] this is a pure function of
/// `(cfg, spec, pool topology)` — no wall-clock state feeds the result.
pub fn execute_with_failover(
    cfg: &FleetConfig,
    pool: &NodePool,
    spec: &SessionSpec,
) -> SessionOutcome {
    let order = pool.replica_order(spec.placement_key());
    let mut penalty = SimDuration::ZERO;
    let mut attempts = 0u32;
    for (i, &node) in order.iter().take(cfg.max_attempts as usize).enumerate() {
        attempts += 1;
        let shard = pool.shard(node);
        let health = shard.health();
        if health == NodeHealth::Down {
            penalty += backoff_delay(cfg.backoff, i as u32);
            continue;
        }
        let base = base_link(spec.link);
        let link = if health == NodeHealth::Degraded { degraded_link(&base) } else { base };
        // Admission control: wall-clock flow only, no simulated effect.
        let _permit = shard.acquire();
        match run_session(spec, (shard.label_start, shard.label_end), link) {
            Ok(report) => return outcome_from_report(spec, node, attempts, penalty, &report),
            Err(_) => {
                penalty += backoff_delay(cfg.backoff, i as u32);
            }
        }
    }
    SessionOutcome::failed(spec.id, attempts, penalty)
}

/// Drives `cfg.sessions` device sessions across `cfg.workers` threads
/// against a fresh node pool and returns the aggregated report.
///
/// The simulated aggregate ([`FleetReport::simulated_value`]) is
/// bit-identical for any worker count: every session's result depends
/// only on its spec and its (deterministic) placement, outcomes are
/// re-sorted by session id before aggregation, and wall-clock never
/// enters the simulated fields.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    let specs = build_session_specs(cfg);
    let pool = Arc::new(NodePool::new(cfg.nodes, cfg.node_capacity, &cfg.faults));
    let start = Instant::now();

    let (spec_tx, spec_rx) = channel::bounded::<SessionSpec>(cfg.queue_depth.max(1));
    let (out_tx, out_rx) = channel::unbounded::<SessionOutcome>();

    std::thread::scope(|s| {
        for _ in 0..cfg.workers.max(1) {
            let rx = spec_rx.clone();
            let tx = out_tx.clone();
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                for spec in rx.iter() {
                    let outcome = execute_with_failover(cfg, &pool, &spec);
                    let _ = tx.send(outcome);
                }
            });
        }
        drop(spec_rx);
        drop(out_tx);
        for spec in specs {
            spec_tx.send(spec).expect("a worker is always draining the queue");
        }
        drop(spec_tx);
    });

    let wall_secs = start.elapsed().as_secs_f64();
    let mut outcomes: Vec<SessionOutcome> = out_rx.iter().collect();
    outcomes.sort_by_key(|o| o.id);
    FleetReport::aggregate(cfg, &pool, outcomes, wall_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FaultPlan;

    #[test]
    fn small_fleet_completes_every_session() {
        let mut cfg = FleetConfig::new(12, 4);
        cfg.queue_depth = 2; // exercise backpressure
        let report = run_fleet(&cfg);
        assert_eq!(report.sessions, 12);
        assert_eq!(report.ok, 12, "all sessions succeed on a healthy pool");
        assert_eq!(report.failovers, 0);
        assert!(report.offloads >= 12, "every workload offloads at least once");
        assert_eq!(report.outcomes.len(), 12);
        assert!(report.outcomes.windows(2).all(|w| w[0].id < w[1].id), "sorted by id");
    }

    #[test]
    fn down_primary_fails_over_to_replica() {
        let mut cfg = FleetConfig::new(6, 2);
        cfg.nodes = 2;
        cfg.faults = FaultPlan { down_nodes: vec![0], slow_nodes: vec![] };
        let report = run_fleet(&cfg);
        assert_eq!(report.ok, 6, "replica absorbs the downed node's sessions");
        let served_by_down: u64 =
            report.outcomes.iter().filter(|o| o.node == Some(0)).count() as u64;
        assert_eq!(served_by_down, 0, "nothing runs on the downed node");
        assert!(report.failovers > 0, "some primaries were down");
        // Failed-over sessions carry the simulated backoff penalty.
        let penalized = report.outcomes.iter().find(|o| o.attempts > 1).expect("a failover");
        assert!(penalized.latency >= cfg.backoff);
    }

    #[test]
    fn all_nodes_down_reports_failures_not_panics() {
        let mut cfg = FleetConfig::new(3, 2);
        cfg.nodes = 2;
        cfg.faults = FaultPlan { down_nodes: vec![0, 1], slow_nodes: vec![] };
        let report = run_fleet(&cfg);
        assert_eq!(report.ok, 0);
        assert_eq!(report.failed, 3);
        assert!(report.outcomes.iter().all(|o| !o.success && o.node.is_none()));
    }

    #[test]
    fn degraded_node_still_serves_but_slower() {
        let mut base = FleetConfig::new(4, 2);
        base.nodes = 1;
        let healthy = run_fleet(&base);

        let mut slow = base.clone();
        slow.faults = FaultPlan { down_nodes: vec![], slow_nodes: vec![0] };
        let degraded = run_fleet(&slow);

        assert_eq!(degraded.ok, 4);
        assert!(
            degraded.latency.mean > healthy.latency.mean,
            "degraded link must cost simulated time: {:?} vs {:?}",
            degraded.latency.mean,
            healthy.latency.mean
        );
    }
}
