//! Taint labels and label sets.
//!
//! Each cor is assigned a unique [`Label`]. A [`TaintSet`] is the set of
//! labels attached to a value, represented as a 64-bit bitmask — the same
//! representation TaintDroid uses for its 32 taint markings, widened to 64.
//! Up to [`Label::MAX_LABELS`] distinct cors can exist per trusted node,
//! which comfortably covers the paper's observation that a typical user has
//! fewer than five passwords.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A taint label identifying one cor. Valid labels are `0..MAX_LABELS`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(u8);

impl Label {
    /// Number of distinct labels representable in a [`TaintSet`].
    pub const MAX_LABELS: u8 = 64;

    /// Creates a label, or `None` if `id >= MAX_LABELS`.
    pub fn new(id: u8) -> Option<Label> {
        (id < Self::MAX_LABELS).then_some(Label(id))
    }

    /// The label's numeric id.
    pub fn id(self) -> u8 {
        self.0
    }

    /// The singleton taint set containing only this label.
    pub fn as_set(self) -> TaintSet {
        TaintSet(1u64 << self.0)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A set of taint labels, stored as a bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TaintSet(u64);

impl TaintSet {
    /// The empty (untainted) set.
    pub const EMPTY: TaintSet = TaintSet(0);

    /// Constructs directly from a bitmask. Bits above `MAX_LABELS` are kept
    /// verbatim (the mask is 64 bits wide, so all bits are valid labels).
    pub const fn from_bits(bits: u64) -> TaintSet {
        TaintSet(bits)
    }

    /// The raw bitmask.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// True if no label is present.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if at least one label is present.
    pub const fn is_tainted(self) -> bool {
        self.0 != 0
    }

    /// Union of two sets — the fundamental taint-propagation operation.
    #[must_use]
    pub const fn union(self, other: TaintSet) -> TaintSet {
        TaintSet(self.0 | other.0)
    }

    /// Intersection of two sets.
    #[must_use]
    pub const fn intersect(self, other: TaintSet) -> TaintSet {
        TaintSet(self.0 & other.0)
    }

    /// This set with all labels of `other` removed.
    #[must_use]
    pub const fn minus(self, other: TaintSet) -> TaintSet {
        TaintSet(self.0 & !other.0)
    }

    /// True if `label` is in the set.
    pub fn contains(self, label: Label) -> bool {
        self.0 & label.as_set().0 != 0
    }

    /// True if every label of `other` is in this set.
    pub const fn contains_all(self, other: TaintSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Adds a label in place.
    pub fn insert(&mut self, label: Label) {
        self.0 |= label.as_set().0;
    }

    /// Number of labels in the set.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates the labels in ascending id order.
    pub fn iter(self) -> impl Iterator<Item = Label> {
        let bits = self.0;
        (0..Label::MAX_LABELS).filter_map(move |i| {
            if bits & (1u64 << i) != 0 {
                Label::new(i)
            } else {
                None
            }
        })
    }
}

impl fmt::Debug for TaintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "{{}}");
        }
        write!(f, "{{")?;
        let mut first = true;
        for l in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{l:?}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Label> for TaintSet {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> TaintSet {
        let mut s = TaintSet::EMPTY;
        for l in iter {
            s.insert(l);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u8) -> Label {
        Label::new(i).expect("valid label")
    }

    #[test]
    fn label_bounds() {
        assert!(Label::new(0).is_some());
        assert!(Label::new(63).is_some());
        assert!(Label::new(64).is_none());
        assert!(Label::new(255).is_none());
    }

    #[test]
    fn set_basic_ops() {
        let a = l(1).as_set();
        let b = l(5).as_set();
        let ab = a.union(b);
        assert!(ab.contains(l(1)) && ab.contains(l(5)));
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.intersect(a), a);
        assert_eq!(ab.minus(a), b);
        assert!(ab.contains_all(a));
        assert!(!a.contains_all(ab));
    }

    #[test]
    fn empty_set_properties() {
        let e = TaintSet::EMPTY;
        assert!(e.is_empty());
        assert!(!e.is_tainted());
        assert_eq!(e.len(), 0);
        assert_eq!(e.union(e), e);
        assert!(e.contains_all(e));
    }

    #[test]
    fn iter_round_trip() {
        let s: TaintSet = [l(0), l(7), l(63)].into_iter().collect();
        let back: Vec<Label> = s.iter().collect();
        assert_eq!(back, vec![l(0), l(7), l(63)]);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut s = TaintSet::EMPTY;
        s.insert(l(3));
        s.insert(l(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", TaintSet::EMPTY), "{}");
        let s: TaintSet = [l(1), l(2)].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{L1,L2}");
    }
}
