#![warn(missing_docs)]
//! Taint tracking for the TinMan reproduction.
//!
//! TinMan taints each *cor placeholder* with the cor's unique ID and tracks
//! how the taint flows through the managed runtime. The paper (§3.5,
//! Table 2) classifies every data movement into four propagation classes —
//! heap→heap, heap→stack, stack→stack, stack→heap — and makes the central
//! observation that the *client* only ever needs the first two:
//!
//! * the JVM must move data from heap to stack before any computation, so a
//!   tainted value is always seen by a heap→stack move first;
//! * on the client that heap→stack move immediately triggers offloading, so
//!   stack→stack and stack→heap propagation never happen on tainted data
//!   there.
//!
//! This crate provides:
//! * [`Label`] / [`TaintSet`] — cor identifiers as a 64-bit label bitset;
//! * [`PropClass`] — the four propagation classes of Table 2;
//! * [`TaintEngine`] — the per-endpoint engine configuration
//!   ([`TaintEngine::full`] for the trusted node, [`TaintEngine::asymmetric`]
//!   for the client, [`TaintEngine::none`] for the stock-Android baseline),
//!   including the per-move instrumentation cost model that reproduces the
//!   Caffeinemark overheads of Figure 13.

pub mod engine;
pub mod label;

pub use engine::{EngineKind, MoveOutcome, TaintCosts, TaintEngine};
pub use label::{Label, TaintSet};

use serde::{Deserialize, Serialize};

/// The four data-movement classes of the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PropClass {
    /// Heap object to heap object (`clone`, `arraycopy`, string concat of
    /// heap operands, `memcopy`).
    HeapToHeap,
    /// Heap read onto the operand stack (`GETFIELD`, `ALOAD`, `charAt`).
    HeapToStack,
    /// Stack to stack (`ADD`, `MOVE`, local variable copies) — the most
    /// common class, and the one whose instrumentation dominates TaintDroid
    /// overhead.
    StackToStack,
    /// Stack write into a heap object (`PUTFIELD`, `ASTORE`).
    StackToHeap,
}

impl PropClass {
    /// All four classes, in Table 2 order.
    pub const ALL: [PropClass; 4] = [
        PropClass::HeapToHeap,
        PropClass::HeapToStack,
        PropClass::StackToStack,
        PropClass::StackToHeap,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            PropClass::HeapToHeap => "heap-to-heap",
            PropClass::HeapToStack => "heap-to-stack",
            PropClass::StackToStack => "stack-to-stack",
            PropClass::StackToHeap => "stack-to-heap",
        }
    }
}
