//! Taint engines.
//!
//! A [`TaintEngine`] is consulted by the interpreter on every data movement.
//! It decides (a) what taint the destination receives, (b) whether the move
//! must *trigger offloading* (the client-side asymmetric engine raises a
//! trigger whenever tainted heap data is about to reach the operand stack),
//! and (c) how many extra instruction cycles the instrumentation costs —
//! which is what reproduces the Caffeinemark overhead split of Figure 13
//! (full tainting ≈ 20% vs asymmetric ≈ 10%).

use serde::{Deserialize, Serialize};

use crate::label::TaintSet;
use crate::PropClass;

/// Which engine configuration is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// No tracking at all — the stock-Android baseline of Figure 13.
    None,
    /// Full four-class tracking — TaintDroid on the client, and always the
    /// trusted node's configuration.
    Full,
    /// TinMan's client-side optimization (§3.5): track heap→heap, trigger on
    /// heap→stack, ignore the stack-only classes.
    Asymmetric,
}

/// What the interpreter should do after reporting a move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoveOutcome {
    /// Taint to attach to the destination (stack slot or heap field).
    pub dst_taint: TaintSet,
    /// True if this move must suspend local execution and offload to the
    /// trusted node (only ever set by the asymmetric engine).
    pub trigger_offload: bool,
    /// Extra interpreter cycles charged for the instrumentation of this
    /// move.
    pub extra_cycles: u64,
}

/// Per-class instrumentation costs, in extra interpreter cycles per move.
///
/// Defaults are calibrated so a Caffeinemark-like instruction mix lands near
/// the paper's measured overheads: ~20.1% for full tracking and ~9.6% for
/// asymmetric tracking (Figure 13). Stack-to-stack moves are by far the most
/// frequent class, so the full engine's cost is dominated by them; the
/// asymmetric engine pays nothing there.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaintCosts {
    /// Cycles per instrumented heap→heap move.
    pub heap_to_heap: u64,
    /// Cycles per instrumented heap→stack move.
    pub heap_to_stack: u64,
    /// Cycles per instrumented stack→stack move.
    pub stack_to_stack: u64,
    /// Cycles per instrumented stack→heap move.
    pub stack_to_heap: u64,
}

impl Default for TaintCosts {
    fn default() -> Self {
        // Calibrated against the paper's Figure 13: with the VM's
        // dispatch-dominated base costs (~10 cycles/instruction), these
        // land full tracking near 20% average overhead and asymmetric
        // tracking near 10%, concentrated in heap-op-heavy code (String
        // worst) exactly as measured. Heap-to-heap is expensive because it
        // covers content-deriving operations (concat/substring) where the
        // instrumentation must walk the object, and because TinMan disables
        // Android's string-operation fast paths (§6.1).
        TaintCosts { heap_to_heap: 130, heap_to_stack: 24, stack_to_stack: 2, stack_to_heap: 5 }
    }
}

impl TaintCosts {
    /// Cost for one move of the given class.
    pub fn cost(&self, class: PropClass) -> u64 {
        match class {
            PropClass::HeapToHeap => self.heap_to_heap,
            PropClass::HeapToStack => self.heap_to_stack,
            PropClass::StackToStack => self.stack_to_stack,
            PropClass::StackToHeap => self.stack_to_heap,
        }
    }
}

/// Cumulative per-class move counters, useful for reports and for verifying
/// the asymmetric engine's claims.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveStats {
    /// Moves observed per class, indexed in [`PropClass::ALL`] order.
    pub observed: [u64; 4],
    /// Moves that carried taint, per class, same order.
    pub tainted: [u64; 4],
    /// Total extra cycles charged for instrumentation.
    pub instrumentation_cycles: u64,
    /// Offload triggers raised.
    pub triggers: u64,
}

impl MoveStats {
    fn class_index(class: PropClass) -> usize {
        match class {
            PropClass::HeapToHeap => 0,
            PropClass::HeapToStack => 1,
            PropClass::StackToStack => 2,
            PropClass::StackToHeap => 3,
        }
    }

    /// Moves observed for one class.
    pub fn observed_for(&self, class: PropClass) -> u64 {
        self.observed[Self::class_index(class)]
    }

    /// Tainted moves observed for one class.
    pub fn tainted_for(&self, class: PropClass) -> u64 {
        self.tainted[Self::class_index(class)]
    }
}

/// A configured taint engine for one endpoint.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaintEngine {
    kind: EngineKind,
    costs: TaintCosts,
    stats: MoveStats,
}

impl TaintEngine {
    /// The no-tracking baseline engine.
    pub fn none() -> Self {
        TaintEngine {
            kind: EngineKind::None,
            costs: TaintCosts::default(),
            stats: MoveStats::default(),
        }
    }

    /// The full four-class engine (TaintDroid-equivalent; used on the
    /// trusted node, or on the client for the Figure 13 comparison).
    pub fn full() -> Self {
        TaintEngine {
            kind: EngineKind::Full,
            costs: TaintCosts::default(),
            stats: MoveStats::default(),
        }
    }

    /// TinMan's asymmetric client engine (§3.5).
    pub fn asymmetric() -> Self {
        TaintEngine {
            kind: EngineKind::Asymmetric,
            costs: TaintCosts::default(),
            stats: MoveStats::default(),
        }
    }

    /// Overrides the instrumentation cost table.
    pub fn with_costs(mut self, costs: TaintCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Which configuration this engine runs.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &MoveStats {
        &self.stats
    }

    /// Resets the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MoveStats::default();
    }

    /// True if this engine instruments the given propagation class (and
    /// therefore pays its per-move cost).
    pub fn instruments(&self, class: PropClass) -> bool {
        match self.kind {
            EngineKind::None => false,
            EngineKind::Full => true,
            EngineKind::Asymmetric => {
                matches!(class, PropClass::HeapToHeap | PropClass::HeapToStack)
            }
        }
    }

    /// Reports one data movement of `class` whose source carries
    /// `src_taint`; returns the destination taint, whether offloading must
    /// trigger, and the instrumentation cost.
    ///
    /// Semantics per engine:
    /// * `None`: destination untainted, no cost, never triggers.
    /// * `Full`: destination inherits the union of source taints for all
    ///   four classes; never triggers (the trusted node *wants* to keep
    ///   running tainted code).
    /// * `Asymmetric`: heap→heap propagates; heap→stack of tainted data
    ///   raises `trigger_offload` (the data never actually reaches the
    ///   stack locally — the caller must suspend before completing the
    ///   move); the two stack-source classes are not instrumented and
    ///   propagate nothing.
    pub fn on_move(&mut self, class: PropClass, src_taint: TaintSet) -> MoveOutcome {
        let idx = MoveStats::class_index(class);
        self.stats.observed[idx] += 1;
        if src_taint.is_tainted() {
            self.stats.tainted[idx] += 1;
        }
        let instrumented = self.instruments(class);
        let extra_cycles = if instrumented { self.costs.cost(class) } else { 0 };
        self.stats.instrumentation_cycles += extra_cycles;

        let outcome = match self.kind {
            EngineKind::None => {
                MoveOutcome { dst_taint: TaintSet::EMPTY, trigger_offload: false, extra_cycles }
            }
            EngineKind::Full => {
                MoveOutcome { dst_taint: src_taint, trigger_offload: false, extra_cycles }
            }
            EngineKind::Asymmetric => match class {
                PropClass::HeapToHeap => {
                    MoveOutcome { dst_taint: src_taint, trigger_offload: false, extra_cycles }
                }
                PropClass::HeapToStack => {
                    let trigger = src_taint.is_tainted();
                    MoveOutcome {
                        // The tainted value must not land on the local
                        // stack; offloading intervenes first.
                        dst_taint: TaintSet::EMPTY,
                        trigger_offload: trigger,
                        extra_cycles,
                    }
                }
                PropClass::StackToStack | PropClass::StackToHeap => {
                    MoveOutcome { dst_taint: TaintSet::EMPTY, trigger_offload: false, extra_cycles }
                }
            },
        };
        if outcome.trigger_offload {
            self.stats.triggers += 1;
        }
        outcome
    }

    /// Reports `n` data movements of `class` whose sources are all
    /// statically **untainted**, in one call; returns the total extra
    /// instrumentation cycles.
    ///
    /// This is the batching hook for the VM's compiled tier: when an
    /// optimization pass collapses a run of instructions whose moved values
    /// are compile-time constants (so their taint is `EMPTY` by
    /// construction), the executor still owes the engine one report per
    /// original move — the per-class observation counters and
    /// instrumentation cycles are part of the interpreter-equivalence
    /// contract. The result is bit-identical to calling
    /// [`TaintEngine::on_move`] `n` times with [`TaintSet::EMPTY`]: empty
    /// sources propagate no taint, never trigger, and never count as
    /// tainted moves under any engine, so only the observed counter and the
    /// cycle total change.
    pub fn on_empty_moves(&mut self, class: PropClass, n: u64) -> u64 {
        let idx = MoveStats::class_index(class);
        self.stats.observed[idx] += n;
        let per_move = if self.instruments(class) { self.costs.cost(class) } else { 0 };
        let extra_cycles = per_move * n;
        self.stats.instrumentation_cycles += extra_cycles;
        extra_cycles
    }

    /// Reports a heap→heap operation that *derives a new value* from its
    /// sources (string concatenation, substring, hashing) rather than
    /// copying one verbatim.
    ///
    /// The distinction matters on the client (§3.5): a heap→heap *copy*
    /// (clone, arraycopy) of a placeholder can proceed locally — the copy is
    /// just another placeholder with the same label — but a *derivation*
    /// would produce a brand-new cor whose placeholder only the trusted node
    /// can mint, so the asymmetric engine triggers offloading instead
    /// (Figure 11, line 6). The full engine simply propagates the union of
    /// source taints.
    pub fn on_derive(&mut self, srcs: TaintSet) -> MoveOutcome {
        let idx = MoveStats::class_index(PropClass::HeapToHeap);
        self.stats.observed[idx] += 1;
        if srcs.is_tainted() {
            self.stats.tainted[idx] += 1;
        }
        let instrumented = self.instruments(PropClass::HeapToHeap);
        let extra_cycles = if instrumented { self.costs.cost(PropClass::HeapToHeap) } else { 0 };
        self.stats.instrumentation_cycles += extra_cycles;

        let outcome = match self.kind {
            EngineKind::None => {
                MoveOutcome { dst_taint: TaintSet::EMPTY, trigger_offload: false, extra_cycles }
            }
            EngineKind::Full => {
                MoveOutcome { dst_taint: srcs, trigger_offload: false, extra_cycles }
            }
            EngineKind::Asymmetric => MoveOutcome {
                dst_taint: TaintSet::EMPTY,
                trigger_offload: srcs.is_tainted(),
                extra_cycles,
            },
        };
        if outcome.trigger_offload {
            self.stats.triggers += 1;
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn tainted() -> TaintSet {
        Label::new(3).unwrap().as_set()
    }

    #[test]
    fn none_engine_is_free_and_silent() {
        let mut e = TaintEngine::none();
        for class in PropClass::ALL {
            let o = e.on_move(class, tainted());
            assert_eq!(o.dst_taint, TaintSet::EMPTY);
            assert!(!o.trigger_offload);
            assert_eq!(o.extra_cycles, 0);
        }
        assert_eq!(e.stats().instrumentation_cycles, 0);
    }

    #[test]
    fn full_engine_propagates_all_classes() {
        let mut e = TaintEngine::full();
        for class in PropClass::ALL {
            let o = e.on_move(class, tainted());
            assert_eq!(o.dst_taint, tainted());
            assert!(!o.trigger_offload, "trusted node never offloads");
            assert!(o.extra_cycles > 0);
        }
    }

    #[test]
    fn full_engine_unions_preserved_by_caller() {
        let mut e = TaintEngine::full();
        let a = Label::new(0).unwrap().as_set();
        let b = Label::new(1).unwrap().as_set();
        let o = e.on_move(PropClass::StackToStack, a.union(b));
        assert_eq!(o.dst_taint.len(), 2);
    }

    #[test]
    fn asymmetric_triggers_only_on_tainted_heap_to_stack() {
        let mut e = TaintEngine::asymmetric();
        assert!(!e.on_move(PropClass::HeapToStack, TaintSet::EMPTY).trigger_offload);
        assert!(e.on_move(PropClass::HeapToStack, tainted()).trigger_offload);
        assert!(!e.on_move(PropClass::HeapToHeap, tainted()).trigger_offload);
        assert!(!e.on_move(PropClass::StackToStack, tainted()).trigger_offload);
        assert!(!e.on_move(PropClass::StackToHeap, tainted()).trigger_offload);
        assert_eq!(e.stats().triggers, 1);
    }

    #[test]
    fn asymmetric_propagates_heap_to_heap_only() {
        let mut e = TaintEngine::asymmetric();
        assert_eq!(e.on_move(PropClass::HeapToHeap, tainted()).dst_taint, tainted());
        assert_eq!(e.on_move(PropClass::StackToStack, tainted()).dst_taint, TaintSet::EMPTY);
        assert_eq!(e.on_move(PropClass::StackToHeap, tainted()).dst_taint, TaintSet::EMPTY);
    }

    #[test]
    fn asymmetric_pays_nothing_on_stack_classes() {
        let mut e = TaintEngine::asymmetric();
        assert_eq!(e.on_move(PropClass::StackToStack, TaintSet::EMPTY).extra_cycles, 0);
        assert_eq!(e.on_move(PropClass::StackToHeap, TaintSet::EMPTY).extra_cycles, 0);
        assert!(e.on_move(PropClass::HeapToHeap, TaintSet::EMPTY).extra_cycles > 0);
        assert!(e.on_move(PropClass::HeapToStack, TaintSet::EMPTY).extra_cycles > 0);
    }

    #[test]
    fn full_costs_exceed_asymmetric_on_stack_heavy_mix() {
        // A synthetic mix resembling interpreted code: stack-to-stack
        // dominates.
        let mix = [
            (PropClass::StackToStack, 70u64),
            (PropClass::HeapToStack, 15),
            (PropClass::StackToHeap, 10),
            (PropClass::HeapToHeap, 5),
        ];
        let mut full = TaintEngine::full();
        let mut asym = TaintEngine::asymmetric();
        for (class, n) in mix {
            for _ in 0..n {
                full.on_move(class, TaintSet::EMPTY);
                asym.on_move(class, TaintSet::EMPTY);
            }
        }
        let f = full.stats().instrumentation_cycles;
        let a = asym.stats().instrumentation_cycles;
        assert!(f > a, "full ({f}) must cost more than asymmetric ({a})");
        // The asymmetric saving is exactly the stack-class instrumentation.
        let costs = TaintCosts::default();
        assert_eq!(f - a, 70 * costs.stack_to_stack + 10 * costs.stack_to_heap);
    }

    #[test]
    fn derive_triggers_on_asymmetric_but_propagates_on_full() {
        let mut asym = TaintEngine::asymmetric();
        let o = asym.on_derive(tainted());
        assert!(o.trigger_offload, "deriving a new cor must offload on the client");
        assert_eq!(o.dst_taint, TaintSet::EMPTY);
        assert!(!asym.on_derive(TaintSet::EMPTY).trigger_offload);

        let mut full = TaintEngine::full();
        let o = full.on_derive(tainted());
        assert!(!o.trigger_offload);
        assert_eq!(o.dst_taint, tainted());

        let mut none = TaintEngine::none();
        let o = none.on_derive(tainted());
        assert!(!o.trigger_offload);
        assert_eq!(o.dst_taint, TaintSet::EMPTY);
        assert_eq!(o.extra_cycles, 0);
    }

    #[test]
    fn batched_empty_moves_match_singles_exactly() {
        // The compiled tier replays folded-away moves through
        // on_empty_moves; engine state afterwards must be bit-identical to
        // the per-move path, for every engine kind and class.
        for make in [TaintEngine::none, TaintEngine::full, TaintEngine::asymmetric] {
            for class in PropClass::ALL {
                let mut batched = make();
                let mut singles = make();
                let batched_cycles = batched.on_empty_moves(class, 7);
                let mut single_cycles = 0;
                for _ in 0..7 {
                    let o = singles.on_move(class, TaintSet::EMPTY);
                    assert_eq!(o.dst_taint, TaintSet::EMPTY);
                    assert!(!o.trigger_offload);
                    single_cycles += o.extra_cycles;
                }
                assert_eq!(batched_cycles, single_cycles);
                assert_eq!(batched.stats(), singles.stats());
                assert_eq!(
                    serde_json::to_string(&batched).unwrap(),
                    serde_json::to_string(&singles).unwrap(),
                    "serialized engine state must be byte-identical"
                );
            }
        }
    }

    #[test]
    fn stats_count_observed_and_tainted() {
        let mut e = TaintEngine::full();
        e.on_move(PropClass::HeapToStack, tainted());
        e.on_move(PropClass::HeapToStack, TaintSet::EMPTY);
        assert_eq!(e.stats().observed_for(PropClass::HeapToStack), 2);
        assert_eq!(e.stats().tainted_for(PropClass::HeapToStack), 1);
        e.reset_stats();
        assert_eq!(e.stats().observed_for(PropClass::HeapToStack), 0);
    }
}
