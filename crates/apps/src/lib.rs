#![warn(missing_docs)]
//! Applications, servers and workloads for the TinMan reproduction.
//!
//! The paper evaluates TinMan on real Android apps (BankDroid, the stock
//! browser, and the PayPal/eBay/GitHub/Ask.fm login flows) against real web
//! sites, plus the Caffeinemark micro-benchmark and three battery workloads
//! (a game, web browsing, video playback). None of those artifacts can run
//! on this substrate, so this crate rebuilds each as a program for
//! [`tinman_vm`] plus a matching simulated server:
//!
//! * [`logins`] — a parameterized login-app generator whose knobs (UI
//!   method count, offloaded method count, heap bulk, post-offload
//!   allocations, extra cor rounds, lock usage) are calibrated per app so
//!   the measured offload statistics land on the paper's Table 3 shapes;
//! * [`bankdroid`] — the §4.1 case study: hash-of-password login through a
//!   bank-account app, with the hash becoming a derived cor;
//! * [`browser`] — the §4.2 case study: a checkout form whose credit-card
//!   fields are cor placeholders;
//! * [`servers`] — the web-site side: an authentication server that only
//!   accepts the *real* credential (proving payload replacement works end
//!   to end) and a payment server for the card flow;
//! * [`caffeinemark`] — the six Caffeinemark kernels (sieve, loop, logic,
//!   string, float, method) used for Figure 13;
//! * [`workloads`] — the game/web/video surrogate workloads behind the
//!   battery curves of Figure 17;
//! * [`malicious`] — a phishing app and an exfiltration app for the §3.4 /
//!   §5.2 security experiments.

pub mod bankdroid;
pub mod browser;
pub mod caffeinemark;
pub mod logins;
pub mod malicious;
pub mod servers;
pub mod workloads;

pub use caffeinemark::{CaffeinemarkKernel, CaffeinemarkResult};
pub use logins::{build_login_app, LoginAppSpec};
pub use servers::{install_auth_server, install_payment_server, AuthServerSpec};
