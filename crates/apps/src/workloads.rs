//! Surrogate workloads for the battery experiments (Figures 16 and 17).
//!
//! Figure 17's phases run real apps (a game, Wikipedia browsing, 720p
//! video) for ten minutes each. Interpreting ten simulated minutes of VM
//! instructions is neither necessary nor useful: what the figure measures
//! is how the *always-on client tainting* changes energy draw across
//! workloads with very different instruction mixes and radio/display
//! profiles. So each workload here has two parts:
//!
//! * a short, representative **kernel** run on the real interpreter under
//!   each taint engine to obtain the workload's *measured* instrumentation
//!   overhead ratio (no hand-picked constants);
//! * an **ambient profile** (CPU duty cycle, radio traffic, display) that
//!   scales the measured ratio across the phase's wall-clock duration.

use tinman_taint::{EngineKind, TaintEngine};
use tinman_vm::{interp, AppImage, ExecConfig, Insn, Machine, ProgramBuilder};

/// A Figure 17 workload phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// AngryBirds stand-in: physics + rendering loop, display-heavy,
    /// modest network.
    Game,
    /// Wikipedia browsing: bursts of text/layout work, network fetches,
    /// idle gaps.
    Web,
    /// Local 720p playback: decoder loop, no network, display-heavy.
    Video,
}

impl Workload {
    /// All phases in the paper's order.
    pub const ALL: [Workload; 3] = [Workload::Game, Workload::Web, Workload::Video];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Game => "game",
            Workload::Web => "web",
            Workload::Video => "video",
        }
    }

    /// Fraction of wall time the CPU spends executing VM instructions.
    pub fn cpu_duty(self) -> f64 {
        match self {
            Workload::Game => 0.85,
            Workload::Web => 0.35,
            Workload::Video => 0.55,
        }
    }

    /// Radio traffic per second of workload (tx, rx) in bytes.
    pub fn radio_bytes_per_sec(self) -> (u64, u64) {
        match self {
            Workload::Game => (500, 2_000),
            Workload::Web => (3_000, 60_000),
            Workload::Video => (0, 0), // local playback
        }
    }

    /// Builds this workload's representative kernel.
    pub fn kernel(self) -> AppImage {
        match self {
            Workload::Game => build_game_kernel(),
            Workload::Web => build_web_kernel(),
            Workload::Video => build_video_kernel(),
        }
    }

    /// Runs the kernel under `engine` and returns consumed cycles.
    pub fn measure_cycles(self, engine: &mut TaintEngine) -> u64 {
        let image = self.kernel();
        let mut machine = Machine::new();
        let mut host = interp::NullHost;
        let ev = interp::run(&mut machine, &image, &mut host, engine, ExecConfig::client())
            .expect("workload kernels cannot fault");
        assert!(matches!(ev, tinman_vm::ExecEvent::Halted(_)));
        machine.stats.cycles
    }

    /// The measured instrumentation overhead of `kind` relative to no
    /// tainting, as a ratio ≥ 1.0.
    pub fn taint_overhead(self, kind: EngineKind) -> f64 {
        let base = self.measure_cycles(&mut TaintEngine::none()) as f64;
        let mut engine = match kind {
            EngineKind::None => TaintEngine::none(),
            EngineKind::Full => TaintEngine::full(),
            EngineKind::Asymmetric => TaintEngine::asymmetric(),
        };
        self.measure_cycles(&mut engine) as f64 / base
    }
}

/// Physics-ish integer/float mix with per-frame object churn.
fn build_game_kernel() -> AppImage {
    let mut p = ProgramBuilder::new("wk-game");
    let cls = p.class("Sprite", &["x", "y", "vx", "vy"]);
    let step = p.define("step", 1, 2, |b, _| {
        // sprite.x += sprite.vx (fields 0 and 2)
        b.load(0).load(0).op(Insn::GetField(0)).load(0).op(Insn::GetField(2)).op(Insn::Add);
        b.op(Insn::PutField(0));
        b.load(0).load(0).op(Insn::GetField(1)).load(0).op(Insn::GetField(3)).op(Insn::Add);
        b.op(Insn::PutField(1));
        b.op(Insn::RetVoid);
    });
    let main = p.define("main", 0, 5, |b, _| {
        // locals: 1=frame 2=frames 3=sprite 4=k
        b.op(Insn::New(cls)).store(3);
        b.load(3).const_i(0).op(Insn::PutField(0)); // x = 0
        b.load(3).const_i(0).op(Insn::PutField(1)); // y = 0
        b.load(3).const_i(1).op(Insn::PutField(2)); // vx = 1
        b.load(3).const_i(2).op(Insn::PutField(3)); // vy = 2
        b.const_i(400).store(2);
        b.for_loop(1, 2, |b| {
            b.load(3).op(Insn::Call(step)).op(Insn::Pop);
            b.load(1)
                .op(Insn::I2D)
                .op(Insn::ConstD(0.016))
                .op(Insn::Mul)
                .op(Insn::D2I)
                .op(Insn::Pop);
        });
        b.const_i(0).op(Insn::Halt);
    });
    p.build(main)
}

/// Text/layout mix: string splitting and searching over page-like data.
fn build_web_kernel() -> AppImage {
    let mut p = ProgramBuilder::new("wk-web");
    let s_page = p.string("<p>Lorem ipsum dolor sit amet, consectetur adipiscing elit</p>");
    let s_tag = p.string("<p>");
    let main = p.define("main", 0, 5, |b, _| {
        // locals: 1=i 2=limit 3=s 4=acc
        b.const_i(200).store(2);
        b.const_i(0).store(4);
        b.for_loop(1, 2, |b| {
            b.op(Insn::ConstS(s_page)).op(Insn::ConstS(s_page)).op(Insn::StrConcat).store(3);
            b.load(3).op(Insn::ConstS(s_tag)).op(Insn::StrIndexOf);
            b.load(4).op(Insn::Add).store(4);
            b.load(3).const_i(3).const_i(30).op(Insn::StrSub).op(Insn::StrLen);
            b.load(4).op(Insn::Add).store(4);
            // Layout arithmetic: real rendering interleaves measurement
            // and positioning math with the string work.
            for _ in 0..8 {
                b.load(4).const_i(17).op(Insn::Mul).const_i(255).op(Insn::BitAnd);
                b.load(1).op(Insn::Add).store(4);
            }
        });
        b.load(4).op(Insn::Halt);
    });
    p.build(main)
}

/// Decoder-ish mix: tight array transform loop.
fn build_video_kernel() -> AppImage {
    let mut p = ProgramBuilder::new("wk-video");
    let main = p.define("main", 0, 6, |b, _| {
        // locals: 1=i 2=limit 3=buf 4=j 5=jlimit
        b.const_i(64).op(Insn::NewArr).store(3);
        b.const_i(64).store(5);
        b.const_i(250).store(2);
        b.for_loop(1, 2, |b| {
            b.for_loop(4, 5, |b| {
                // buf[j] = (buf[j] * 3 + j) & 0xff
                b.load(3).load(4);
                b.load(3).load(4).op(Insn::ArrLoad).const_i(3).op(Insn::Mul);
                b.load(4).op(Insn::Add).const_i(0xff).op(Insn::BitAnd);
                b.op(Insn::ArrStore);
            });
        });
        b.const_i(0).op(Insn::Halt);
    });
    p.build(main)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_halt_and_differ_in_mix() {
        for w in Workload::ALL {
            let c = w.measure_cycles(&mut TaintEngine::none());
            assert!(c > 10_000, "{w:?} kernel too small");
        }
    }

    #[test]
    fn overhead_ordering_holds_per_workload() {
        for w in Workload::ALL {
            let asym = w.taint_overhead(EngineKind::Asymmetric);
            let full = w.taint_overhead(EngineKind::Full);
            assert!(asym >= 1.0 && full >= asym, "{w:?}: asym {asym}, full {full}");
            assert!(full < 1.6, "{w:?}: full taint overhead implausibly high ({full})");
        }
    }

    #[test]
    fn duty_and_radio_profiles_are_sane() {
        for w in Workload::ALL {
            assert!((0.0..=1.0).contains(&w.cpu_duty()));
        }
        assert_eq!(Workload::Video.radio_bytes_per_sec(), (0, 0));
        assert!(Workload::Web.radio_bytes_per_sec().1 > Workload::Game.radio_bytes_per_sec().1);
    }
}
