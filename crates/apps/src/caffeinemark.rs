//! The Caffeinemark micro-benchmark suite (Figure 13).
//!
//! CaffeineMark 3.0 scores a JVM with six embedded kernels. This module
//! reimplements the six workload *classes* as programs for the
//! reproduction's VM: Sieve (array-bound integer work), Loop (nested
//! control flow), Logic (bit operations), String (heap/string churn —
//! the worst case for tainting, as the paper observes), Float (double
//! arithmetic), and Method (call-heavy recursion). Scores follow the
//! CaffeineMark convention that *higher is better*; overhead of a taint
//! configuration is `1 - score/score_baseline`.

use tinman_taint::TaintEngine;
use tinman_vm::{
    interp, run_tiered, AppImage, CompiledImage, ExecConfig, ExecEvent, ExecTier, Insn, Machine,
    ProgramBuilder, TierTelemetry,
};

/// The six kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CaffeinemarkKernel {
    /// Prime sieve over an array.
    Sieve,
    /// Nested counting loops.
    Loop,
    /// Bitwise logic.
    Logic,
    /// String concatenation/search churn.
    String,
    /// Floating-point arithmetic.
    Float,
    /// Deep call chains.
    Method,
}

impl CaffeinemarkKernel {
    /// All six kernels in display order.
    pub const ALL: [CaffeinemarkKernel; 6] = [
        CaffeinemarkKernel::Sieve,
        CaffeinemarkKernel::Loop,
        CaffeinemarkKernel::Logic,
        CaffeinemarkKernel::String,
        CaffeinemarkKernel::Float,
        CaffeinemarkKernel::Method,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CaffeinemarkKernel::Sieve => "Sieve",
            CaffeinemarkKernel::Loop => "Loop",
            CaffeinemarkKernel::Logic => "Logic",
            CaffeinemarkKernel::String => "String",
            CaffeinemarkKernel::Float => "Float",
            CaffeinemarkKernel::Method => "Method",
        }
    }

    /// Builds the kernel's program (self-contained, no natives).
    pub fn build(self, scale: u32) -> AppImage {
        match self {
            CaffeinemarkKernel::Sieve => build_sieve(scale),
            CaffeinemarkKernel::Loop => build_loop(scale),
            CaffeinemarkKernel::Logic => build_logic(scale),
            CaffeinemarkKernel::String => build_string(scale),
            CaffeinemarkKernel::Float => build_float(scale),
            CaffeinemarkKernel::Method => build_method(scale),
        }
    }
}

fn build_sieve(scale: u32) -> AppImage {
    let mut p = ProgramBuilder::new("cm-sieve");
    let n = 2048i64;
    // sieve(): classic flag-array sieve; returns prime count.
    let sieve = p.define("sieve", 0, 6, |b, _| {
        // locals: 0=flags, 1=i, 2=limit, 3=j, 4=count, 5=scratch
        b.const_i(n).op(Insn::NewArr).store(0);
        b.const_i(n).store(2);
        b.for_loop(1, 2, |b| {
            b.load(0).load(1).const_i(1).op(Insn::ArrStore);
        });
        b.const_i(0).store(4);
        b.const_i(2).store(1);
        let top = b.label();
        let done = b.label();
        b.bind(top);
        b.load(1).const_i(n).op(Insn::CmpLt);
        b.jump_if_zero(done);
        let not_prime = b.label();
        b.load(0).load(1).op(Insn::ArrLoad);
        b.jump_if_zero(not_prime);
        b.inc_local(4, 1);
        // j = i+i; while j < n { flags[j] = 0; j += i }
        b.load(1).load(1).op(Insn::Add).store(3);
        let jtop = b.label();
        let jdone = b.label();
        b.bind(jtop);
        b.load(3).const_i(n).op(Insn::CmpLt);
        b.jump_if_zero(jdone);
        b.load(0).load(3).const_i(0).op(Insn::ArrStore);
        b.load(3).load(1).op(Insn::Add).store(3);
        b.jump(jtop);
        b.bind(jdone);
        b.bind(not_prime);
        b.inc_local(1, 1);
        b.jump(top);
        b.bind(done);
        b.load(4).op(Insn::Ret);
    });
    let main = p.define("main", 0, 3, |b, _| {
        b.const_i(scale as i64).store(2);
        b.const_i(0).op(Insn::Pop);
        b.for_loop(1, 2, |b| {
            b.op(Insn::Call(sieve)).op(Insn::Pop);
        });
        b.op(Insn::Call(sieve)).op(Insn::Halt);
    });
    p.build(main)
}

fn build_loop(scale: u32) -> AppImage {
    let mut p = ProgramBuilder::new("cm-loop");
    let main = p.define("main", 0, 6, |b, _| {
        // locals: 1=i 2=ilimit 3=j 4=jlimit 5=acc
        b.const_i(scale as i64 * 40).store(2);
        b.const_i(50).store(4);
        b.const_i(0).store(5);
        b.for_loop(1, 2, |b| {
            b.for_loop(3, 4, |b| {
                b.load(5).load(3).op(Insn::Add).load(1).op(Insn::Sub).store(5);
            });
        });
        b.load(5).op(Insn::Halt);
    });
    p.build(main)
}

fn build_logic(scale: u32) -> AppImage {
    let mut p = ProgramBuilder::new("cm-logic");
    let main = p.define("main", 0, 4, |b, _| {
        // locals: 1=i 2=limit 3=x
        b.const_i(scale as i64 * 1500).store(2);
        b.const_i(0x5a5a).store(3);
        b.for_loop(1, 2, |b| {
            b.load(3).load(1).op(Insn::BitXor);
            b.const_i(3).op(Insn::Shl);
            b.load(1).op(Insn::BitOr);
            b.const_i(0xffff).op(Insn::BitAnd);
            b.const_i(5).op(Insn::Shr);
            b.store(3);
        });
        b.load(3).op(Insn::Halt);
    });
    p.build(main)
}

fn build_string(scale: u32) -> AppImage {
    let mut p = ProgramBuilder::new("cm-string");
    let s_base = p.string("The quick brown fox jumps over the lazy dog. ");
    let s_needle = p.string("lazy");
    let main = p.define("main", 0, 5, |b, _| {
        // locals: 1=i 2=limit 3=s 4=acc
        b.const_i(scale as i64 * 25).store(2);
        b.const_i(0).store(4);
        b.for_loop(1, 2, |b| {
            // s = base + base (fresh heap churn every iteration)
            b.op(Insn::ConstS(s_base)).op(Insn::ConstS(s_base)).op(Insn::StrConcat).store(3);
            // acc += s.indexOf("lazy") + s.charAt(i % len) + len(substring)
            b.load(3).op(Insn::ConstS(s_needle)).op(Insn::StrIndexOf);
            b.load(3).load(1).load(3).op(Insn::StrLen).op(Insn::Rem).op(Insn::StrCharAt);
            b.op(Insn::Add);
            b.load(3).const_i(4).const_i(20).op(Insn::StrSub).op(Insn::StrLen);
            b.op(Insn::Add);
            b.load(4).op(Insn::Add).store(4);
        });
        b.load(4).op(Insn::Halt);
    });
    p.build(main)
}

fn build_float(scale: u32) -> AppImage {
    let mut p = ProgramBuilder::new("cm-float");
    let main = p.define("main", 0, 5, |b, _| {
        // locals: 1=i 2=limit 3=x(double) — numeric integration-ish loop
        b.const_i(scale as i64 * 1200).store(2);
        b.op(Insn::ConstD(1.0)).store(3);
        b.for_loop(1, 2, |b| {
            b.load(3).op(Insn::ConstD(1.0000003)).op(Insn::Mul);
            b.op(Insn::ConstD(0.0000001)).op(Insn::Add);
            b.op(Insn::ConstD(1.0)).op(Insn::Div);
            b.store(3);
        });
        b.load(3).op(Insn::D2I).op(Insn::Halt);
    });
    p.build(main)
}

fn build_method(scale: u32) -> AppImage {
    let mut p = ProgramBuilder::new("cm-method");
    // a(n) -> b(n) -> c(n) -> n-1 chain, repeated.
    let c = p.define("c", 1, 1, |b, _| {
        b.load(0).const_i(1).op(Insn::Sub).op(Insn::Ret);
    });
    let bfn = p.define("b", 1, 1, |b, _| {
        b.load(0).op(Insn::Call(c)).op(Insn::Ret);
    });
    let a = p.define("a", 1, 1, |b, _| {
        b.load(0).op(Insn::Call(bfn)).op(Insn::Ret);
    });
    let main = p.define("main", 0, 4, |b, _| {
        b.const_i(scale as i64 * 700).store(2);
        b.const_i(0).store(3);
        b.for_loop(1, 2, |b| {
            b.load(3).op(Insn::Call(a)).store(3);
        });
        b.load(3).op(Insn::Halt);
    });
    p.build(main)
}

/// One kernel × engine measurement.
#[derive(Clone, Debug)]
pub struct CaffeinemarkResult {
    /// Which kernel ran.
    pub kernel: CaffeinemarkKernel,
    /// Interpreter cycles consumed (base + taint instrumentation).
    pub cycles: u64,
    /// Instructions retired.
    pub instrs: u64,
}

impl CaffeinemarkResult {
    /// The CaffeineMark-style score: work per cycle, scaled. Higher is
    /// better.
    pub fn score(&self) -> f64 {
        1e9 * self.instrs as f64 / self.cycles as f64
    }
}

/// Runs one kernel under the given taint engine on a client-configured
/// machine; no natives, no offloading — pure interpreter cost, exactly
/// what Figure 13 isolates.
pub fn run_kernel(
    kernel: CaffeinemarkKernel,
    engine: &mut TaintEngine,
    scale: u32,
) -> CaffeinemarkResult {
    let image = kernel.build(scale);
    let mut machine = Machine::new();
    let mut host = tinman_vm::interp::NullHost;
    let event = interp::run(&mut machine, &image, &mut host, engine, ExecConfig::client())
        .expect("caffeinemark kernels cannot fault");
    assert!(matches!(event, ExecEvent::Halted(_)), "kernels must halt");
    CaffeinemarkResult { kernel, cycles: machine.stats.cycles, instrs: machine.stats.instrs }
}

/// Runs one kernel under the chosen execution tier. By the tier contract
/// the retired counters (and thus the score) are identical to
/// [`run_kernel`] — what changes is host wall time, which the criterion
/// bench measures. Returns the tier telemetry so callers can verify
/// fast-path coverage (all zeros under [`ExecTier::Interpret`]).
pub fn run_kernel_tiered(
    kernel: CaffeinemarkKernel,
    engine: &mut TaintEngine,
    scale: u32,
    tier: ExecTier,
) -> (CaffeinemarkResult, TierTelemetry) {
    let image = kernel.build(scale);
    let compiled = match tier {
        ExecTier::Interpret => None,
        ExecTier::Blocks => Some(CompiledImage::compile(&image)),
    };
    run_kernel_prebuilt(kernel, &image, compiled.as_ref(), engine)
}

/// [`run_kernel_tiered`] against an already-built (and, for the block
/// tier, already-compiled) image — the shape benchmark loops want, so
/// build/compile cost stays out of the measured region.
pub fn run_kernel_prebuilt(
    kernel: CaffeinemarkKernel,
    image: &AppImage,
    compiled: Option<&CompiledImage>,
    engine: &mut TaintEngine,
) -> (CaffeinemarkResult, TierTelemetry) {
    let mut machine = Machine::new();
    let mut host = tinman_vm::interp::NullHost;
    let mut telemetry = TierTelemetry::default();
    let config = ExecConfig::client();
    let event = match compiled {
        None => interp::run(&mut machine, image, &mut host, engine, config),
        Some(compiled) => run_tiered(
            &mut machine,
            image,
            compiled,
            &mut host,
            engine,
            config.with_tier(ExecTier::Blocks),
            &mut telemetry,
        ),
    }
    .expect("caffeinemark kernels cannot fault");
    assert!(matches!(event, ExecEvent::Halted(_)), "kernels must halt");
    (
        CaffeinemarkResult { kernel, cycles: machine.stats.cycles, instrs: machine.stats.instrs },
        telemetry,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinman_vm::Value;

    fn run_result(kernel: CaffeinemarkKernel) -> Value {
        let image = kernel.build(1);
        let mut machine = Machine::new();
        let mut host = tinman_vm::interp::NullHost;
        let mut engine = TaintEngine::none();
        match interp::run(&mut machine, &image, &mut host, &mut engine, ExecConfig::client())
            .unwrap()
        {
            ExecEvent::Halted(v) => v,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sieve_counts_primes_correctly() {
        // pi(2048) = 309.
        assert_eq!(run_result(CaffeinemarkKernel::Sieve), Value::Int(309));
    }

    #[test]
    fn all_kernels_halt_and_consume_cycles() {
        for k in CaffeinemarkKernel::ALL {
            let mut e = TaintEngine::none();
            let r = run_kernel(k, &mut e, 1);
            assert!(r.cycles > 10_000, "{k:?} too small: {}", r.cycles);
            assert!(r.score() > 0.0);
        }
    }

    #[test]
    fn full_taint_costs_more_than_asymmetric_costs_more_than_none() {
        for k in CaffeinemarkKernel::ALL {
            let base = run_kernel(k, &mut TaintEngine::none(), 1).cycles;
            let asym = run_kernel(k, &mut TaintEngine::asymmetric(), 1).cycles;
            let full = run_kernel(k, &mut TaintEngine::full(), 1).cycles;
            assert!(base <= asym, "{k:?}: none {base} vs asym {asym}");
            assert!(asym <= full, "{k:?}: asym {asym} vs full {full}");
            assert!(full > base, "{k:?}: full tainting must cost something");
        }
    }

    #[test]
    fn scores_scale_with_cycles_not_workload() {
        // Doubling the workload should leave the score roughly unchanged
        // (same work/cycle ratio).
        let a = run_kernel(CaffeinemarkKernel::Loop, &mut TaintEngine::none(), 1).score();
        let b = run_kernel(CaffeinemarkKernel::Loop, &mut TaintEngine::none(), 2).score();
        let ratio = a / b;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn block_tier_matches_interpreter_counters_on_every_kernel() {
        for k in CaffeinemarkKernel::ALL {
            for mk in [TaintEngine::none, TaintEngine::asymmetric, TaintEngine::full] {
                let base = run_kernel(k, &mut mk(), 1);
                let (tiered, tel) = run_kernel_tiered(k, &mut mk(), 1, ExecTier::Blocks);
                assert_eq!(base.cycles, tiered.cycles, "{k:?} cycles");
                assert_eq!(base.instrs, tiered.instrs, "{k:?} instrs");
                assert!(tel.block_runs > 0, "{k:?} must run blocks: {tel:?}");
            }
        }
    }

    #[test]
    fn hot_kernels_retire_mostly_through_the_fast_path() {
        for k in [CaffeinemarkKernel::Loop, CaffeinemarkKernel::Logic, CaffeinemarkKernel::Sieve] {
            let (_, tel) = run_kernel_tiered(k, &mut TaintEngine::none(), 1, ExecTier::Blocks);
            assert!(
                tel.fast_insns > 4 * tel.stepped_insns,
                "{k:?}: fast path must dominate: {tel:?}"
            );
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        let a = run_kernel(CaffeinemarkKernel::Logic, &mut TaintEngine::full(), 1);
        let b = run_kernel(CaffeinemarkKernel::Logic, &mut TaintEngine::full(), 1);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instrs, b.instrs);
    }
}
