//! The BankDroid case study (§4.1).
//!
//! BankDroid is a bank-account manager: the user selects the bank password
//! from the cor list, the app computes `sha256(password)` for the bank's
//! hash-login protocol (the hash access triggers offloading and the hash
//! itself becomes a *derived cor*), sends the login, then fetches and
//! displays the recent transactions — which are ordinary private data and
//! run entirely on the client.

use tinman_vm::{AppImage, Insn, ProgramBuilder};

/// Builds the BankDroid app for one `bank_domain` whose password cor is
/// described as `cor_description`.
pub fn build_bankdroid(bank_domain: &str, cor_description: &str) -> AppImage {
    let mut p = ProgramBuilder::new("bankdroid");

    let n_select = p.native("ui.select_cor");
    let n_show = p.native("ui.show");
    let n_connect = p.native("net.connect");
    let n_handshake = p.native("net.tls_handshake");
    let n_close = p.native("net.close");
    let n_input = p.native("app.input");
    let n_disk = p.native("disk.write");
    // Registered here so their ids exist for the nested definitions below.
    p.native("crypto.sha256");
    p.native("net.send");
    p.native("net.recv");

    let s_domain = p.string(bank_domain);
    let s_desc = p.string(cor_description);
    let s_user_key = p.string("username");
    let s_user_prefix = p.string("user=");
    let s_round = p.string("&round=0");
    let s_pass_prefix = p.string("&pass=");
    let s_tx_req = p.string("GET /transactions");
    let s_ok = p.string("OK");
    let s_banner = p.string("BankDroid: account overview");
    let s_fail = p.string("BankDroid: login failed");
    let s_cache_prefix = p.string("txcache:");

    let cls_account = p.class("Account", &["balance_view", "tx_view"]);

    // ui_setup(acct): light framework warm-up.
    let ui_setup = p.define("ui_setup", 1, 3, |b, _| {
        b.const_i(400).store(2);
        b.for_loop(1, 2, |b| {
            b.load(1).const_i(3).op(Insn::Mul).op(Insn::Pop);
        });
        b.op(Insn::RetVoid);
    });

    // login(conn, user, pw) -> 1/0: the §4.1 flow.
    let login = p.define("login", 3, 6, |b, pb| {
        // locals: 0=conn, 1=user, 2=pw, 3=hash, 4=body, 5=reply
        // The bank requires the HASH of the password: this native call on
        // the tainted placeholder is the offload trigger, and the hash the
        // node computes is a new cor.
        b.load(2).op(Insn::CallNative(pb.native("crypto.sha256"), 1)).store(3);
        // body = "user=" + user + "&round=0" + "&pass=" + hash
        b.op(Insn::ConstS(s_user_prefix)).load(1).op(Insn::StrConcat);
        b.op(Insn::ConstS(s_round)).op(Insn::StrConcat);
        b.op(Insn::ConstS(s_pass_prefix)).op(Insn::StrConcat);
        b.load(3).op(Insn::StrConcat).store(4);
        // Send (payload replacement) and receive (migrate back).
        b.load(0).load(4).op(Insn::CallNative(pb.native("net.send"), 2)).op(Insn::Pop);
        b.load(0).op(Insn::CallNative(pb.native("net.recv"), 1)).store(5);
        b.load(5).op(Insn::ConstS(s_ok)).op(Insn::StrIndexOf).const_i(0).op(Insn::CmpGe);
        b.op(Insn::Ret);
    });

    // fetch_transactions(conn) -> summary string (ordinary private data —
    // handled entirely on the client, §5.4 "non-cor private data").
    let fetch_tx = p.define("fetch_transactions", 1, 3, |b, pb| {
        b.load(0).op(Insn::ConstS(s_tx_req)).op(Insn::CallNative(pb.native("net.send"), 2));
        b.op(Insn::Pop);
        b.load(0).op(Insn::CallNative(pb.native("net.recv"), 1)).op(Insn::Ret);
    });

    let main = p.define("main", 0, 7, |b, _| {
        // locals: 0=acct, 1=user, 2=pw, 3=conn, 4=ok, 5=tx, 6=cache_line
        b.op(Insn::New(cls_account)).store(0);
        b.load(0).op(Insn::Call(ui_setup)).op(Insn::Pop);
        b.op(Insn::ConstS(s_user_key)).op(Insn::CallNative(n_input, 1)).store(1);
        b.op(Insn::ConstS(s_desc)).op(Insn::CallNative(n_select, 1)).store(2);
        b.op(Insn::ConstS(s_domain)).const_i(443).op(Insn::CallNative(n_connect, 2)).store(3);
        b.load(3).op(Insn::CallNative(n_handshake, 1)).op(Insn::Pop);
        b.load(3).load(1).load(2).op(Insn::Call(login)).store(4);
        let fail = b.label();
        let end = b.label();
        b.load(4);
        b.jump_if_zero(fail);
        // Transactions: fetched, shown, and cached to disk — all plaintext
        // client-side, because they are not cor.
        b.load(3).op(Insn::Call(fetch_tx)).store(5);
        b.op(Insn::ConstS(s_banner)).op(Insn::CallNative(n_show, 1)).op(Insn::Pop);
        b.load(5).op(Insn::CallNative(n_show, 1)).op(Insn::Pop);
        b.op(Insn::ConstS(s_cache_prefix)).load(5).op(Insn::StrConcat).store(6);
        b.load(6).op(Insn::CallNative(n_disk, 1)).op(Insn::Pop);
        b.jump(end);
        b.bind(fail);
        b.op(Insn::ConstS(s_fail)).op(Insn::CallNative(n_show, 1)).op(Insn::Pop);
        b.bind(end);
        b.load(3).op(Insn::CallNative(n_close, 1)).op(Insn::Pop);
        b.load(4).op(Insn::Halt);
    });

    p.build(main)
}

/// The bank's transaction history, served after a successful login.
pub const SAMPLE_TRANSACTIONS: &str =
    "OK 2026-06-30 -12.50 coffee; 2026-07-01 -89.99 shoes; 2026-07-02 +2400.00 salary";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_is_deterministic() {
        let a = build_bankdroid("citibank.com", "Citibank password");
        let b = build_bankdroid("citibank.com", "Citibank password");
        assert_eq!(a.hash(), b.hash());
        assert!(a.find_function("login").is_some());
        assert!(a.find_function("fetch_transactions").is_some());
    }

    #[test]
    fn different_banks_are_different_apps() {
        let a = build_bankdroid("citibank.com", "Citibank password");
        let b = build_bankdroid("hsbc.com", "HSBC password");
        assert_ne!(a.hash(), b.hash());
    }
}
