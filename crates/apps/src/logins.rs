//! Parameterized login applications.
//!
//! The paper's Table 3 measures four real apps (PayPal, eBay, GitHub,
//! Ask.fm) logging into their real sites. What it actually measures are
//! structural properties of the app's control flow: how many method
//! invocations run where, how many DSM syncs happen, and how much heap
//! state crosses the wire. [`LoginAppSpec`] exposes exactly those knobs and
//! [`build_login_app`] synthesizes a VM program with that shape; the specs
//! in [`LoginAppSpec::paypal`] etc. are calibrated so the reproduction's
//! Table 3 matches the paper's shape (per-app ordering and magnitudes).
//!
//! The generated app's flow (a realistic login):
//!
//! 1. **UI phase (client)**: framework warm-up — `ui_methods` small method
//!    calls that build `heap_strings` retained strings (this becomes the
//!    init-sync bulk).
//! 2. The user picks the password from the cor list (`ui.select_cor`).
//! 3. TCP + TLS handshake to the site.
//! 4. **Login phase (offloaded)**: the request body is concatenated with
//!    the password — the Figure 11 trigger — then `offload_methods` methods
//!    run remotely (request building/validation that touches the tainted
//!    body), optionally the password is hashed (a derived cor), and the
//!    request is sent (SSL injection + payload replacement).
//! 5. `net.recv` migrates execution back; the client parses the response.
//! 6. `extra_cor_rounds` repeats a shortened step 4-5 (eBay and Ask.fm
//!    perform two credential exchanges, which is why they show four syncs).

use tinman_vm::{AppImage, Insn, ProgramBuilder};

/// Structural knobs for one login app.
#[derive(Clone, Debug)]
pub struct LoginAppSpec {
    /// App name (also the image name).
    pub name: &'static str,
    /// The domain the app logs into.
    pub domain: &'static str,
    /// The cor description the user picks (must exist in the store).
    pub cor_description: &'static str,
    /// Client-side framework method calls before login.
    pub ui_methods: u32,
    /// Retained framework strings built during UI warm-up (init-sync bulk).
    pub heap_strings: u32,
    /// Bytes per retained framework string.
    pub string_len: u32,
    /// Work-unit method calls executed on the trusted node per login round.
    pub offload_methods: u32,
    /// Every `alloc_every`-th offloaded work unit also allocates a retained
    /// string (drives dirty-sync bytes). 0 disables allocations.
    pub alloc_every: u32,
    /// Bytes per node-side allocation.
    pub alloc_len: u32,
    /// Hash the password before sending (BankDroid-style login).
    pub hash_login: bool,
    /// Take a client-held monitor inside the offloaded phase (reproduces
    /// the github lock-transfer sync).
    pub use_lock: bool,
    /// Additional credential exchanges after the first (each adds an
    /// offload + migrate-back pair).
    pub extra_cor_rounds: u32,
}

impl LoginAppSpec {
    /// PayPal: the largest app — heavy UI framework, a big offloaded
    /// phase (paper: 10274 invocations, 4.7%, 2 syncs, 768.5 KB init,
    /// 24.3 KB dirty).
    pub fn paypal() -> Self {
        LoginAppSpec {
            name: "paypal",
            domain: "paypal.com",
            cor_description: "PayPal password",
            ui_methods: 197_000,
            heap_strings: 1_135,
            string_len: 640,
            offload_methods: 9_942,
            alloc_every: 30,
            alloc_len: 32,
            hash_login: false,
            use_lock: false,
            extra_cor_rounds: 0,
        }
    }

    /// eBay: mid-size, two credential exchanges (paper: 2835, 2.4%, 4
    /// syncs, 759.8 KB init, 16.6 KB dirty).
    pub fn ebay() -> Self {
        LoginAppSpec {
            name: "ebay",
            domain: "ebay.com",
            cor_description: "eBay password",
            ui_methods: 112_000,
            heap_strings: 1_122,
            string_len: 640,
            offload_methods: 1_299,
            alloc_every: 11,
            alloc_len: 32,
            hash_login: false,
            use_lock: false,
            extra_cor_rounds: 1,
        }
    }

    /// GitHub: smallest, exhibits the lock-transfer sync (paper: 1672,
    /// 2.0%, 3 syncs, 603.0 KB init, 4.9 KB dirty).
    pub fn github() -> Self {
        LoginAppSpec {
            name: "github",
            domain: "github.com",
            cor_description: "GitHub password",
            ui_methods: 80_000,
            heap_strings: 889,
            string_len: 640,
            offload_methods: 1_612,
            alloc_every: 27,
            alloc_len: 32,
            hash_login: false,
            use_lock: true,
            extra_cor_rounds: 0,
        }
    }

    /// Ask.fm: small with two exchanges (paper: 1791, 1.7%, 4 syncs,
    /// 716.6 KB init, 18.7 KB dirty).
    pub fn askfm() -> Self {
        LoginAppSpec {
            name: "askfm",
            domain: "askfm.com",
            cor_description: "Ask.fm password",
            ui_methods: 101_000,
            heap_strings: 1_057,
            string_len: 640,
            offload_methods: 767,
            alloc_every: 6,
            alloc_len: 32,
            hash_login: false,
            use_lock: false,
            extra_cor_rounds: 1,
        }
    }

    /// The paper's four Table 3 apps.
    pub fn table3() -> Vec<LoginAppSpec> {
        vec![Self::paypal(), Self::ebay(), Self::github(), Self::askfm()]
    }
}

/// Builds the login app for `spec`. The image is deterministic, so its
/// hash is stable for the app↔cor policy binding.
pub fn build_login_app(spec: &LoginAppSpec) -> AppImage {
    let mut p = ProgramBuilder::new(spec.name);

    let n_select = p.native("ui.select_cor");
    let n_show = p.native("ui.show");
    let n_connect = p.native("net.connect");
    let n_handshake = p.native("net.tls_handshake");
    let n_close = p.native("net.close");
    let n_input = p.native("app.input");
    // Registered here so their ids exist for the nested definitions below.
    p.native("crypto.sha256");
    p.native("net.send");
    p.native("net.recv");

    let s_domain = p.string(spec.domain);
    let s_cor_desc = p.string(spec.cor_description);
    let s_user_key = p.string("username");
    let s_user_prefix = p.string("user=");
    let s_pass_prefix = p.string("&pass=");
    let s_round_prefix = p.string("&round=");
    let s_ok = p.string("OK");
    let s_done = p.string("login complete");
    let s_fail = p.string("login failed");
    let s_frag = p.string(&"x".repeat(spec.string_len as usize / 2));
    let s_alloc_frag = p.string(&"y".repeat((spec.alloc_len as usize / 2).max(1)));
    let s_empty = p.string("");

    // A class holding the retained framework state: an array of strings
    // and a lock object.
    let cls_app = p.class("AppState", &["strings", "lock_obj", "count"]);

    // -- tiny framework methods (client-side call volume) --
    // fw_unit(i) -> i*2+1 : pure arithmetic, one invocation each.
    let fw_unit = p.define("fw_unit", 1, 1, |b, _| {
        b.load(0).const_i(2).op(Insn::Mul).const_i(1).op(Insn::Add).op(Insn::Ret);
    });
    // fw_make_string() -> a retained framework string (one concat of two
    // interned halves: no garbage intermediates, so the init-sync bulk is
    // exactly `heap_strings * string_len` plus framing).
    let fw_make_string = p.define("fw_make_string", 0, 1, |b, _| {
        b.op(Insn::ConstS(s_frag)).op(Insn::ConstS(s_frag)).op(Insn::StrConcat).op(Insn::Ret);
    });

    // ui_warmup(state): calls fw_unit `ui_methods` times and retains
    // `heap_strings` strings in the state array.
    let ui_warmup = p.define("ui_warmup", 1, 5, |b, _| {
        // locals: 0=state, 1=i, 2=limit, 3=arr, 4=scratch
        b.const_i(spec.ui_methods as i64).store(2);
        b.for_loop(1, 2, |b| {
            b.load(1).op(Insn::Call(fw_unit)).op(Insn::Pop);
        });
        b.const_i(spec.heap_strings as i64).store(2);
        b.load(2).op(Insn::NewArr).store(3);
        b.for_loop(1, 2, |b| {
            b.load(3).load(1).op(Insn::Call(fw_make_string)).op(Insn::ArrStore);
        });
        b.load(0).load(3).op(Insn::PutField(0));
        b.op(Insn::RetVoid);
    });

    // touch(body, i): one offloaded work unit — reads a char of the
    // tainted request body (keeping the node taint-active) and does a bit
    // of arithmetic.
    let touch = p.define("touch", 2, 3, |b, _| {
        // locals: 0=body, 1=i, 2=len
        b.load(0).op(Insn::StrLen).store(2);
        b.load(0).load(1).load(2).op(Insn::Rem).op(Insn::StrCharAt);
        b.load(1).op(Insn::Add).op(Insn::Ret);
    });

    // node_alloc(): a small string retained during the offloaded phase —
    // the state that ships back in the dirty sync.
    let node_alloc = p.define("node_alloc", 0, 0, |b, _| {
        b.op(Insn::ConstS(s_alloc_frag))
            .op(Insn::ConstS(s_alloc_frag))
            .op(Insn::StrConcat)
            .op(Insn::Ret);
    });

    // do_login(state, conn, user, pw, round) -> 1/0
    let do_login = p.define("do_login", 5, 9, |b, pb| {
        // locals: 0=state, 1=conn, 2=user, 3=pw, 4=round,
        //         5=body, 6=i, 7=limit, 8=reply
        // body = "user=" + user
        b.op(Insn::ConstS(s_user_prefix)).load(2).op(Insn::StrConcat).store(5);
        // body += "&round=" + str(round)
        b.load(5).op(Insn::ConstS(s_round_prefix)).op(Insn::StrConcat);
        b.load(4).op(Insn::StrFromInt).op(Insn::StrConcat).store(5);
        if spec.hash_login {
            // body += "&pass=" + sha256(pw)   (hash is a derived cor)
            b.load(5).op(Insn::ConstS(s_pass_prefix)).op(Insn::StrConcat);
            b.load(3).op(Insn::CallNative(pb.native("crypto.sha256"), 1));
            b.op(Insn::StrConcat).store(5);
        } else {
            // body += "&pass=" + pw          (the Figure 11 trigger)
            b.load(5).op(Insn::ConstS(s_pass_prefix)).op(Insn::StrConcat);
            b.load(3).op(Insn::StrConcat).store(5);
        }
        if spec.use_lock {
            // A background (UI) thread holds this monitor on the client;
            // entering it here (on the node) forces a lock-transfer sync —
            // the paper's github observation.
            b.load(0).op(Insn::GetField(1)).op(Insn::MonitorEnter);
            b.load(0).op(Insn::GetField(1)).op(Insn::MonitorExit);
        }
        // Offloaded request processing: `offload_methods` work units, each
        // touching the tainted body (so the node stays taint-active), with
        // every `alloc_every`-th unit retaining a small string (the dirty
        // state that ships back).
        b.const_i(spec.offload_methods as i64).store(7);
        b.for_loop(6, 7, |b| {
            b.load(5).load(6).op(Insn::Call(touch)).op(Insn::Pop);
            if spec.alloc_every > 0 {
                let skip = b.label();
                b.load(6).const_i(spec.alloc_every as i64).op(Insn::Rem);
                b.jump_if_nonzero(skip);
                b.op(Insn::Call(node_alloc)).op(Insn::Pop);
                b.bind(skip);
            }
        });
        // Send the credential (payload replacement happens here).
        b.load(1).load(5).op(Insn::CallNative(pb.native("net.send"), 2)).op(Insn::Pop);
        // Receive the response (migrates back to the client).
        b.load(1).op(Insn::CallNative(pb.native("net.recv"), 1)).store(8);
        // success = reply contains "OK"
        b.load(8).op(Insn::ConstS(s_ok)).op(Insn::StrIndexOf).const_i(0).op(Insn::CmpGe);
        b.op(Insn::Ret);
    });

    let main = p.define("main", 0, 8, |b, _| {
        // locals: 0=state, 1=user, 2=pw, 3=conn, 4=ok, 5=round, 6=limit
        b.op(Insn::New(cls_app)).store(0);
        b.load(0).op(Insn::Call(ui_warmup)).op(Insn::Pop);
        if spec.use_lock {
            // Give the state a lock object owned by a background (UI)
            // thread, so offloaded code must request a lock transfer.
            b.op(Insn::New(cls_app)).op(Insn::Dup).store(7);
            b.load(0).op(Insn::Swap).op(Insn::PutField(1));
            b.load(7).op(Insn::PinLock);
        }
        // User and password.
        b.op(Insn::ConstS(s_user_key)).op(Insn::CallNative(n_input, 1)).store(1);
        b.op(Insn::ConstS(s_cor_desc)).op(Insn::CallNative(n_select, 1)).store(2);
        // Connect + TLS.
        b.op(Insn::ConstS(s_domain)).const_i(443).op(Insn::CallNative(n_connect, 2)).store(3);
        b.load(3).op(Insn::CallNative(n_handshake, 1)).op(Insn::Pop);
        // Login rounds.
        b.const_i(1 + spec.extra_cor_rounds as i64).store(6);
        b.const_i(1).store(4);
        b.for_loop(5, 6, |b| {
            b.load(0).load(3).load(1).load(2).load(5).op(Insn::Call(do_login));
            b.load(4).op(Insn::BitAnd).store(4);
        });
        // Wrap up on the client.
        let fail = b.label();
        let end = b.label();
        b.load(4);
        b.jump_if_zero(fail);
        b.op(Insn::ConstS(s_done)).op(Insn::CallNative(n_show, 1)).op(Insn::Pop);
        b.jump(end);
        b.bind(fail);
        b.op(Insn::ConstS(s_fail)).op(Insn::CallNative(n_show, 1)).op(Insn::Pop);
        b.bind(end);
        b.load(3).op(Insn::CallNative(n_close, 1)).op(Insn::Pop);
        b.op(Insn::ConstS(s_empty)).op(Insn::Pop); // keep pool entry alive
        b.load(4).op(Insn::Halt);
    });

    p.build(main)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_build_valid_images() {
        for spec in LoginAppSpec::table3() {
            let img = build_login_app(&spec);
            assert_eq!(img.name, spec.name);
            assert!(img.find_function("do_login").is_some());
            assert!(img.code_len() > 50);
        }
    }

    #[test]
    fn image_hash_is_stable_per_spec() {
        let a = build_login_app(&LoginAppSpec::paypal());
        let b = build_login_app(&LoginAppSpec::paypal());
        assert_eq!(a.hash(), b.hash());
        let c = build_login_app(&LoginAppSpec::ebay());
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn paypal_is_the_biggest_app() {
        // (framework bulk drives the init sync)
        let sizes: Vec<u64> = LoginAppSpec::table3()
            .iter()
            .map(|s| {
                // heap bulk drives the init sync: strings * len
                s.heap_strings as u64 * s.string_len as u64
            })
            .collect();
        assert!(sizes[0] > sizes[2], "paypal > github in framework bulk");
    }
}
