//! Adversarial applications for the security experiments (§3.4, §5.2).
//!
//! * [`build_phishing_app`] — looks like a bank login but is a *different
//!   image* (different dex hash); the app↔cor binding on the trusted node
//!   rejects it.
//! * [`build_exfiltration_app`] — a compromised app that selects the real
//!   cor description but sends the credential to the attacker's server;
//!   the cor↔domain whitelist rejects the send.
//! * [`build_residue_probe`] — a forensic "app" that never touches cor but
//!   whose run leaves a marker we can search for, validating the scanner's
//!   sensitivity (a scanner that finds nothing must be shown able to find
//!   *something*).

use tinman_vm::{AppImage, Insn, ProgramBuilder};

/// A fake bank app: identical *flow* to a login app but distinct code, so
/// its image hash differs from the bound app's.
pub fn build_phishing_app(bank_domain: &str, cor_description: &str) -> AppImage {
    let mut p = ProgramBuilder::new("totally-legit-bank");
    let n_select = p.native("ui.select_cor");
    let n_connect = p.native("net.connect");
    let n_handshake = p.native("net.tls_handshake");
    let n_send = p.native("net.send");
    let n_close = p.native("net.close");
    let s_domain = p.string(bank_domain);
    let s_desc = p.string(cor_description);
    let s_prefix = p.string("user=victim&round=0&pass=");

    let main = p.define("main", 0, 4, |b, _| {
        // Phishing marker: some distinct extra work so the hash differs
        // from every legitimate app.
        b.const_i(1337).const_i(2).op(Insn::Mul).op(Insn::Pop);
        b.op(Insn::ConstS(s_desc)).op(Insn::CallNative(n_select, 1)).store(0);
        b.op(Insn::ConstS(s_domain)).const_i(443).op(Insn::CallNative(n_connect, 2)).store(1);
        b.load(1).op(Insn::CallNative(n_handshake, 1)).op(Insn::Pop);
        // body = prefix + cor  (trigger), then send.
        b.op(Insn::ConstS(s_prefix)).load(0).op(Insn::StrConcat).store(2);
        b.load(1).load(2).op(Insn::CallNative(n_send, 2)).store(3);
        b.load(1).op(Insn::CallNative(n_close, 1)).op(Insn::Pop);
        b.load(3).op(Insn::Halt);
    });
    p.build(main)
}

/// An app (or a compromised legitimate app) that tries to post the cor to
/// `evil_domain` instead of the whitelisted site.
pub fn build_exfiltration_app(evil_domain: &str, cor_description: &str) -> AppImage {
    let mut p = ProgramBuilder::new("exfiltrator");
    let n_select = p.native("ui.select_cor");
    let n_connect = p.native("net.connect");
    let n_handshake = p.native("net.tls_handshake");
    let n_send = p.native("net.send");
    let n_close = p.native("net.close");
    let s_domain = p.string(evil_domain);
    let s_desc = p.string(cor_description);
    let s_prefix = p.string("stolen=");

    let main = p.define("main", 0, 4, |b, _| {
        b.op(Insn::ConstS(s_desc)).op(Insn::CallNative(n_select, 1)).store(0);
        b.op(Insn::ConstS(s_domain)).const_i(443).op(Insn::CallNative(n_connect, 2)).store(1);
        b.load(1).op(Insn::CallNative(n_handshake, 1)).op(Insn::Pop);
        b.op(Insn::ConstS(s_prefix)).load(0).op(Insn::StrConcat).store(2);
        b.load(1).load(2).op(Insn::CallNative(n_send, 2)).store(3);
        b.load(1).op(Insn::CallNative(n_close, 1)).op(Insn::Pop);
        b.load(3).op(Insn::Halt);
    });
    p.build(main)
}

/// Writes a known marker everywhere a leak could land: heap, disk, device
/// log. The residue scanner must find all three.
pub fn build_residue_probe(marker: &str) -> AppImage {
    let mut p = ProgramBuilder::new("residue-probe");
    let n_log = p.native("sys.log");
    let n_disk = p.native("disk.write");
    let s_marker = p.string(marker);
    let main = p.define("main", 0, 1, |b, _| {
        // Heap copy (so a fresh object holds the marker, not just the
        // interned constant).
        b.op(Insn::ConstS(s_marker)).op(Insn::ConstS(s_marker)).op(Insn::StrConcat).store(0);
        b.op(Insn::ConstS(s_marker)).op(Insn::CallNative(n_log, 1)).op(Insn::Pop);
        b.op(Insn::ConstS(s_marker)).op(Insn::CallNative(n_disk, 1)).op(Insn::Pop);
        b.const_i(1).op(Insn::Halt);
    });
    p.build(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logins::{build_login_app, LoginAppSpec};

    #[test]
    fn phishing_app_hash_differs_from_legit_app() {
        let legit = build_login_app(&LoginAppSpec::paypal());
        let phish = build_phishing_app("paypal.com", "PayPal password");
        assert_ne!(legit.hash(), phish.hash());
    }

    #[test]
    fn adversarial_apps_build() {
        assert_eq!(build_exfiltration_app("evil.com", "PayPal password").name, "exfiltrator");
        assert_eq!(build_residue_probe("MARKER").name, "residue-probe");
    }
}
