//! The browser checkout case study (§4.2).
//!
//! The user fills a payment form. Card number and security code come from
//! the cor dropdown the modified rendering engine adds next to each input
//! widget, so only placeholders exist on the phone; the amount and shipping
//! fields are typed normally. Submitting the form concatenates the tainted
//! fields into the POST body — triggering offload — and the trusted node
//! sends the real card data under its §4.2 policy rules (domain whitelist,
//! time window, rate limit).

use tinman_vm::{AppImage, Insn, ProgramBuilder};

/// Builds the browser running a checkout against `shop_domain`, selecting
/// the given card-number and CVV cor descriptions.
pub fn build_browser_checkout(
    shop_domain: &str,
    card_description: &str,
    cvv_description: &str,
) -> AppImage {
    let mut p = ProgramBuilder::new("browser");

    let n_select = p.native("ui.select_cor");
    let n_show = p.native("ui.show");
    let n_connect = p.native("net.connect");
    let n_handshake = p.native("net.tls_handshake");
    let n_close = p.native("net.close");
    let n_input = p.native("app.input");
    // Registered here so their ids exist for the nested definitions below.
    p.native("net.send");
    p.native("net.recv");

    let s_domain = p.string(shop_domain);
    let s_card_desc = p.string(card_description);
    let s_cvv_desc = p.string(cvv_description);
    let s_amount_key = p.string("amount");
    let s_card_prefix = p.string("card=");
    let s_cvv_prefix = p.string("&cvv=");
    let s_amount_prefix = p.string("&amount=");
    let s_paid = p.string("PAID");
    let s_receipt = p.string("payment accepted");
    let s_declined = p.string("payment declined");

    // render_page(): DOM-building busywork on the client.
    let render = p.define("render_page", 0, 3, |b, _| {
        b.const_i(600).store(2);
        b.for_loop(1, 2, |b| {
            b.load(1).const_i(7).op(Insn::Mul).const_i(13).op(Insn::Rem).op(Insn::Pop);
        });
        b.op(Insn::RetVoid);
    });

    // submit(conn, card, cvv, amount) -> 1/0
    let submit = p.define("submit", 4, 6, |b, pb| {
        // locals: 0=conn, 1=card, 2=cvv, 3=amount, 4=body, 5=reply
        // body = "card=" + card  — tainted concat, offload triggers here.
        b.op(Insn::ConstS(s_card_prefix)).load(1).op(Insn::StrConcat);
        b.op(Insn::ConstS(s_cvv_prefix)).op(Insn::StrConcat);
        b.load(2).op(Insn::StrConcat);
        b.op(Insn::ConstS(s_amount_prefix)).op(Insn::StrConcat);
        b.load(3).op(Insn::StrConcat).store(4);
        b.load(0).load(4).op(Insn::CallNative(pb.native("net.send"), 2)).op(Insn::Pop);
        b.load(0).op(Insn::CallNative(pb.native("net.recv"), 1)).store(5);
        b.load(5).op(Insn::ConstS(s_paid)).op(Insn::StrIndexOf).const_i(0).op(Insn::CmpGe);
        b.op(Insn::Ret);
    });

    let main = p.define("main", 0, 6, |b, _| {
        // locals: 0=card, 1=cvv, 2=amount, 3=conn, 4=ok
        b.op(Insn::Call(render)).op(Insn::Pop);
        b.op(Insn::ConstS(s_card_desc)).op(Insn::CallNative(n_select, 1)).store(0);
        b.op(Insn::ConstS(s_cvv_desc)).op(Insn::CallNative(n_select, 1)).store(1);
        b.op(Insn::ConstS(s_amount_key)).op(Insn::CallNative(n_input, 1)).store(2);
        b.op(Insn::ConstS(s_domain)).const_i(443).op(Insn::CallNative(n_connect, 2)).store(3);
        b.load(3).op(Insn::CallNative(n_handshake, 1)).op(Insn::Pop);
        b.load(3).load(0).load(1).load(2).op(Insn::Call(submit)).store(4);
        let declined = b.label();
        let end = b.label();
        b.load(4);
        b.jump_if_zero(declined);
        b.op(Insn::ConstS(s_receipt)).op(Insn::CallNative(n_show, 1)).op(Insn::Pop);
        b.jump(end);
        b.bind(declined);
        b.op(Insn::ConstS(s_declined)).op(Insn::CallNative(n_show, 1)).op(Insn::Pop);
        b.bind(end);
        b.load(3).op(Insn::CallNative(n_close, 1)).op(Insn::Pop);
        b.load(4).op(Insn::Halt);
    });

    p.build(main)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_functions() {
        let img = build_browser_checkout("shop.com", "Visa card", "Visa CVV");
        assert!(img.find_function("submit").is_some());
        assert!(img.find_function("render_page").is_some());
        assert_eq!(img.name, "browser");
    }
}
