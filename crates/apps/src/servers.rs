//! Simulated web sites.
//!
//! The servers are deliberately strict: the authentication server only
//! accepts the **real** credential, so a passing login end-to-end proves
//! that payload replacement delivered the cor (and that the placeholder
//! never reached the site). The servers are ordinary
//! [`tinman_core::HttpsServerApp`]s — they contain no TinMan awareness.

use sha2::{Digest, Sha256};
use tinman_core::HttpsServerApp;
use tinman_net::{Addr, HostId, NetWorld};
use tinman_sim::SimDuration;
use tinman_tls::TlsConfig;

/// Configuration of one authentication site.
#[derive(Clone, Debug)]
pub struct AuthServerSpec {
    /// The site's primary domain (also its DNS name).
    pub domain: &'static str,
    /// The expected username.
    pub user: &'static str,
    /// The expected password **plaintext** (the server legitimately knows
    /// it; the phone must not).
    pub password: String,
    /// If true, the site expects `sha256(password)` rather than the
    /// plaintext (the §4.1 hash-login bank).
    pub hash_login: bool,
    /// Server processing latency per login request.
    pub think: SimDuration,
    /// Page/resource bytes attached to the first successful login response
    /// (the landing page the app renders).
    pub page_bytes: usize,
}

/// Extracts `key=value` from a `&`-separated body.
fn form_value<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    body.split('&').find_map(|kv| {
        kv.strip_prefix(&format!("{key}=")).or({
            // first pair has no leading '&'; strip_prefix covers it already
            None
        })
    })
}

/// Installs an authentication server for `spec`; returns its host id.
///
/// The handler accepts requests shaped like the login apps produce
/// (`user=<u>&round=<n>&pass=<p>`) and replies `200 OK token=<t>` or
/// `403 FORBIDDEN`.
pub fn install_auth_server(world: &mut NetWorld, tls: TlsConfig, spec: AuthServerSpec) -> HostId {
    let host = world.add_host(spec.domain, tinman_sim::LinkProfile::ethernet());
    let expected = if spec.hash_login {
        let d = Sha256::digest(spec.password.as_bytes());
        d.iter().map(|b| format!("{b:02x}")).collect::<String>()
    } else {
        spec.password.clone()
    };
    let user = spec.user.to_owned();
    let think = spec.think;
    let page = "P".repeat(spec.page_bytes);
    let mut token_counter = 0u64;
    let app = HttpsServerApp::new(tls, move |_peer: Addr, request: &str| {
        if let Some(path) = request.strip_prefix("GET ") {
            // Resource fetches after login (transaction lists, pages).
            return (format!("200 OK resource={path}"), think);
        }
        let u = form_value(request, "user").unwrap_or("");
        let p = form_value(request, "pass").unwrap_or("");
        if u == user && p == expected {
            token_counter += 1;
            // The landing page rides on the first response only.
            let body = if form_value(request, "round") == Some("0") {
                format!("200 OK token=tk{token_counter:08} page={page}")
            } else {
                format!("200 OK token=tk{token_counter:08}")
            };
            (body, think)
        } else {
            ("403 FORBIDDEN".to_owned(), think)
        }
    });
    world.install_server(Addr::new(host, 443), Box::new(app));
    host
}

/// Installs a payment server (the §4.2 checkout target); returns its host.
///
/// Accepts `card=<number>&cvv=<code>&amount=<n>` and replies
/// `200 PAID receipt=<r>` when both card fields match.
pub fn install_payment_server(
    world: &mut NetWorld,
    tls: TlsConfig,
    domain: &'static str,
    card_number: &str,
    cvv: &str,
    think: SimDuration,
) -> HostId {
    let host = world.add_host(domain, tinman_sim::LinkProfile::ethernet());
    let card = card_number.to_owned();
    let code = cvv.to_owned();
    let mut receipts = 0u64;
    let app = HttpsServerApp::new(tls, move |_peer: Addr, request: &str| {
        let c = form_value(request, "card").unwrap_or("");
        let v = form_value(request, "cvv").unwrap_or("");
        if c == card && v == code {
            receipts += 1;
            (format!("200 PAID receipt=r{receipts:08}"), think)
        } else {
            ("402 DECLINED".to_owned(), think)
        }
    });
    world.install_server(Addr::new(host, 443), Box::new(app));
    host
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn form_value_parses_bodies() {
        let body = "user=alice&round=0&pass=hunter2";
        assert_eq!(form_value(body, "user"), Some("alice"));
        assert_eq!(form_value(body, "pass"), Some("hunter2"));
        assert_eq!(form_value(body, "round"), Some("0"));
        assert_eq!(form_value(body, "missing"), None);
        assert_eq!(form_value("", "user"), None);
    }

    #[test]
    fn form_value_does_not_match_key_substrings() {
        let body = "xuser=mallory&user=alice";
        assert_eq!(form_value(body, "user"), Some("alice"));
    }
}
