//! Disassemble → reassemble round trip over every real app image.
//!
//! The disassembler's output is valid assembler input; reassembling it must
//! reproduce the exact instruction streams, classes, strings and native
//! imports. This pins both tools against the full breadth of instructions
//! the apps actually use.

use tinman_apps::bankdroid::build_bankdroid;
use tinman_apps::browser::build_browser_checkout;
use tinman_apps::caffeinemark::CaffeinemarkKernel;
use tinman_apps::logins::{build_login_app, LoginAppSpec};
use tinman_apps::malicious::{build_exfiltration_app, build_phishing_app};
use tinman_vm::{assemble, disassemble, AppImage};

fn assert_round_trips(image: &AppImage) {
    let text = disassemble(image);
    let back = assemble(&image.name, &text)
        .unwrap_or_else(|e| panic!("{}: {e}\n--- source ---\n{text}", image.name));
    assert_eq!(back.strings, image.strings, "{}", image.name);
    assert_eq!(back.natives, image.natives, "{}", image.name);
    assert_eq!(back.classes.len(), image.classes.len(), "{}", image.name);
    for (a, b) in back.classes.iter().zip(&image.classes) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.fields, b.fields);
    }
    assert_eq!(back.functions.len(), image.functions.len(), "{}", image.name);
    for (a, b) in back.functions.iter().zip(&image.functions) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.n_args, b.n_args, "{}::{}", image.name, a.name);
        assert_eq!(a.n_locals, b.n_locals, "{}::{}", image.name, a.name);
        assert_eq!(a.code, b.code, "{}::{}", image.name, a.name);
    }
    assert_eq!(back.entry, image.entry);
}

#[test]
fn login_apps_round_trip() {
    for spec in LoginAppSpec::table3() {
        assert_round_trips(&build_login_app(&spec));
    }
}

#[test]
fn case_study_apps_round_trip() {
    assert_round_trips(&build_bankdroid("citibank.com", "Citibank password"));
    assert_round_trips(&build_browser_checkout("shop.com", "Visa card", "Visa CVV"));
}

#[test]
fn caffeinemark_kernels_round_trip() {
    for k in CaffeinemarkKernel::ALL {
        assert_round_trips(&k.build(1));
    }
}

#[test]
fn adversarial_apps_round_trip() {
    assert_round_trips(&build_phishing_app("paypal.com", "PayPal password"));
    assert_round_trips(&build_exfiltration_app("evil.com", "PayPal password"));
}
