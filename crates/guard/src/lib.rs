//! Per-session resource governance for the trusted node.
//!
//! TinMan's trust model is asymmetric: the *node* is trusted, the *apps*
//! running on it are not — they are arbitrary guest bytecode that merely
//! carries cor. A hostile or runaway guest (infinite loop, heap bomb,
//! unbounded recursion, DSM-sync flood) must not be able to wedge a node
//! shared across many users' sessions. This crate defines the policy
//! vocabulary the rest of the system enforces:
//!
//! - [`GuardPolicy`] — the per-session budget envelope (fuel, heap, call
//!   depth, DSM sync count and shipped bytes, a simulated-time deadline).
//!   The `vm` crate enforces the fuel/heap/depth budgets per instruction,
//!   the `dsm` crate meters syncs, and `core`'s runtime turns any
//!   exhaustion into a deterministic kill with a scrubbed node heap.
//! - [`KillReason`] — why a guest was killed; stable names feed trace
//!   events, metrics, and fleet report columns.
//! - [`GuardVerdict`] — the outcome of running a session under a guard.

#![warn(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize};
use tinman_sim::SimDuration;

/// The per-session budget envelope the trusted node grants a guest.
///
/// Every limit is a hard ceiling; crossing any of them is a deterministic
/// [`KillReason`]-stamped kill, never a panic and never an unbounded wait.
/// The [`Default`] policy is sized so that every legitimate workload in
/// this repository finishes with a wide margin while each of the canned
/// hostile guests dies within a few simulated milliseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardPolicy {
    /// Node-side instruction budget per session (all node segments
    /// combined).
    pub fuel: u64,
    /// Maximum live objects in the node heap.
    pub max_heap_objects: u64,
    /// Maximum allocated payload bytes in the node heap.
    pub max_heap_bytes: u64,
    /// Maximum call-stack depth on the node.
    pub max_call_depth: usize,
    /// Maximum DSM synchronizations (either direction) per session.
    pub max_dsm_syncs: u64,
    /// Maximum bytes shipped by DSM deltas per session.
    pub max_dsm_bytes: u64,
    /// Simulated wall-clock deadline for the whole session, measured from
    /// the first node segment. `None` disables the watchdog timer.
    pub deadline: Option<SimDuration>,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            fuel: 2_000_000,
            max_heap_objects: 50_000,
            max_heap_bytes: 8 << 20,
            max_call_depth: 128,
            max_dsm_syncs: 64,
            max_dsm_bytes: 16 << 20,
            deadline: Some(SimDuration::from_secs(120)),
        }
    }
}

impl GuardPolicy {
    /// A policy with every limit at its maximum — useful for tests that
    /// want the guard plumbing armed without any budget ever binding.
    pub fn unlimited() -> Self {
        GuardPolicy {
            fuel: u64::MAX,
            max_heap_objects: u64::MAX,
            max_heap_bytes: u64::MAX,
            max_call_depth: usize::MAX,
            max_dsm_syncs: u64::MAX,
            max_dsm_bytes: u64::MAX,
            deadline: None,
        }
    }

    /// The nominal fuel reservation fleet admission accounts for a
    /// well-behaved session: most sessions use a small fraction of the
    /// ceiling, so reserving the full budget for everyone would shed
    /// sessions a node could easily serve.
    pub fn nominal_fuel(&self) -> u64 {
        self.fuel / 16
    }

    /// The nominal heap-byte reservation for a well-behaved session
    /// (companion of [`GuardPolicy::nominal_fuel`]).
    pub fn nominal_heap_bytes(&self) -> u64 {
        self.max_heap_bytes / 16
    }
}

/// Which budget a killed guest exhausted. Variants map 1:1 onto the
/// `guard.*_exhausted` metrics and the `budget_exhaustions` report columns
/// (the DSM flavors — syncs, bytes, resync — share the `dsm` column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KillReason {
    /// The node-side instruction budget ran out.
    Fuel,
    /// The node heap crossed its object or byte quota.
    Heap,
    /// The call stack crossed its depth limit.
    Depth,
    /// Too many DSM synchronizations.
    DsmSyncs,
    /// Too many bytes shipped over DSM.
    DsmBytes,
    /// The session's simulated deadline passed.
    Deadline,
    /// A DSM re-synchronization (after a network disruption such as a
    /// mobility handoff) exhausted its bounded retry budget; the guest
    /// fails closed instead of running on divergent state.
    Resync,
}

impl KillReason {
    /// Stable snake_case name for trace events and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            KillReason::Fuel => "fuel",
            KillReason::Heap => "heap",
            KillReason::Depth => "depth",
            KillReason::DsmSyncs => "dsm_syncs",
            KillReason::DsmBytes => "dsm_bytes",
            KillReason::Deadline => "deadline",
            KillReason::Resync => "resync",
        }
    }

    /// The report column this reason is tallied under: the two DSM
    /// flavors (syncs, bytes, resync) fold into one `dsm` column.
    pub fn column(self) -> &'static str {
        match self {
            KillReason::Fuel => "fuel",
            KillReason::Heap => "heap",
            KillReason::Depth => "depth",
            KillReason::DsmSyncs | KillReason::DsmBytes | KillReason::Resync => "dsm",
            KillReason::Deadline => "deadline",
        }
    }
}

impl fmt::Display for KillReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The outcome of running one session under a guard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuardVerdict {
    /// The session ran to completion within every budget.
    Completed,
    /// The guard killed the guest; its node heap was scrubbed and the
    /// session failed closed.
    Killed {
        /// Which budget was exhausted.
        reason: KillReason,
    },
}

impl GuardVerdict {
    /// True if the guard killed the guest.
    pub fn is_killed(self) -> bool {
        matches!(self, GuardVerdict::Killed { .. })
    }
}

/// Evidence that a node heap was scrubbed before its guest state left the
/// node — the scrub-on-migrate half of the kill-time scrub guarantee.
///
/// A live session migration serializes the guest (machine + taint engine)
/// and then must leave *nothing* behind on the source: the checkpoint
/// carries this receipt so the scheduler can verify, per migration, that
/// the source heap and stack were torn down and that a post-scrub residue
/// scan found zero live objects. A receipt with `residue != 0` is a
/// reportable violation (the `migration_residue` fleet column), never
/// silently accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubReceipt {
    /// The node index that was scrubbed.
    pub node: usize,
    /// Simulated instant of the scrub, nanoseconds since session start.
    pub at_ns: u64,
    /// Heap objects still alive after the scrub (acceptance bar: zero).
    pub residue: u64,
}

impl ScrubReceipt {
    /// True when the scrub left no live heap object behind.
    pub fn clean(&self) -> bool {
        self.residue == 0
    }
}

/// Block-granular fuel metering for the VM's compiled tier.
///
/// The interpreter charges one unit of fuel per instruction, checking for
/// exhaustion *before* each instruction executes. A block-compiled executor
/// wants to pay the check once per basic block instead of once per
/// instruction — but the guest must still die on **exactly the same
/// instruction** as under per-instruction charging, or the tier would change
/// the guard's observable kill point. `BlockFuel` encodes the protocol that
/// makes that equivalence hold:
///
/// 1. at block entry, [`BlockFuel::can_reserve`] asks whether the whole
///    block's retired-instruction count fits in the remaining budget;
/// 2. if it fits, the executor runs the block natively and settles with
///    [`BlockFuel::spend`] as ops retire (infallible: the reservation
///    guaranteed capacity);
/// 3. if it does not fit, the executor falls back to per-instruction
///    stepping gated by [`BlockFuel::charge_one`], which replicates the
///    interpreter's check-then-decrement order bit for bit — so exhaustion
///    surfaces before the same instruction, with the same retired count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockFuel {
    remaining: Option<u64>,
}

impl BlockFuel {
    /// A meter with the given budget; `None` means unlimited.
    pub fn new(limit: Option<u64>) -> Self {
        BlockFuel { remaining: limit }
    }

    /// A meter that never exhausts.
    pub fn unlimited() -> Self {
        BlockFuel { remaining: None }
    }

    /// True if a block retiring `instrs` instructions can run without
    /// exhausting mid-block.
    pub fn can_reserve(&self, instrs: u64) -> bool {
        self.remaining.is_none_or(|r| r >= instrs)
    }

    /// Per-instruction gate, identical to the interpreter's loop: returns
    /// `false` (without decrementing) when the budget is already zero,
    /// otherwise decrements and returns `true`.
    pub fn charge_one(&mut self) -> bool {
        match self.remaining.as_mut() {
            Some(0) => false,
            Some(r) => {
                *r -= 1;
                true
            }
            None => true,
        }
    }

    /// Settles `instrs` retired instructions against the budget. Only valid
    /// after a successful [`BlockFuel::can_reserve`] covering them.
    pub fn spend(&mut self, instrs: u64) {
        if let Some(r) = self.remaining.as_mut() {
            debug_assert!(*r >= instrs, "spend without a covering reservation");
            *r = r.saturating_sub(instrs);
        }
    }

    /// Remaining budget (`None` = unlimited).
    pub fn remaining(&self) -> Option<u64> {
        self.remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_generous_but_bounded() {
        let p = GuardPolicy::default();
        assert!(p.fuel >= 1_000_000);
        assert!(p.max_heap_bytes >= 1 << 20);
        assert!(p.max_call_depth >= 64);
        assert!(p.nominal_fuel() < p.fuel);
        assert!(p.nominal_heap_bytes() < p.max_heap_bytes);
        assert!(p.deadline.is_some());
    }

    #[test]
    fn unlimited_policy_never_binds() {
        let p = GuardPolicy::unlimited();
        assert_eq!(p.fuel, u64::MAX);
        assert_eq!(p.deadline, None);
    }

    #[test]
    fn kill_reason_names_are_stable() {
        let all = [
            KillReason::Fuel,
            KillReason::Heap,
            KillReason::Depth,
            KillReason::DsmSyncs,
            KillReason::DsmBytes,
            KillReason::Deadline,
        ];
        let names: Vec<&str> = all.iter().map(|r| r.as_str()).collect();
        assert_eq!(names, ["fuel", "heap", "depth", "dsm_syncs", "dsm_bytes", "deadline"]);
        assert_eq!(KillReason::DsmSyncs.column(), "dsm");
        assert_eq!(KillReason::DsmBytes.column(), "dsm");
        assert_eq!(format!("{}", KillReason::Fuel), "fuel");
    }

    #[test]
    fn verdict_predicates() {
        assert!(!GuardVerdict::Completed.is_killed());
        assert!(GuardVerdict::Killed { reason: KillReason::Heap }.is_killed());
    }

    /// Reference model: the interpreter's per-instruction fuel loop.
    /// Returns how many instructions retire before exhaustion.
    fn per_insn_retired(limit: u64, program_len: u64) -> u64 {
        let mut fuel = limit;
        let mut retired = 0;
        while retired < program_len {
            if fuel == 0 {
                return retired;
            }
            fuel -= 1;
            retired += 1;
        }
        retired
    }

    #[test]
    fn block_charging_exhausts_on_the_same_instruction_as_per_insn() {
        // Partition programs into blocks of varying sizes and drive them
        // through the reserve-or-step protocol; the retired count at
        // exhaustion must equal the per-instruction model for every
        // (limit, block-size) combination.
        for limit in [0u64, 1, 2, 3, 7, 8, 9, 100] {
            for block in [1u64, 2, 3, 5, 8] {
                let program_len = 24u64;
                let mut meter = BlockFuel::new(Some(limit));
                let mut retired = 0;
                'run: while retired < program_len {
                    let blk = block.min(program_len - retired);
                    if meter.can_reserve(blk) {
                        meter.spend(blk);
                        retired += blk;
                    } else {
                        // Deopt: per-instruction stepping for this block.
                        for _ in 0..blk {
                            if !meter.charge_one() {
                                break 'run;
                            }
                            retired += 1;
                        }
                    }
                }
                assert_eq!(
                    retired,
                    per_insn_retired(limit, program_len),
                    "limit {limit} block {block}: kill instruction must not move"
                );
            }
        }
    }

    #[test]
    fn unlimited_meter_never_binds() {
        let mut m = BlockFuel::unlimited();
        assert!(m.can_reserve(u64::MAX));
        assert!(m.charge_one());
        m.spend(1 << 40);
        assert_eq!(m.remaining(), None);
    }

    #[test]
    fn charge_one_checks_before_decrementing() {
        // The interpreter returns OutOfFuel *before* executing when fuel is
        // zero; the last unit is consumed by the last executed instruction.
        let mut m = BlockFuel::new(Some(2));
        assert!(m.charge_one());
        assert!(m.charge_one());
        assert!(!m.charge_one(), "third instruction must not run");
        assert_eq!(m.remaining(), Some(0));
    }

    #[test]
    fn scrub_receipt_is_clean_only_at_zero_residue() {
        let ok = ScrubReceipt { node: 2, at_ns: 1_000, residue: 0 };
        assert!(ok.clean());
        let bad = ScrubReceipt { node: 2, at_ns: 1_000, residue: 3 };
        assert!(!bad.clean(), "any surviving object is a violation");
        // Receipts travel inside serialized checkpoints; round-trip them.
        let json = serde_json::to_string(&ok).unwrap();
        assert_eq!(serde_json::from_str::<ScrubReceipt>(&json).unwrap(), ok);
    }
}
