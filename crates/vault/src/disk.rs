//! A simulated disk with explicit fsync barriers.
//!
//! Real crash consistency is defined by one boundary: bytes the kernel
//! has acknowledged an `fsync` for survive a power cut; everything else
//! may land whole, land partially (a *torn write*), or vanish. This disk
//! models exactly that boundary and nothing else — each file keeps its
//! durable bytes separate from a queue of pending operations, and
//! [`SimDisk::crash`] resolves the pending queue the way a dying kernel
//! would: a seeded prefix of the queued bytes makes it to the platter,
//! possibly cutting the final write mid-record.
//!
//! Renames are modeled as atomic and durable (journaled-metadata
//! semantics, the contract `rename(2)` gives on every filesystem the
//! paper's trusted node would run): a crash sees either the old name or
//! the new one, never a half-moved file. That is the primitive the
//! vault's snapshot compaction leans on.

use std::collections::BTreeMap;

/// A queued, not-yet-durable mutation on one file.
#[derive(Clone, Debug)]
enum PendingOp {
    /// Bytes appended past the current durable end.
    Append(Vec<u8>),
    /// Truncate the file to this length (used by compaction's log rewrite).
    Truncate(usize),
}

/// Cumulative I/O counters, the source of the `vault.*` gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// `append` calls issued.
    pub appends: u64,
    /// `fsync` barriers issued.
    pub fsyncs: u64,
    /// Bytes made durable by fsync barriers.
    pub bytes_durable: u64,
    /// Crashes this disk has absorbed.
    pub crashes: u64,
}

/// One simulated file: durable content plus the pending-op queue.
#[derive(Clone, Debug, Default)]
struct SimFile {
    durable: Vec<u8>,
    pending: Vec<PendingOp>,
}

impl SimFile {
    /// Applies every pending op, in order, as an fsync barrier does.
    fn flush(&mut self) -> u64 {
        let mut bytes = 0u64;
        for op in self.pending.drain(..) {
            match op {
                PendingOp::Append(b) => {
                    bytes += b.len() as u64;
                    self.durable.extend_from_slice(&b);
                }
                PendingOp::Truncate(len) => self.durable.truncate(len),
            }
        }
        bytes
    }

    /// Applies pending ops under a crash byte-budget: ops land in order
    /// until the budget runs out; the op that exhausts it lands as a
    /// *prefix* (a torn write); everything after is lost.
    fn crash_apply(&mut self, mut budget: usize) {
        for op in self.pending.drain(..) {
            match op {
                PendingOp::Append(b) => {
                    if budget >= b.len() {
                        budget -= b.len();
                        self.durable.extend_from_slice(&b);
                    } else {
                        self.durable.extend_from_slice(&b[..budget]);
                        return;
                    }
                }
                PendingOp::Truncate(len) => {
                    if budget == 0 {
                        return;
                    }
                    self.durable.truncate(len);
                }
            }
        }
    }

    fn pending_bytes(&self) -> usize {
        self.pending
            .iter()
            .map(|op| match op {
                PendingOp::Append(b) => b.len(),
                PendingOp::Truncate(_) => 1,
            })
            .sum()
    }
}

/// The simulated fsync-barrier disk a [`crate::Vault`] writes through.
#[derive(Clone, Debug, Default)]
pub struct SimDisk {
    files: BTreeMap<String, SimFile>,
    stats: DiskStats,
}

impl SimDisk {
    /// An empty disk.
    pub fn new() -> SimDisk {
        SimDisk::default()
    }

    /// Queues an append. The bytes are *not* durable until the next
    /// [`SimDisk::fsync`] on this file.
    pub fn append(&mut self, file: &str, bytes: &[u8]) {
        self.stats.appends += 1;
        self.files
            .entry(file.to_owned())
            .or_default()
            .pending
            .push(PendingOp::Append(bytes.to_owned()));
    }

    /// Queues a truncate-then-append that replaces the file's content.
    pub fn write_all(&mut self, file: &str, bytes: &[u8]) {
        let f = self.files.entry(file.to_owned()).or_default();
        f.pending.push(PendingOp::Truncate(0));
        f.pending.push(PendingOp::Append(bytes.to_owned()));
        self.stats.appends += 1;
    }

    /// The fsync barrier: every queued op on `file` becomes durable, in
    /// order. This is the commit point — the vault acknowledges nothing
    /// it has not fsynced.
    pub fn fsync(&mut self, file: &str) {
        self.stats.fsyncs += 1;
        if let Some(f) = self.files.get_mut(file) {
            self.stats.bytes_durable += f.flush();
        }
    }

    /// Atomic durable rename (journaled metadata). The source's pending
    /// queue is flushed first — rename-as-publish only means anything if
    /// the published content is durable, which is why the compaction
    /// protocol fsyncs before renaming anyway.
    pub fn rename(&mut self, from: &str, to: &str) {
        if let Some(mut f) = self.files.remove(from) {
            self.stats.bytes_durable += f.flush();
            self.files.insert(to.to_owned(), f);
        }
    }

    /// Removes a file (durably; directory ops are journaled like rename).
    pub fn remove(&mut self, file: &str) {
        self.files.remove(file);
    }

    /// True if the file exists (durable or with queued writes).
    pub fn exists(&self, file: &str) -> bool {
        self.files.contains_key(file)
    }

    /// The file's *durable* bytes — what a post-crash reader sees.
    pub fn read(&self, file: &str) -> &[u8] {
        self.files.get(file).map(|f| f.durable.as_slice()).unwrap_or(&[])
    }

    /// Bytes queued behind the next fsync barrier on `file`.
    pub fn pending_bytes(&self, file: &str) -> usize {
        self.files.get(file).map(|f| f.pending_bytes()).unwrap_or(0)
    }

    /// Power cut. Every file's pending queue resolves under a seeded
    /// byte-budget drawn below its pending size — so the last in-flight
    /// write can land torn — and the queues are gone afterward. Files are
    /// processed in name order with per-file seeds, keeping the outcome a
    /// pure function of (disk state, seed).
    pub fn crash(&mut self, seed: u64) {
        self.stats.crashes += 1;
        let mut mix = tinman_sim::SplitMix64::new(seed ^ 0x5d15_c0de_dead_d15c);
        for (_, f) in self.files.iter_mut() {
            let pending = f.pending_bytes();
            let budget = if pending == 0 { 0 } else { mix.below(pending as u64 + 1) as usize };
            f.crash_apply(budget);
        }
    }

    /// Power cut where nothing in flight survives: pending queues are
    /// dropped whole. The clean-cut end of the crash spectrum.
    pub fn crash_losing_pending(&mut self) {
        self.stats.crashes += 1;
        for (_, f) in self.files.iter_mut() {
            f.pending.clear();
        }
    }

    /// Power cut with an explicit byte-budget for one file (other files
    /// lose their queues). Lets fault injection place the tear exactly.
    pub fn crash_keeping(&mut self, file: &str, budget: usize) {
        self.stats.crashes += 1;
        for (name, f) in self.files.iter_mut() {
            if name == file {
                f.crash_apply(budget);
            } else {
                f.pending.clear();
            }
        }
    }

    /// Cumulative I/O counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_writes_are_not_durable() {
        let mut d = SimDisk::new();
        d.append("wal", b"hello");
        assert_eq!(d.read("wal"), b"");
        assert_eq!(d.pending_bytes("wal"), 5);
        d.fsync("wal");
        assert_eq!(d.read("wal"), b"hello");
        assert_eq!(d.pending_bytes("wal"), 0);
    }

    #[test]
    fn crash_drops_or_tears_pending() {
        let mut d = SimDisk::new();
        d.append("wal", b"aaaa");
        d.fsync("wal");
        d.append("wal", b"bbbb");
        d.crash_keeping("wal", 2);
        assert_eq!(d.read("wal"), b"aaaabb", "torn write keeps a prefix");
        let mut e = SimDisk::new();
        e.append("wal", b"aaaa");
        e.fsync("wal");
        e.append("wal", b"bbbb");
        e.crash_losing_pending();
        assert_eq!(e.read("wal"), b"aaaa", "fsynced bytes survive, pending is gone");
    }

    #[test]
    fn seeded_crash_is_deterministic_and_bounded() {
        for seed in 0..50u64 {
            let mut a = SimDisk::new();
            a.append("wal", b"0123456789");
            let mut b = a.clone();
            a.crash(seed);
            b.crash(seed);
            assert_eq!(a.read("wal"), b.read("wal"), "crash is a pure function of the seed");
            assert!(a.read("wal").len() <= 10);
        }
    }

    #[test]
    fn rename_is_atomic_and_replaces() {
        let mut d = SimDisk::new();
        d.write_all("snap", b"old");
        d.fsync("snap");
        d.write_all("snap.new", b"new-content");
        d.fsync("snap.new");
        d.rename("snap.new", "snap");
        assert_eq!(d.read("snap"), b"new-content");
        assert!(!d.exists("snap.new"));
    }

    #[test]
    fn write_all_replaces_content_at_the_barrier() {
        let mut d = SimDisk::new();
        d.append("wal", b"long-old-content");
        d.fsync("wal");
        d.write_all("wal", b"tiny");
        assert_eq!(d.read("wal"), b"long-old-content", "replacement waits for the barrier");
        d.fsync("wal");
        assert_eq!(d.read("wal"), b"tiny");
    }

    #[test]
    fn crash_with_zero_budget_preserves_old_content_under_write_all() {
        // The dangerous compaction shape: a staged truncate+rewrite that
        // dies before its barrier must leave the old durable bytes alone.
        let mut d = SimDisk::new();
        d.append("wal", b"precious");
        d.fsync("wal");
        d.write_all("wal", b"rewrite");
        d.crash_keeping("wal", 0);
        assert_eq!(d.read("wal"), b"precious");
    }

    #[test]
    fn stats_count_barriers_and_crashes() {
        let mut d = SimDisk::new();
        d.append("wal", b"abc");
        d.fsync("wal");
        d.crash(1);
        let s = d.stats();
        assert_eq!(s.appends, 1);
        assert_eq!(s.fsyncs, 1);
        assert_eq!(s.bytes_durable, 3);
        assert_eq!(s.crashes, 1);
    }
}
