//! Checksummed write-ahead-log framing.
//!
//! Each record is one self-describing frame:
//!
//! ```text
//! | magic "TMW1" | lsn u64 le | kind u8 | len u32 le | payload | crc64 u64 le |
//! |      4       |     8      |    1    |     4      |   len   |      8       |
//! ```
//!
//! The CRC-64/ECMA-182 covers everything between the magic and the
//! checksum (lsn, kind, len, payload). Decoding distinguishes the two
//! failure classes a crash-consistent log must keep apart:
//!
//! * **Torn tail** — malformed bytes that extend to end-of-file: the
//!   shape a power cut leaves when it cuts the final append short.
//!   Repairable by truncation; every fsynced frame before it is intact.
//! * **Corruption** — malformed bytes *followed by* more data. No crash
//!   produces that (writes land in order), so it means the medium or the
//!   writer is broken, and recovery must refuse rather than guess.

use std::fmt;

/// Frame magic: "TMW1" (TinMan WAL, format 1).
pub const MAGIC: [u8; 4] = *b"TMW1";

/// Bytes before the payload: magic + lsn + kind + len.
pub const HEADER_LEN: usize = 4 + 8 + 1 + 4;

/// Trailing checksum bytes.
pub const CRC_LEN: usize = 8;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// One cor record install (the payload is a serialized `VaultOp`).
    Put,
    /// A full-store snapshot image (payload is `CorStore::to_json`).
    Snapshot,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::Put => 1,
            FrameKind::Snapshot => 2,
        }
    }

    fn from_code(code: u8) -> Option<FrameKind> {
        match code {
            1 => Some(FrameKind::Put),
            2 => Some(FrameKind::Snapshot),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalFrame {
    /// Monotonic log sequence number.
    pub lsn: u64,
    /// Payload discriminator.
    pub kind: FrameKind,
    /// The frame's payload bytes.
    pub payload: Vec<u8>,
}

/// How the byte stream ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeEnd {
    /// The last frame ended exactly at end-of-file.
    Clean,
    /// Malformed bytes from `offset` to end-of-file — a torn final
    /// write. Truncating the file at `offset` repairs the log.
    TornTail {
        /// Byte offset the intact prefix ends at.
        offset: usize,
    },
}

/// Malformed bytes in the *middle* of the log: not a crash artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorruptFrame {
    /// Byte offset of the frame that failed to decode.
    pub offset: usize,
    /// What failed ("magic", "crc", "kind").
    pub what: &'static str,
}

impl fmt::Display for CorruptFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt WAL frame at byte {}: bad {}", self.offset, self.what)
    }
}

impl std::error::Error for CorruptFrame {}

/// CRC-64/ECMA-182, bitwise (logs here are small; clarity over speed).
pub fn crc64(bytes: &[u8]) -> u64 {
    const POLY: u64 = 0x42f0_e1eb_a9ea_3693;
    let mut crc = 0u64;
    for &b in bytes {
        crc ^= (b as u64) << 56;
        for _ in 0..8 {
            crc = if crc & (1 << 63) != 0 { (crc << 1) ^ POLY } else { crc << 1 };
        }
    }
    crc
}

/// Encodes one frame.
pub fn encode_frame(lsn: u64, kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CRC_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&lsn.to_le_bytes());
    out.push(kind.code());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc64(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Length-checked little-endian `u64` read; `None` when `bytes` does not
/// hold 8 bytes at `at` (the torn-tail shape, never a panic).
fn read_u64_le(bytes: &[u8], at: usize) -> Option<u64> {
    let s = bytes.get(at..at.checked_add(8)?)?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(s);
    Some(u64::from_le_bytes(buf))
}

/// Length-checked little-endian `u32` read; `None` when out of bounds.
fn read_u32_le(bytes: &[u8], at: usize) -> Option<u32> {
    let s = bytes.get(at..at.checked_add(4)?)?;
    let mut buf = [0u8; 4];
    buf.copy_from_slice(s);
    Some(u32::from_le_bytes(buf))
}

/// Decodes a byte stream into frames plus how it ended. Torn tails are a
/// *successful* decode (the caller truncates and moves on); corruption is
/// the error case. Decoding has no panic path: every multi-byte read is
/// length-checked, and a short read decodes as a torn tail.
pub fn decode_frames(bytes: &[u8]) -> Result<(Vec<WalFrame>, DecodeEnd), CorruptFrame> {
    let mut frames = Vec::new();
    let mut o = 0usize;
    let n = bytes.len();
    loop {
        if o == n {
            return Ok((frames, DecodeEnd::Clean));
        }
        if n - o < HEADER_LEN {
            return Ok((frames, DecodeEnd::TornTail { offset: o }));
        }
        if bytes[o..o + 4] != MAGIC {
            return Err(CorruptFrame { offset: o, what: "magic" });
        }
        let Some(lsn) = read_u64_le(bytes, o + 4) else {
            return Ok((frames, DecodeEnd::TornTail { offset: o }));
        };
        let kind_code = bytes[o + 12];
        let Some(len) = read_u32_le(bytes, o + 13) else {
            return Ok((frames, DecodeEnd::TornTail { offset: o }));
        };
        let len = len as usize;
        let Some(end) = o
            .checked_add(HEADER_LEN)
            .and_then(|v| v.checked_add(len))
            .and_then(|v| v.checked_add(CRC_LEN))
        else {
            return Ok((frames, DecodeEnd::TornTail { offset: o }));
        };
        if end > n {
            return Ok((frames, DecodeEnd::TornTail { offset: o }));
        }
        let Some(stored) = read_u64_le(bytes, end - CRC_LEN) else {
            return Ok((frames, DecodeEnd::TornTail { offset: o }));
        };
        if crc64(&bytes[o + 4..end - CRC_LEN]) != stored {
            // Malformed-to-EOF is the torn-tail shape; malformed followed
            // by more bytes cannot come from a crash.
            if end == n {
                return Ok((frames, DecodeEnd::TornTail { offset: o }));
            }
            return Err(CorruptFrame { offset: o, what: "crc" });
        }
        let Some(kind) = FrameKind::from_code(kind_code) else {
            return Err(CorruptFrame { offset: o, what: "kind" });
        };
        frames.push(WalFrame { lsn, kind, payload: bytes[o + HEADER_LEN..end - CRC_LEN].to_vec() });
        o = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_frames() -> Vec<u8> {
        let mut log = encode_frame(1, FrameKind::Put, b"alpha");
        log.extend_from_slice(&encode_frame(2, FrameKind::Put, b"beta"));
        log
    }

    #[test]
    fn round_trip() {
        let (frames, end) = decode_frames(&two_frames()).unwrap();
        assert_eq!(end, DecodeEnd::Clean);
        assert_eq!(frames.len(), 2);
        assert_eq!(
            frames[0],
            WalFrame { lsn: 1, kind: FrameKind::Put, payload: b"alpha".to_vec() }
        );
        assert_eq!(frames[1].lsn, 2);
    }

    #[test]
    fn every_truncation_point_is_clean_or_torn_never_corrupt() {
        let log = two_frames();
        for cut in 0..=log.len() {
            let (frames, end) = decode_frames(&log[..cut]).expect("truncation is never corruption");
            let first_len = encode_frame(1, FrameKind::Put, b"alpha").len();
            if cut == 0 || cut == first_len || cut == log.len() {
                assert_eq!(end, DecodeEnd::Clean, "cut at {cut}");
            } else {
                let expected = if cut < first_len { 0 } else { first_len };
                assert_eq!(end, DecodeEnd::TornTail { offset: expected }, "cut at {cut}");
            }
            assert_eq!(frames.len(), usize::from(cut >= first_len) + usize::from(cut == log.len()));
        }
    }

    #[test]
    fn mid_log_bitflip_is_corruption_not_torn() {
        let mut log = two_frames();
        // Flip a payload byte of the *first* frame: bad CRC followed by
        // a valid frame — must refuse, not silently drop the suffix.
        log[HEADER_LEN + 1] ^= 0x40;
        let err = decode_frames(&log).unwrap_err();
        assert_eq!(err.what, "crc");
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn final_frame_bitflip_reads_as_torn_tail() {
        let mut log = two_frames();
        let last = log.len() - 1;
        log[last] ^= 0x01;
        let (frames, end) = decode_frames(&log).unwrap();
        assert_eq!(frames.len(), 1, "intact prefix survives");
        assert!(matches!(end, DecodeEnd::TornTail { .. }));
    }

    #[test]
    fn bad_magic_is_corruption() {
        let mut log = two_frames();
        log[0] = b'X';
        assert_eq!(decode_frames(&log).unwrap_err().what, "magic");
    }

    #[test]
    fn unknown_kind_with_valid_crc_is_corruption() {
        let mut frame = encode_frame(1, FrameKind::Put, b"p");
        frame[12] = 200; // forge the kind, then re-seal the checksum
        let end = frame.len();
        let crc = crc64(&frame[4..end - CRC_LEN]);
        frame[end - CRC_LEN..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_frames(&frame).unwrap_err().what, "kind");
    }

    #[test]
    fn crc64_known_properties() {
        assert_eq!(crc64(b""), 0);
        assert_ne!(crc64(b"a"), crc64(b"b"));
        assert_eq!(crc64(b"123456789"), crc64(b"123456789"));
    }
}
