//! The vault: an append-only WAL plus snapshot compaction over a
//! [`SimDisk`], and the deterministic recovery replay that turns the
//! durable bytes back into a [`CorStore`].
//!
//! Commit discipline is **fsync-before-ack**: [`Vault::append`] only
//! stages a frame; nothing is acknowledged (or shipped to a replica, or
//! reported to a client) until [`Vault::commit`] runs the barrier. A
//! crash therefore loses only unacknowledged work — which is exactly
//! what lets recovery promise *zero lost cors*: every record anyone was
//! told about is below the durable LSN, and recovery reproduces the
//! store at that LSN byte-for-byte or refuses with a checked error.
//!
//! Replay is idempotent, keyed on the monotonic LSN (the same
//! prefix-dedup trick the chaos layer's `DeliveryLedger` uses for TCP
//! payload replacement): a duplicated append — a retry whose first copy
//! actually landed — is skipped, a *gap* in the sequence is a hard
//! [`VaultError::MissingRecords`] because a hole in cor state is a
//! security failure, not an availability blip.

use serde::{Deserialize, Serialize};
use tinman_cor::{CorRecord, CorStore};

use crate::disk::SimDisk;
use crate::wal::{decode_frames, encode_frame, CorruptFrame, DecodeEnd, FrameKind};

/// The WAL file name on the vault's disk.
pub const WAL_FILE: &str = "cor.wal";
/// The published snapshot file name.
pub const SNAP_FILE: &str = "cor.snap";
/// The staging name compaction writes before its atomic rename.
pub const SNAP_TMP: &str = "cor.snap.new";

/// One logged operation (the WAL's `Put` payload).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum VaultOp {
    /// Install one cor record; `next_id` is the allocator position after
    /// it, so replay restores allocation state exactly.
    Put {
        /// The record, plaintext included — the WAL lives on the trusted
        /// node, the one place plaintext may exist.
        record: CorRecord,
        /// Allocator position after this record.
        next_id: u8,
    },
}

/// Why the vault refused.
#[derive(Clone, Debug, PartialEq)]
pub enum VaultError {
    /// No durable snapshot exists — the vault was never safely created.
    SnapshotMissing,
    /// The snapshot file exists but does not decode to a store.
    CorruptSnapshot(String),
    /// Malformed bytes mid-log (not a torn tail; see [`CorruptFrame`]).
    CorruptLog(CorruptFrame),
    /// A frame's payload did not deserialize to a [`VaultOp`].
    BadPayload {
        /// The offending frame's LSN.
        lsn: u64,
    },
    /// The LSN sequence has a hole: a record someone was told about is
    /// gone. A security failure — recovery refuses rather than serving a
    /// store missing a placeholder↔plaintext binding.
    MissingRecords {
        /// The LSN recovery expected next.
        expected: u64,
        /// The LSN it found instead.
        found: u64,
    },
    /// Replaying a frame against the store failed validation.
    Apply {
        /// The offending frame's LSN.
        lsn: u64,
        /// The store's rejection.
        reason: String,
    },
    /// Serializing store state failed (wraps `PersistError`).
    Persist(String),
}

impl std::fmt::Display for VaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VaultError::SnapshotMissing => write!(f, "no durable snapshot"),
            VaultError::CorruptSnapshot(e) => write!(f, "corrupt snapshot: {e}"),
            VaultError::CorruptLog(e) => write!(f, "{e}"),
            VaultError::BadPayload { lsn } => write!(f, "undecodable payload at lsn {lsn}"),
            VaultError::MissingRecords { expected, found } => {
                write!(f, "log hole: expected lsn {expected}, found {found}")
            }
            VaultError::Apply { lsn, reason } => write!(f, "replay failed at lsn {lsn}: {reason}"),
            VaultError::Persist(e) => write!(f, "persist: {e}"),
        }
    }
}

impl std::error::Error for VaultError {}

/// Where a crash lands inside the compaction protocol (fault injection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactionCrash {
    /// After staging the new snapshot, before its fsync barrier.
    BeforeSnapshotSync,
    /// After the snapshot barrier, before the atomic rename publishes it.
    BeforeRename,
    /// After publish, before the WAL truncation is staged/synced.
    BeforeTruncate,
    /// After staging the WAL truncation, before its barrier.
    BeforeTruncateSync,
}

impl CompactionCrash {
    /// All injectable crash points, in protocol order.
    pub const ALL: [CompactionCrash; 4] = [
        CompactionCrash::BeforeSnapshotSync,
        CompactionCrash::BeforeRename,
        CompactionCrash::BeforeTruncate,
        CompactionCrash::BeforeTruncateSync,
    ];
}

/// Cumulative vault-level counters (the disk keeps its own I/O stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VaultStats {
    /// Frames staged.
    pub appends: u64,
    /// Commit barriers run.
    pub commits: u64,
    /// Compactions completed.
    pub compactions: u64,
}

/// What one recovery did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Highest LSN applied (snapshot base + replayed frames).
    pub applied_lsn: u64,
    /// The LSN the snapshot covered.
    pub snapshot_lsn: u64,
    /// Frames replayed from the WAL.
    pub replayed: u64,
    /// Duplicated appends skipped by the idempotent apply.
    pub duplicates: u64,
    /// True if a torn final write was truncated away.
    pub torn_tail_repaired: bool,
}

/// A recovered vault: the rebuilt store plus a vault ready to append.
/// Debug prints only the report — the store holds plaintext.
pub struct RecoveredVault {
    /// The vault, repositioned after the last durable frame.
    pub vault: Vault,
    /// The store recovery rebuilt.
    pub store: CorStore,
    /// What replay encountered.
    pub report: RecoveryReport,
}

impl std::fmt::Debug for RecoveredVault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveredVault").field("report", &self.report).finish_non_exhaustive()
    }
}

/// The append-only cor log over one simulated disk.
pub struct Vault {
    disk: SimDisk,
    /// Next LSN to assign.
    next_lsn: u64,
    /// Highest LSN covered by a commit barrier.
    durable_lsn: u64,
    /// The LSN the published snapshot covers.
    snapshot_lsn: u64,
    /// Committed frames not yet compacted away, for replica shipping.
    committed: Vec<(u64, Vec<u8>)>,
    /// Frames staged since the last barrier.
    staged: Vec<(u64, Vec<u8>)>,
    stats: VaultStats,
}

impl Vault {
    /// Creates a vault whose base snapshot is `store`'s current state,
    /// published durably (write, barrier) before returning.
    pub fn create(store: &CorStore) -> Result<Vault, VaultError> {
        let json = store.to_json().map_err(|e| VaultError::Persist(e.to_string()))?;
        let mut disk = SimDisk::new();
        let frame = encode_frame(0, FrameKind::Snapshot, json.as_bytes());
        disk.write_all(SNAP_FILE, &frame);
        disk.fsync(SNAP_FILE);
        Ok(Vault {
            disk,
            next_lsn: 1,
            durable_lsn: 0,
            snapshot_lsn: 0,
            committed: Vec::new(),
            staged: Vec::new(),
            stats: VaultStats::default(),
        })
    }

    /// Stages one operation; returns its LSN. **Not durable** until
    /// [`Vault::commit`].
    pub fn append(&mut self, op: &VaultOp) -> Result<u64, VaultError> {
        let payload = serde_json::to_string(op).map_err(|e| VaultError::Persist(e.to_string()))?;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let frame = encode_frame(lsn, FrameKind::Put, payload.as_bytes());
        self.disk.append(WAL_FILE, &frame);
        self.staged.push((lsn, frame));
        self.stats.appends += 1;
        Ok(lsn)
    }

    /// The commit barrier: everything staged becomes durable and
    /// acknowledgeable.
    pub fn commit(&mut self) {
        self.disk.fsync(WAL_FILE);
        self.durable_lsn = self.next_lsn - 1;
        self.committed.append(&mut self.staged);
        self.stats.commits += 1;
    }

    /// Fault injection: re-append the last *committed* frame, modeling a
    /// retry whose first copy actually landed (the ack was lost, the
    /// writer sent the bytes again). Recovery must dedup it by LSN.
    pub fn inject_duplicate_of_last_committed(&mut self) {
        if let Some((_, frame)) = self.committed.last() {
            let frame = frame.clone();
            self.disk.append(WAL_FILE, &frame);
        }
    }

    /// Highest acknowledged (fsynced) LSN.
    pub fn durable_lsn(&self) -> u64 {
        self.durable_lsn
    }

    /// The LSN the published snapshot covers.
    pub fn snapshot_lsn(&self) -> u64 {
        self.snapshot_lsn
    }

    /// Committed frames above `after`, `(lsn, frame bytes)` — what log
    /// shipping sends to a replica whose watermark is `after`.
    pub fn frames_after(&self, after: u64) -> Vec<(u64, Vec<u8>)> {
        self.committed.iter().filter(|(lsn, _)| *lsn > after).cloned().collect()
    }

    /// Vault-level counters.
    pub fn stats(&self) -> VaultStats {
        self.stats
    }

    /// The underlying disk (crash injection, byte scans).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Mutable disk access for crash injection.
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        &mut self.disk
    }

    /// Consumes the vault, returning the disk — the crash handoff:
    /// whatever was not committed is at the disk's mercy, and only
    /// [`Vault::recover`] can say what survived.
    pub fn into_disk(self) -> SimDisk {
        self.disk
    }

    /// True if `needle` appears in the vault's durable bytes (WAL or
    /// snapshot). Cor plaintexts are *supposed* to be here — this is the
    /// trusted node's storage — which is what makes the device-side scan
    /// meaningful: the same needle must never appear on a device surface.
    pub fn durable_bytes_contain(&self, needle: &str) -> bool {
        let hay_wal = String::from_utf8_lossy(self.disk.read(WAL_FILE)).into_owned();
        let hay_snap = String::from_utf8_lossy(self.disk.read(SNAP_FILE)).into_owned();
        hay_wal.contains(needle) || hay_snap.contains(needle)
    }

    /// Snapshot + log-truncation compaction: publish `store` (which must
    /// reflect every committed frame) as the new base image, then empty
    /// the WAL. Write-new → barrier → atomic rename → truncate → barrier,
    /// so a crash at *any* step leaves either the old or the new snapshot
    /// fully intact, never a blend.
    pub fn compact(&mut self, store: &CorStore) -> Result<(), VaultError> {
        self.compact_inner(store, None, 0).map(|_| ())
    }

    /// [`Vault::compact`] that dies at `crash` (with `seed` deciding any
    /// torn write). Returns the crashed disk for recovery; the vault is
    /// consumed — a crashed process does not keep running.
    pub fn compact_crashing_at(
        mut self,
        store: &CorStore,
        crash: CompactionCrash,
        seed: u64,
    ) -> Result<SimDisk, VaultError> {
        self.compact_inner(store, Some(crash), seed)?;
        Ok(self.disk)
    }

    fn compact_inner(
        &mut self,
        store: &CorStore,
        crash: Option<CompactionCrash>,
        seed: u64,
    ) -> Result<(), VaultError> {
        // Nothing uncommitted may slip into a snapshot: flush first.
        self.commit();
        let json = store.to_json().map_err(|e| VaultError::Persist(e.to_string()))?;
        let frame = encode_frame(self.durable_lsn, FrameKind::Snapshot, json.as_bytes());
        self.disk.write_all(SNAP_TMP, &frame);
        if crash == Some(CompactionCrash::BeforeSnapshotSync) {
            self.disk.crash(seed);
            return Ok(());
        }
        self.disk.fsync(SNAP_TMP);
        if crash == Some(CompactionCrash::BeforeRename) {
            self.disk.crash(seed);
            return Ok(());
        }
        self.disk.rename(SNAP_TMP, SNAP_FILE);
        if crash == Some(CompactionCrash::BeforeTruncate) {
            self.disk.crash(seed);
            return Ok(());
        }
        self.disk.write_all(WAL_FILE, &[]);
        if crash == Some(CompactionCrash::BeforeTruncateSync) {
            self.disk.crash(seed);
            return Ok(());
        }
        self.disk.fsync(WAL_FILE);
        self.snapshot_lsn = self.durable_lsn;
        self.committed.clear();
        self.stats.compactions += 1;
        Ok(())
    }

    /// Deterministic recovery: load the published snapshot, replay the
    /// WAL with LSN-idempotent apply, repair a torn tail by truncation.
    /// Returns the rebuilt store — byte-identical (via `to_json`) to the
    /// pre-crash store at the durable boundary — or a checked error.
    /// Never a panic, never a silently divergent store.
    pub fn recover(mut disk: SimDisk, reseed: u64) -> Result<RecoveredVault, VaultError> {
        // A leftover staging file is a compaction that died before its
        // rename: it was never published, so it is dead weight.
        if disk.exists(SNAP_TMP) {
            disk.remove(SNAP_TMP);
        }
        let snap_bytes = disk.read(SNAP_FILE).to_vec();
        if snap_bytes.is_empty() {
            return Err(VaultError::SnapshotMissing);
        }
        let (snap_frames, snap_end) =
            decode_frames(&snap_bytes).map_err(|e| VaultError::CorruptSnapshot(e.to_string()))?;
        let [snap] = snap_frames.as_slice() else {
            return Err(VaultError::CorruptSnapshot(format!(
                "expected one frame, found {}",
                snap_frames.len()
            )));
        };
        if snap_end != DecodeEnd::Clean || snap.kind != FrameKind::Snapshot {
            return Err(VaultError::CorruptSnapshot("torn or mis-typed snapshot frame".into()));
        }
        let json = std::str::from_utf8(&snap.payload)
            .map_err(|e| VaultError::CorruptSnapshot(e.to_string()))?;
        let mut store = CorStore::from_json(json, reseed)
            .map_err(|e| VaultError::CorruptSnapshot(e.to_string()))?;
        let snapshot_lsn = snap.lsn;
        let mut report =
            RecoveryReport { snapshot_lsn, applied_lsn: snapshot_lsn, ..Default::default() };

        let wal_bytes = disk.read(WAL_FILE).to_vec();
        let (frames, end) = decode_frames(&wal_bytes).map_err(VaultError::CorruptLog)?;
        if let DecodeEnd::TornTail { offset } = end {
            // Truncate the torn write away and make the repair durable.
            disk.write_all(WAL_FILE, &wal_bytes[..offset]);
            disk.fsync(WAL_FILE);
            report.torn_tail_repaired = true;
        }
        let mut committed = Vec::new();
        for frame in frames {
            if frame.kind != FrameKind::Put {
                return Err(VaultError::CorruptLog(CorruptFrame { offset: 0, what: "kind" }));
            }
            if frame.lsn <= report.applied_lsn {
                report.duplicates += 1;
                continue;
            }
            if frame.lsn != report.applied_lsn + 1 {
                return Err(VaultError::MissingRecords {
                    expected: report.applied_lsn + 1,
                    found: frame.lsn,
                });
            }
            let op: VaultOp = serde_json::from_slice(&frame.payload)
                .map_err(|_| VaultError::BadPayload { lsn: frame.lsn })?;
            let VaultOp::Put { record, next_id } = op;
            let bytes = encode_frame(frame.lsn, FrameKind::Put, &frame.payload);
            store
                .install_record(record, next_id)
                .map_err(|e| VaultError::Apply { lsn: frame.lsn, reason: e.to_string() })?;
            report.applied_lsn = frame.lsn;
            report.replayed += 1;
            committed.push((frame.lsn, bytes));
        }
        let vault = Vault {
            disk,
            next_lsn: report.applied_lsn + 1,
            durable_lsn: report.applied_lsn,
            snapshot_lsn,
            committed,
            staged: Vec::new(),
            stats: VaultStats::default(),
        };
        Ok(RecoveredVault { vault, store, report })
    }
}

/// Convenience used by the fleet's vault audit and the tests: append and
/// commit every record of `store` above the vault's base, one barrier
/// per record (the paper's node persists each derived cor as it mints
/// it).
pub fn log_store_records(vault: &mut Vault, store: &CorStore) -> Result<(), VaultError> {
    for record in store.export_records() {
        let next_id = record.id.raw() + 1;
        vault.append(&VaultOp::Put { record, next_id })?;
        vault.commit();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_store(n: usize) -> CorStore {
        let mut store = CorStore::with_label_range(42, 0, 32).unwrap();
        for i in 0..n {
            store.register(&format!("secret-{i}"), &format!("cor {i}"), &["site.example"]).unwrap();
        }
        store
    }

    fn empty_base() -> CorStore {
        CorStore::with_label_range(0xba5e, 0, 32).unwrap()
    }

    #[test]
    fn clean_log_and_recover_round_trips() {
        let reference = seeded_store(5);
        let mut vault = Vault::create(&empty_base()).unwrap();
        log_store_records(&mut vault, &reference).unwrap();
        assert_eq!(vault.durable_lsn(), 5);
        let rec = Vault::recover(vault.into_disk(), 0xba5e).unwrap();
        assert_eq!(rec.store.to_json().unwrap(), reference.to_json().unwrap());
        assert_eq!(rec.report.replayed, 5);
        assert!(!rec.report.torn_tail_repaired);
    }

    #[test]
    fn uncommitted_appends_are_lost_cleanly() {
        let reference = seeded_store(3);
        let records = reference.export_records();
        let mut vault = Vault::create(&empty_base()).unwrap();
        for r in &records[..2] {
            vault.append(&VaultOp::Put { record: r.clone(), next_id: r.id.raw() + 1 }).unwrap();
            vault.commit();
        }
        let r = &records[2];
        vault.append(&VaultOp::Put { record: r.clone(), next_id: r.id.raw() + 1 }).unwrap();
        // No commit: the crash eats it whole.
        let mut disk = vault.into_disk();
        disk.crash_losing_pending();
        let rec = Vault::recover(disk, 7).unwrap();
        assert_eq!(rec.report.applied_lsn, 2);
        assert_eq!(rec.store.len(), 2, "only acknowledged records recovered");
        // The durable prefix matches a reference built from it.
        let mut prefix = empty_base();
        for r in &records[..2] {
            prefix.install_record(r.clone(), r.id.raw() + 1).unwrap();
        }
        assert_eq!(rec.store.to_json().unwrap(), prefix.to_json().unwrap());
    }

    #[test]
    fn torn_tail_is_repaired_for_every_tear_point() {
        let reference = seeded_store(3);
        let records = reference.export_records();
        for budget in 0..400usize {
            let mut vault = Vault::create(&empty_base()).unwrap();
            for r in &records[..2] {
                vault.append(&VaultOp::Put { record: r.clone(), next_id: r.id.raw() + 1 }).unwrap();
                vault.commit();
            }
            let r = &records[2];
            vault.append(&VaultOp::Put { record: r.clone(), next_id: r.id.raw() + 1 }).unwrap();
            let pending = vault.disk().pending_bytes(WAL_FILE);
            let keep = budget.min(pending.saturating_sub(1));
            let mut disk = vault.into_disk();
            disk.crash_keeping(WAL_FILE, keep);
            let rec = Vault::recover(disk, 7).unwrap_or_else(|e| panic!("keep {keep}: {e}"));
            assert_eq!(rec.report.applied_lsn, 2, "keep {keep}");
            assert_eq!(rec.report.torn_tail_repaired, keep > 0, "keep {keep}");
            // Repair is durable: a second recovery sees a clean log.
            let rec2 = Vault::recover(rec.vault.into_disk(), 7).unwrap();
            assert!(!rec2.report.torn_tail_repaired);
            assert_eq!(rec2.report.applied_lsn, 2);
        }
    }

    #[test]
    fn duplicated_append_is_deduped_by_lsn() {
        let reference = seeded_store(2);
        let mut vault = Vault::create(&empty_base()).unwrap();
        log_store_records(&mut vault, &reference).unwrap();
        vault.inject_duplicate_of_last_committed();
        vault.commit();
        let rec = Vault::recover(vault.into_disk(), 3).unwrap();
        assert_eq!(rec.report.duplicates, 1);
        assert_eq!(rec.report.applied_lsn, 2);
        assert_eq!(rec.store.to_json().unwrap(), reference.to_json().unwrap());
    }

    #[test]
    fn lsn_gap_is_a_checked_security_error() {
        let reference = seeded_store(3);
        let records = reference.export_records();
        let mut vault = Vault::create(&empty_base()).unwrap();
        // Forge a log that skips lsn 2 by writing frames directly.
        let ops: Vec<VaultOp> = records
            .iter()
            .map(|r| VaultOp::Put { record: r.clone(), next_id: r.id.raw() + 1 })
            .collect();
        for (i, op) in ops.iter().enumerate() {
            if i == 1 {
                continue;
            }
            let payload = serde_json::to_string(op).unwrap();
            let frame = encode_frame(i as u64 + 1, FrameKind::Put, payload.as_bytes());
            vault.disk_mut().append(WAL_FILE, &frame);
        }
        vault.disk_mut().fsync(WAL_FILE);
        let err = Vault::recover(vault.into_disk(), 5).unwrap_err();
        assert_eq!(err, VaultError::MissingRecords { expected: 2, found: 3 });
    }

    #[test]
    fn mid_log_corruption_is_refused() {
        let reference = seeded_store(3);
        let mut vault = Vault::create(&empty_base()).unwrap();
        log_store_records(&mut vault, &reference).unwrap();
        let mut disk = vault.into_disk();
        let mut bytes = disk.read(WAL_FILE).to_vec();
        bytes[30] ^= 0xff; // inside the first frame, well before EOF
        disk.write_all(WAL_FILE, &bytes);
        disk.fsync(WAL_FILE);
        assert!(matches!(Vault::recover(disk, 5).unwrap_err(), VaultError::CorruptLog(_)));
    }

    #[test]
    fn compaction_single_frame_snapshot_recovers_without_wal() {
        let reference = seeded_store(4);
        let mut vault = Vault::create(&empty_base()).unwrap();
        log_store_records(&mut vault, &reference).unwrap();
        vault.compact(&reference).unwrap();
        assert_eq!(vault.snapshot_lsn(), 4);
        assert!(vault.frames_after(0).is_empty(), "log truncated");
        let rec = Vault::recover(vault.into_disk(), 8).unwrap();
        assert_eq!(rec.report.snapshot_lsn, 4);
        assert_eq!(rec.report.replayed, 0);
        assert_eq!(rec.store.to_json().unwrap(), reference.to_json().unwrap());
        // Appends continue above the snapshot LSN after recovery.
        let mut v = rec.vault;
        let mut grown = rec.store;
        let id = grown.register("post-compaction", "late", &[]).unwrap();
        let record = grown.get(id).unwrap().clone();
        assert_eq!(v.append(&VaultOp::Put { record, next_id: id.raw() + 1 }).unwrap(), 5);
        v.commit();
        let rec2 = Vault::recover(v.into_disk(), 8).unwrap();
        assert_eq!(rec2.store.to_json().unwrap(), grown.to_json().unwrap());
    }

    #[test]
    fn crash_at_every_compaction_point_recovers_the_full_store() {
        let reference = seeded_store(4);
        for crash in CompactionCrash::ALL {
            for seed in 0..8u64 {
                let mut vault = Vault::create(&empty_base()).unwrap();
                log_store_records(&mut vault, &reference).unwrap();
                let disk = vault.compact_crashing_at(&reference, crash, seed).unwrap();
                let rec = Vault::recover(disk, 9)
                    .unwrap_or_else(|e| panic!("{crash:?} seed {seed}: {e}"));
                assert_eq!(
                    rec.store.to_json().unwrap(),
                    reference.to_json().unwrap(),
                    "{crash:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn missing_snapshot_is_a_checked_error() {
        let disk = SimDisk::new();
        assert_eq!(Vault::recover(disk, 1).unwrap_err(), VaultError::SnapshotMissing);
    }

    #[test]
    fn plaintext_lives_in_the_vault_by_design() {
        let reference = seeded_store(2);
        let mut vault = Vault::create(&empty_base()).unwrap();
        log_store_records(&mut vault, &reference).unwrap();
        assert!(vault.durable_bytes_contain("secret-0"));
        vault.compact(&reference).unwrap();
        assert!(vault.durable_bytes_contain("secret-1"), "snapshot carries it after compaction");
        assert!(!vault.durable_bytes_contain("not-a-secret-anywhere"));
    }
}
