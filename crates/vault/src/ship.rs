//! Primary→replica log shipping with acknowledged watermarks.
//!
//! The primary ships committed WAL frames to each replica; a replica
//! applies them to its own vault (its own disk, its own barriers) and
//! acknowledges the highest LSN it has made durable — its *watermark*.
//! Failover policy reads watermarks, nothing else: a replica may serve a
//! session only if its watermark covers every LSN that session's cor
//! writes reached, because a lower watermark means some
//! placeholder↔plaintext binding exists that the replica provably does
//! not hold. A lagging replica first *anti-entropy catches up* — the
//! per-LSN cost here is what the fleet charges against the session's
//! penalty deadline — or the session degrades fail-closed.

use tinman_cor::CorStore;
use tinman_sim::{RetryBudget, RetryPolicy, SimDuration};

use crate::vault::{Vault, VaultError, VaultOp};
use crate::wal::decode_frames;

/// Simulated anti-entropy cost of replaying one LSN to a lagging
/// replica. Charged against the session's penalty deadline by the
/// cor-aware failover path.
pub const CATCH_UP_PER_LSN: SimDuration = SimDuration::from_millis(25);

/// The anti-entropy curve as a shared [`RetryPolicy`]: linear per-LSN,
/// no jitter — the same bytes the hand-rolled multiply produced.
pub fn catch_up_policy() -> RetryPolicy {
    RetryPolicy::linear(CATCH_UP_PER_LSN)
}

/// The anti-entropy cost of covering `lsns` missing records.
pub fn catch_up_cost(lsns: u64) -> SimDuration {
    catch_up_policy().delay(lsns)
}

/// Deadline-aware catch-up admission: the cost of covering `lsns`
/// missing records if (and only if) it fits in `budget`, which is
/// charged on success. `None` means the new owner cannot reach the
/// acked watermark within the session's remaining deadline — the caller
/// must refuse to serve (stale-replica fail-closed), never serve stale.
pub fn catch_up_within(lsns: u64, budget: &mut RetryBudget) -> Option<SimDuration> {
    let cost = catch_up_cost(lsns);
    if budget.admit(cost) {
        Some(cost)
    } else {
        None
    }
}

/// One replica: its own vault + store, and the injected lag that keeps
/// its watermark behind the primary until anti-entropy clears it.
struct Replica {
    vault: Vault,
    store: CorStore,
    /// Highest LSN this replica has applied *and made durable*.
    acked: u64,
    /// Injected shipping lag in LSNs (0 = ships fully).
    lag: u64,
}

impl Replica {
    /// Applies every primary frame in `(acked, limit]`.
    fn apply_up_to(&mut self, primary: &Vault, limit: u64) -> Result<u64, VaultError> {
        let mut applied = 0u64;
        for (lsn, frame) in primary.frames_after(self.acked) {
            if lsn > limit {
                break;
            }
            let (frames, _) = decode_frames(&frame).map_err(VaultError::CorruptLog)?;
            for f in frames {
                let op: VaultOp = serde_json::from_slice(&f.payload)
                    .map_err(|_| VaultError::BadPayload { lsn: f.lsn })?;
                let VaultOp::Put { ref record, next_id } = op;
                self.store
                    .install_record(record.clone(), next_id)
                    .map_err(|e| VaultError::Apply { lsn: f.lsn, reason: e.to_string() })?;
                self.vault.append(&op)?;
                self.vault.commit();
            }
            self.acked = lsn;
            applied += 1;
        }
        Ok(applied)
    }
}

/// A primary vault with a set of watermarked replicas.
pub struct ReplicatedVault {
    primary: Vault,
    primary_store_json: String,
    replicas: Vec<Replica>,
}

impl ReplicatedVault {
    /// A primary plus `replicas` replicas, all starting from `base`'s
    /// state (replica stores are rebuilt from the base snapshot, each
    /// with its own placeholder reseed — placeholders of existing
    /// records travel in the snapshot, so the stores stay identical).
    pub fn new(base: &CorStore, replicas: usize) -> Result<ReplicatedVault, VaultError> {
        let json = base.to_json().map_err(|e| VaultError::Persist(e.to_string()))?;
        let primary = Vault::create(base)?;
        let mut reps = Vec::with_capacity(replicas);
        for i in 0..replicas {
            let store = CorStore::from_json(&json, 0x5e11_ca00 ^ i as u64)
                .map_err(|e| VaultError::CorruptSnapshot(e.to_string()))?;
            reps.push(Replica { vault: Vault::create(&store)?, store, acked: 0, lag: 0 });
        }
        Ok(ReplicatedVault { primary, primary_store_json: json, replicas: reps })
    }

    /// The primary vault.
    pub fn primary(&self) -> &Vault {
        &self.primary
    }

    /// Appends an op on the primary (staged; ship on the next commit).
    pub fn append(&mut self, op: &VaultOp) -> Result<u64, VaultError> {
        self.primary.append(op)
    }

    /// Commits the primary and ships committed frames to every replica,
    /// honoring injected lag. Returns the primary's durable LSN.
    pub fn commit_and_ship(&mut self) -> Result<u64, VaultError> {
        self.primary.commit();
        let durable = self.primary.durable_lsn();
        for r in &mut self.replicas {
            let limit = durable.saturating_sub(r.lag);
            r.apply_up_to(&self.primary, limit)?;
        }
        Ok(durable)
    }

    /// Replica count.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Replica `i`'s acknowledged watermark.
    pub fn watermark(&self, i: usize) -> u64 {
        self.replicas[i].acked
    }

    /// The fleet-wide high-water mark: the primary's durable LSN.
    pub fn high_water(&self) -> u64 {
        self.primary.durable_lsn()
    }

    /// Injects shipping lag: replica `i`'s watermark stays `lsns` behind
    /// the primary until [`ReplicatedVault::catch_up`].
    pub fn set_lag(&mut self, i: usize, lsns: u64) {
        self.replicas[i].lag = lsns;
    }

    /// LSNs replica `i` is missing relative to the primary.
    pub fn lag_of(&self, i: usize) -> u64 {
        self.primary.durable_lsn().saturating_sub(self.replicas[i].acked)
    }

    /// Anti-entropy: replays everything replica `i` is missing and
    /// clears its injected lag. Returns the LSNs applied (multiply by
    /// [`CATCH_UP_PER_LSN`] for the simulated cost).
    pub fn catch_up(&mut self, i: usize) -> Result<u64, VaultError> {
        let durable = self.primary.durable_lsn();
        let r = &mut self.replicas[i];
        r.lag = 0;
        r.apply_up_to(&self.primary, durable)
    }

    /// The first replica whose watermark covers `needed_lsn` — the only
    /// legal immediate-failover targets.
    pub fn covering_replica(&self, needed_lsn: u64) -> Option<usize> {
        self.replicas.iter().position(|r| r.acked >= needed_lsn)
    }

    /// Replica `i`'s store as snapshot JSON (for byte-identity checks).
    pub fn replica_store_json(&self, i: usize) -> Result<String, VaultError> {
        self.replicas[i].store.to_json().map_err(|e| VaultError::Persist(e.to_string()))
    }

    /// The base snapshot every member started from.
    pub fn base_json(&self) -> &str {
        &self.primary_store_json
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinman_cor::CorRecord;

    fn base() -> CorStore {
        CorStore::with_label_range(1, 0, 32).unwrap()
    }

    fn put(store: &mut CorStore, i: usize) -> (CorRecord, u8) {
        let id = store.register(&format!("pw-{i}"), &format!("cor {i}"), &["a.example"]).unwrap();
        (store.get(id).unwrap().clone(), id.raw() + 1)
    }

    #[test]
    fn shipping_tracks_the_primary_watermark() {
        let mut reference = base();
        let mut rv = ReplicatedVault::new(&base(), 2).unwrap();
        for i in 0..3 {
            let (rec, next) = put(&mut reference, i);
            rv.append(&VaultOp::Put { record: rec, next_id: next }).unwrap();
            let durable = rv.commit_and_ship().unwrap();
            assert_eq!(durable, i as u64 + 1);
            assert_eq!(rv.watermark(0), durable);
            assert_eq!(rv.watermark(1), durable);
        }
        for i in 0..2 {
            assert_eq!(rv.replica_store_json(i).unwrap(), reference.to_json().unwrap());
        }
    }

    #[test]
    fn lagging_replica_stays_behind_until_catch_up() {
        let mut reference = base();
        let mut rv = ReplicatedVault::new(&base(), 2).unwrap();
        rv.set_lag(1, 2);
        for i in 0..4 {
            let (rec, next) = put(&mut reference, i);
            rv.append(&VaultOp::Put { record: rec, next_id: next }).unwrap();
            rv.commit_and_ship().unwrap();
        }
        assert_eq!(rv.high_water(), 4);
        assert_eq!(rv.watermark(0), 4);
        assert_eq!(rv.watermark(1), 2, "injected lag holds the watermark back");
        assert_eq!(rv.lag_of(1), 2);
        // Cor-aware failover: replica 1 may not serve a session whose
        // writes reached lsn 4.
        assert_eq!(rv.covering_replica(4), Some(0));
        assert_eq!(rv.covering_replica(2), Some(0));
        let applied = rv.catch_up(1).unwrap();
        assert_eq!(applied, 2);
        assert_eq!(rv.watermark(1), 4);
        assert_eq!(rv.replica_store_json(1).unwrap(), reference.to_json().unwrap());
    }

    #[test]
    fn no_covering_replica_means_fail_closed() {
        let mut reference = base();
        let mut rv = ReplicatedVault::new(&base(), 1).unwrap();
        rv.set_lag(0, u64::MAX);
        let (rec, next) = put(&mut reference, 0);
        rv.append(&VaultOp::Put { record: rec, next_id: next }).unwrap();
        rv.commit_and_ship().unwrap();
        assert_eq!(rv.covering_replica(1), None, "nobody may serve this session");
        assert_eq!(rv.covering_replica(0), Some(0), "sessions that wrote nothing are fine");
    }

    #[test]
    fn catch_up_cost_is_linear_and_visible() {
        assert_eq!(catch_up_cost(0), SimDuration::ZERO);
        assert_eq!(catch_up_cost(4), SimDuration::from_millis(100));
    }

    #[test]
    fn catch_up_within_budget_charges_or_refuses() {
        let mut budget = RetryBudget::new(SimDuration::from_millis(60));
        assert_eq!(catch_up_within(2, &mut budget), Some(SimDuration::from_millis(50)));
        assert_eq!(budget.remaining(), SimDuration::from_millis(10));
        assert_eq!(catch_up_within(1, &mut budget), None, "25ms no longer fits");
        assert_eq!(budget.spent(), SimDuration::from_millis(50), "refusal charges nothing");
    }

    #[test]
    fn replica_recovery_matches_primary_recovery() {
        let mut reference = base();
        let mut rv = ReplicatedVault::new(&base(), 1).unwrap();
        for i in 0..3 {
            let (rec, next) = put(&mut reference, i);
            rv.append(&VaultOp::Put { record: rec, next_id: next }).unwrap();
            rv.commit_and_ship().unwrap();
        }
        let ReplicatedVault { primary, mut replicas, .. } = rv;
        let p = Vault::recover(primary.into_disk(), 5).unwrap();
        let r = Vault::recover(replicas.remove(0).vault.into_disk(), 5).unwrap();
        assert_eq!(p.store.to_json().unwrap(), reference.to_json().unwrap());
        assert_eq!(r.store.to_json().unwrap(), reference.to_json().unwrap());
    }
}
