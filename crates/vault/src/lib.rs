//! tinman-vault: crash-consistent, replicated cor state.
//!
//! The paper's whole guarantee hangs on the trusted node being the one
//! place cor plaintext lives (§3.6 has the node persisting its store —
//! including derived cors minted mid-session — across restarts). That
//! makes node durability a *security* property: a partially recovered
//! store is a wrong placeholder↔plaintext binding, not merely downtime.
//! This crate provides the durability layer the fleet's failover builds
//! on:
//!
//! * [`SimDisk`] — a simulated disk whose only contract is the fsync
//!   barrier: unsynced writes may land whole, torn, or not at all.
//! * [`wal`] — checksummed, LSN-framed record encoding that tells torn
//!   tails (repairable crash artifacts) apart from corruption (refuse).
//! * [`Vault`] — append/commit over the WAL, snapshot + log-truncation
//!   compaction with an atomic-rename publish, and [`Vault::recover`]:
//!   deterministic replay that is idempotent on the LSN, repairs torn
//!   tails, and reproduces the pre-crash store byte-for-byte at the
//!   durable boundary — or fails with a checked [`VaultError`].
//! * [`ReplicatedVault`] — primary→replica log shipping with a per-
//!   replica acknowledged watermark, the signal cor-aware failover
//!   reads: serve only from a replica whose watermark covers the
//!   session's writes, anti-entropy catch-up otherwise (at
//!   [`CATCH_UP_PER_LSN`] per missing record), or fail closed.

#![warn(missing_docs)]

mod disk;
mod ship;
mod vault;
pub mod wal;

pub use disk::{DiskStats, SimDisk};
pub use ship::{
    catch_up_cost, catch_up_policy, catch_up_within, ReplicatedVault, CATCH_UP_PER_LSN,
};
pub use vault::{
    log_store_records, CompactionCrash, RecoveredVault, RecoveryReport, Vault, VaultError, VaultOp,
    VaultStats, SNAP_FILE, SNAP_TMP, WAL_FILE,
};
