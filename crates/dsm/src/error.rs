//! DSM error type.

use std::fmt;

use tinman_taint::TaintSet;
use tinman_vm::{ObjId, VmError};

/// An error raised while building or applying a synchronization delta.
#[derive(Clone, Debug, PartialEq)]
pub enum DsmError {
    /// A heap operation failed while applying a delta.
    Vm(VmError),
    /// The materializer has no cor registered for these labels.
    UnknownCor {
        /// The labels that could not be resolved.
        labels: TaintSet,
    },
    /// A materialized payload did not match the token's recorded shape
    /// (e.g. a placeholder of the wrong length).
    ShapeMismatch {
        /// The object being materialized.
        obj: ObjId,
        /// Description of the mismatch.
        detail: String,
    },
    /// A delta entry referenced an object id that cannot be applied in
    /// order (corrupted or reordered delta).
    BadDeltaEntry {
        /// The offending object.
        obj: ObjId,
    },
    /// A synchronization was attempted while the peer endpoint was inside a
    /// scheduled outage window (chaos-injected node crash or DSM timeout).
    SyncTimeout {
        /// Simulated time of the attempt, in nanoseconds since epoch.
        at_ns: u64,
    },
    /// The endpoint attempted to ship plaintext cor content — the invariant
    /// the whole system exists to maintain. Raised by the delta-building
    /// guards, which refuse to serialize tainted content.
    CorLeakPrevented {
        /// The object whose content was about to leak.
        obj: ObjId,
        /// The labels involved.
        labels: TaintSet,
    },
    /// The session crossed its guard budget for synchronization count (a
    /// sync-flooding guest). Only raised when a budget is installed.
    SyncBudgetExhausted {
        /// Synchronizations completed before the refusal.
        syncs: u64,
    },
    /// The session crossed its guard budget for shipped delta bytes. Only
    /// raised when a budget is installed.
    SyncBytesExhausted {
        /// Total bytes shipped, including the offending sync.
        bytes: u64,
    },
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmError::Vm(e) => write!(f, "heap error during sync: {e}"),
            DsmError::UnknownCor { labels } => {
                write!(f, "no cor registered for labels {labels:?}")
            }
            DsmError::ShapeMismatch { obj, detail } => {
                write!(f, "shape mismatch materializing {obj:?}: {detail}")
            }
            DsmError::BadDeltaEntry { obj } => {
                write!(f, "delta entry for {obj:?} cannot be applied")
            }
            DsmError::SyncTimeout { at_ns } => {
                write!(f, "sync timed out at t={at_ns}ns: peer endpoint unreachable")
            }
            DsmError::CorLeakPrevented { obj, labels } => {
                write!(f, "refused to serialize tainted content of {obj:?} (labels {labels:?})")
            }
            DsmError::SyncBudgetExhausted { syncs } => {
                write!(f, "sync budget exhausted after {syncs} synchronizations")
            }
            DsmError::SyncBytesExhausted { bytes } => {
                write!(f, "sync byte budget exhausted at {bytes} shipped bytes")
            }
        }
    }
}

impl std::error::Error for DsmError {}

impl From<VmError> for DsmError {
    fn from(e: VmError) -> Self {
        DsmError::Vm(e)
    }
}
