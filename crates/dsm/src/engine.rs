//! The DSM engine: migration packets, sync accounting, and the
//! endpoint-pair heap-mirroring protocol.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use tinman_obs::{TraceEvent, TraceHandle};
use tinman_sim::{SimClock, SimTime};
use tinman_vm::machine::LockSite;
use tinman_vm::{Frame, Machine, ObjId};

use crate::delta::HeapDelta;
use crate::error::DsmError;
use crate::token::CorMaterializer;

/// Why a synchronization happened — the paper's three observed causes
/// (§6.3) plus the return migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncCause {
    /// The client touched a tainted placeholder (offload trigger).
    OffloadTrigger,
    /// The trusted node invoked a non-offloadable native (migrate back).
    NonOffloadableNative,
    /// A happens-before edge required transferring a remotely-owned lock.
    LockTransfer,
    /// The trusted node went taint-idle (migrate back, §3.1 case 1).
    TaintIdle,
}

impl SyncCause {
    /// Stable snake_case name for trace events and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SyncCause::OffloadTrigger => "offload_trigger",
            SyncCause::NonOffloadableNative => "non_offloadable_native",
            SyncCause::LockTransfer => "lock_transfer",
            SyncCause::TaintIdle => "taint_idle",
        }
    }
}

/// Cumulative DSM statistics for one app session — the raw material of
/// Table 3.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DsmStats {
    /// Number of synchronizations (either direction).
    pub sync_count: u64,
    /// Bytes shipped by the initial full-heap sync.
    pub init_bytes: u64,
    /// Bytes shipped by all subsequent dirty syncs.
    pub dirty_bytes: u64,
    /// Per-cause sync counts, indexed by [`SyncCause`] order.
    pub causes: Vec<(SyncCause, u64)>,
}

impl DsmStats {
    fn record_cause(&mut self, cause: SyncCause) {
        if let Some((_, n)) = self.causes.iter_mut().find(|(c, _)| *c == cause) {
            *n += 1;
        } else {
            self.causes.push((cause, 1));
        }
    }

    /// Count of syncs attributed to `cause`.
    pub fn cause_count(&self, cause: SyncCause) -> u64 {
        self.causes.iter().find(|(c, _)| *c == cause).map(|(_, n)| *n).unwrap_or(0)
    }

    /// Total bytes shipped.
    pub fn total_bytes(&self) -> u64 {
        self.init_bytes + self.dirty_bytes
    }

    /// Merges another engine's statistics into this one (multi-node
    /// aggregation).
    pub fn absorb(&mut self, other: &DsmStats) {
        self.sync_count += other.sync_count;
        self.init_bytes += other.init_bytes;
        self.dirty_bytes += other.dirty_bytes;
        for (cause, n) in &other.causes {
            if let Some((_, m)) = self.causes.iter_mut().find(|(c, _)| c == cause) {
                *m += n;
            } else {
                self.causes.push((*cause, *n));
            }
        }
    }
}

/// One migration message: the suspended thread plus the heap changes the
/// other endpoint has not seen.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MigrationPacket {
    /// The thread's full call stack. Frames are small (the paper's DSM
    /// ships them wholesale).
    pub frames: Vec<Frame>,
    /// Heap changes since the last sync.
    pub delta: HeapDelta,
    /// The sender's monitor table. Ownership is rewritten on both sides so
    /// that monitors held by the migrating thread follow it (COMET's
    /// lock-ownership transfer).
    pub locks: HashMap<ObjId, (LockSite, u32)>,
    /// Monitors held by non-migrating background threads (these stay with
    /// their endpoint across thread migrations).
    pub pinned: std::collections::HashSet<ObjId>,
    /// Which endpoint sent this packet.
    pub from: LockSite,
    /// Why this sync happened.
    pub cause: SyncCause,
}

impl MigrationPacket {
    /// Serialized size in bytes (what the radio transfers).
    pub fn wire_bytes(&self) -> u64 {
        serde_json::to_vec(self).map(|v| v.len() as u64).unwrap_or(0)
    }

    /// True if the serialized form contains `needle` — the security tests'
    /// wire-sniffing check.
    pub fn wire_contains(&self, needle: &str) -> bool {
        serde_json::to_string(self).map(|s| s.contains(needle)).unwrap_or(false)
    }
}

/// A scheduled DSM outage: synchronizations attempted while the clock is
/// inside any of the `windows` fail with [`DsmError::SyncTimeout`] — the
/// simulated form of "the trusted node stopped answering mid-session".
///
/// An empty window list is a valid, inert fault: the chaos layer installs
/// one unconditionally so checkpoint recording behaves identically whether
/// or not a crash is scheduled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncFault {
    /// Half-open outage windows `[from, until)` on the session timeline.
    pub windows: Vec<(SimTime, SimTime)>,
}

impl SyncFault {
    /// A fault with no outage windows (checkpoint recording only).
    pub fn inert() -> Self {
        SyncFault::default()
    }

    /// A single open-ended outage starting at `from` — a node crash with
    /// no recovery inside this session.
    pub fn crash_at(from: SimTime) -> Self {
        SyncFault { windows: vec![(from, SimTime::MAX)] }
    }

    /// True if `now` falls inside any outage window.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.windows.iter().any(|&(from, until)| now >= from && now < until)
    }

    /// When the outage window covering `now` ends, or `None` if `now` is
    /// outside every window. A retry-with-backoff loop uses this to
    /// decide whether waiting can ever clear the fault (open-ended
    /// crashes return `SimTime::MAX`: waiting is hopeless, fail closed).
    pub fn clears_at(&self, now: SimTime) -> Option<SimTime> {
        self.windows
            .iter()
            .filter(|&&(from, until)| now >= from && now < until)
            .map(|&(_, until)| until)
            .max()
    }
}

/// A guard budget on DSM activity for one session: sync count and shipped
/// delta bytes. Installed by the runtime when a [`GuardPolicy`] is armed;
/// absent (the default), the engine behaves exactly as before.
///
/// [`GuardPolicy`]: https://docs.rs/tinman-guard
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncBudget {
    /// Maximum synchronizations (either direction).
    pub max_syncs: u64,
    /// Maximum total bytes shipped by deltas.
    pub max_bytes: u64,
}

/// The offloading engine for one (client, trusted node) machine pair.
///
/// The engine itself is endpoint-agnostic: the runtime holds one instance
/// and calls [`DsmEngine::migrate`] to move execution either direction, or
/// [`DsmEngine::lock_transfer`] to exchange heap state without moving the
/// thread (lock transfers).
#[derive(Clone, Debug, Default)]
pub struct DsmEngine {
    stats: DsmStats,
    init_done: bool,
    /// Tracing wiring: `(handle, clock, track)`. `None` (the default)
    /// keeps every sync path free of clock reads and event construction.
    trace: Option<(TraceHandle, SimClock, u64)>,
    /// Fault wiring: `(fault, clock)`. `None` (the default) keeps sync
    /// paths free of clock reads; checkpoints are recorded only when this
    /// is present, never from the trace wiring, so traced and untraced
    /// runs stay byte-identical.
    fault: Option<(SyncFault, SimClock)>,
    /// Guard budget wiring. `None` (the default) keeps every sync path
    /// free of budget arithmetic, so unguarded runs are byte-identical to
    /// the pre-guard engine.
    budget: Option<SyncBudget>,
    /// The instant of the most recent completed synchronization — the
    /// checkpoint a replay can resume from.
    last_sync_at: Option<SimTime>,
}

impl DsmEngine {
    /// A fresh engine (no sync performed yet).
    pub fn new() -> Self {
        DsmEngine::default()
    }

    /// Wires the engine to a trace sink: every synchronization emits a
    /// `dsm_sync` event (cause, direction, wire bytes) stamped with
    /// `clock` on `track`. The runtime re-wires its engines at the start
    /// of each run (engines are rebuilt per run).
    pub fn set_trace(&mut self, trace: TraceHandle, clock: SimClock, track: u64) {
        self.trace = if trace.is_enabled() { Some((trace, clock, track)) } else { None };
    }

    /// Installs a sync-fault window read against `clock`. Synchronizations
    /// attempted inside a window fail with [`DsmError::SyncTimeout`];
    /// completed synchronizations record a checkpoint readable via
    /// [`DsmEngine::last_sync_at`]. Like [`DsmEngine::set_trace`], this
    /// must be re-applied each run (the runtime rebuilds engines).
    pub fn set_fault(&mut self, fault: SyncFault, clock: SimClock) {
        self.fault = Some((fault, clock));
    }

    /// The checkpoint: when the last completed synchronization happened.
    /// `None` before the first sync or when no fault wiring is installed.
    pub fn last_sync_at(&self) -> Option<SimTime> {
        self.last_sync_at
    }

    /// When the sync-fault window covering the current clock ends —
    /// `None` when no fault is wired or the clock is outside every
    /// window. The runtime's bounded re-sync retry consults this to pick
    /// a backoff that can actually clear the outage.
    pub fn fault_clears_at(&self) -> Option<SimTime> {
        let (fault, clock) = self.fault.as_ref()?;
        fault.clears_at(clock.now())
    }

    /// Installs a guard budget on sync count and shipped bytes. Like
    /// [`DsmEngine::set_trace`], this must be re-applied each run (the
    /// runtime rebuilds engines).
    pub fn set_budget(&mut self, budget: SyncBudget) {
        self.budget = Some(budget);
    }

    /// Refuses a sync that would cross the sync-count budget (checked
    /// before any state moves, so a refused sync ships nothing).
    fn check_sync_count(&self) -> Result<(), DsmError> {
        if let Some(b) = &self.budget {
            if self.stats.sync_count >= b.max_syncs {
                return Err(DsmError::SyncBudgetExhausted { syncs: self.stats.sync_count });
            }
        }
        Ok(())
    }

    /// Flags a crossed byte budget after the sync's bytes were accounted
    /// (sizes are only known post-serialization).
    fn check_sync_bytes(&self) -> Result<(), DsmError> {
        if let Some(b) = &self.budget {
            let bytes = self.stats.total_bytes();
            if bytes > b.max_bytes {
                return Err(DsmError::SyncBytesExhausted { bytes });
            }
        }
        Ok(())
    }

    fn check_sync_fault(&self) -> Result<(), DsmError> {
        if let Some((fault, clock)) = &self.fault {
            let now = clock.now();
            if fault.active_at(now) {
                return Err(DsmError::SyncTimeout { at_ns: now.as_nanos() });
            }
        }
        Ok(())
    }

    fn record_checkpoint(&mut self) {
        if let Some((_, clock)) = &self.fault {
            self.last_sync_at = Some(clock.now());
        }
    }

    fn emit_sync(&self, cause: SyncCause, init: bool, bytes: u64) {
        if let Some((trace, clock, track)) = &self.trace {
            trace.emit_on(
                *track,
                clock.now(),
                TraceEvent::DsmSync { cause: cause.as_str(), init, bytes },
            );
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DsmStats {
        &self.stats
    }

    /// True once the initial full-heap sync has happened (the app is "warm"
    /// on the trusted node).
    pub fn init_done(&self) -> bool {
        self.init_done
    }

    /// Resets statistics but keeps warm state.
    pub fn reset_stats(&mut self) {
        self.stats = DsmStats::default();
    }

    /// Builds the outgoing packet on the sending endpoint. The first sync of
    /// a session ships the full heap; later ones ship fresh/dirty state
    /// only. The sender's heap sync-marks are cleared.
    pub fn depart(
        &mut self,
        machine: &mut Machine,
        from: LockSite,
        cause: SyncCause,
        mat: &mut dyn CorMaterializer,
    ) -> Result<MigrationPacket, DsmError> {
        self.check_sync_fault()?;
        self.check_sync_count()?;
        let delta = if self.init_done {
            HeapDelta::build_dirty(&machine.heap, mat)?
        } else {
            HeapDelta::build_full(&machine.heap, mat)?
        };
        machine.heap.clear_sync_marks();
        let packet = MigrationPacket {
            frames: machine.frames.clone(),
            delta,
            locks: machine.locks.clone(),
            pinned: machine.pinned_locks.clone(),
            from,
            cause,
        };
        // The thread leaves this endpoint: monitors it holds go with it.
        machine.transfer_locks(from, from.other());
        let bytes = packet.wire_bytes();
        let init = !self.init_done;
        if self.init_done {
            self.stats.dirty_bytes += bytes;
        } else {
            self.stats.init_bytes += bytes;
            self.init_done = true;
        }
        self.stats.sync_count += 1;
        self.stats.record_cause(cause);
        self.check_sync_bytes()?;
        self.record_checkpoint();
        self.emit_sync(cause, init, bytes);
        Ok(packet)
    }

    /// Applies an incoming packet on the receiving endpoint: heap delta,
    /// thread frames, and lock ownership transfer.
    pub fn arrive(
        &mut self,
        machine: &mut Machine,
        packet: &MigrationPacket,
        mat: &mut dyn CorMaterializer,
    ) -> Result<(), DsmError> {
        packet.delta.apply(&mut machine.heap, mat)?;
        machine.heap.clear_sync_marks();
        machine.frames = packet.frames.clone();
        // Mirror the sender's monitor table, with the migrating thread's
        // monitors re-homed to this endpoint (pinned monitors stay put).
        machine.locks = packet.locks.clone();
        machine.pinned_locks = packet.pinned.clone();
        machine.transfer_locks(packet.from, packet.from.other());
        Ok(())
    }

    /// Full migration: departs from `src` and arrives at `dst` in one call.
    /// Returns the packet (for wire accounting and sniffing by the caller).
    pub fn migrate(
        &mut self,
        src: &mut Machine,
        dst: &mut Machine,
        from: LockSite,
        cause: SyncCause,
        src_mat: &mut dyn CorMaterializer,
        dst_mat: &mut dyn CorMaterializer,
    ) -> Result<MigrationPacket, DsmError> {
        let packet = self.depart(src, from, cause, src_mat)?;
        self.arrive(dst, &packet, dst_mat)?;
        Ok(packet)
    }

    /// The lock-transfer synchronization (no thread movement): the
    /// `requester` is blocked on a monitor owned by the (paused) `holder`
    /// endpoint. COMET establishes the happens-before edge by exchanging
    /// state **both ways** and handing the monitor over; counted as one
    /// synchronization. Returns the total bytes exchanged.
    pub fn lock_transfer(
        &mut self,
        requester: &mut Machine,
        holder: &mut Machine,
        holder_site: LockSite,
        requester_mat: &mut dyn CorMaterializer,
        holder_mat: &mut dyn CorMaterializer,
    ) -> Result<u64, DsmError> {
        self.check_sync_fault()?;
        self.check_sync_count()?;
        // holder -> requester: anything the paused side still has unsynced.
        let d1 = HeapDelta::build_dirty(&holder.heap, holder_mat)?;
        d1.apply(&mut requester.heap, requester_mat)?;
        holder.heap.clear_sync_marks();
        // requester -> holder: what the running side produced so far, so
        // no fresh object is ever silently unmarked.
        let d2 = HeapDelta::build_dirty(&requester.heap, requester_mat)?;
        d2.apply(&mut holder.heap, holder_mat)?;
        requester.heap.clear_sync_marks();
        // Hand every monitor the holder endpoint owns (including the
        // pinned, background-thread one that caused this sync) to the
        // requester, in both endpoints' views.
        requester.pinned_locks = holder.pinned_locks.clone();
        requester.transfer_all_locks(holder_site, holder_site.other());
        holder.transfer_all_locks(holder_site, holder_site.other());
        requester.pinned_locks.clear();
        holder.pinned_locks.clear();

        let bytes = d1.wire_bytes() + d2.wire_bytes();
        self.stats.dirty_bytes += bytes;
        self.stats.sync_count += 1;
        self.stats.record_cause(SyncCause::LockTransfer);
        self.check_sync_bytes()?;
        self.record_checkpoint();
        self.emit_sync(SyncCause::LockTransfer, false, bytes);
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::PassthroughMaterializer;
    use tinman_taint::{Label, TaintSet};
    use tinman_vm::{FuncId, ObjId, Value};

    fn machine_with_data() -> Machine {
        let mut m = Machine::new();
        m.heap.alloc_str("shared state");
        let o = m.heap.alloc_obj(0, 2);
        m.heap.field_set(o, 0, Value::Int(5)).unwrap();
        // Enough bulk that the initial sync dwarfs dirty syncs, as in a
        // real app heap.
        for i in 0..60 {
            m.heap.alloc_str(format!("framework object {i} with some payload bytes"));
        }
        m.frames.push(Frame::new(FuncId(0), "main", 2));
        m
    }

    #[test]
    fn first_sync_is_init_later_syncs_are_dirty() {
        let mut eng = DsmEngine::new();
        let mut client = machine_with_data();
        let mut node = Machine::new();

        let p1 = eng
            .migrate(
                &mut client,
                &mut node,
                LockSite::Client,
                SyncCause::OffloadTrigger,
                &mut PassthroughMaterializer,
                &mut PassthroughMaterializer,
            )
            .unwrap();
        assert!(eng.init_done());
        assert_eq!(eng.stats().sync_count, 1);
        assert_eq!(eng.stats().init_bytes, p1.wire_bytes());
        assert_eq!(eng.stats().dirty_bytes, 0);

        // Node mutates a little, migrates back.
        node.heap.field_set(ObjId(1), 1, Value::Int(42)).unwrap();
        let p2 = eng
            .migrate(
                &mut node,
                &mut client,
                LockSite::TrustedNode,
                SyncCause::TaintIdle,
                &mut PassthroughMaterializer,
                &mut PassthroughMaterializer,
            )
            .unwrap();
        assert_eq!(eng.stats().sync_count, 2);
        assert_eq!(eng.stats().dirty_bytes, p2.wire_bytes());
        assert!(p2.wire_bytes() < p1.wire_bytes() / 2, "dirty sync must be much smaller");
        assert_eq!(client.heap.field_get(ObjId(1), 1).unwrap(), Value::Int(42));
    }

    #[test]
    fn migration_moves_frames_and_heap() {
        let mut eng = DsmEngine::new();
        let mut client = machine_with_data();
        let mut node = Machine::new();
        client.frames[0].push(Value::Int(9), TaintSet::EMPTY);
        client.frames[0].pc = 17;

        eng.migrate(
            &mut client,
            &mut node,
            LockSite::Client,
            SyncCause::OffloadTrigger,
            &mut PassthroughMaterializer,
            &mut PassthroughMaterializer,
        )
        .unwrap();
        assert_eq!(node.call_depth(), 1);
        assert_eq!(node.frames[0].pc, 17);
        assert_eq!(node.frames[0].peek(0).unwrap().0, Value::Int(9));
        assert_eq!(node.heap.str_value(ObjId(0)).unwrap(), "shared state");
    }

    #[test]
    fn lock_ownership_transfers_on_migration() {
        let mut eng = DsmEngine::new();
        let mut client = machine_with_data();
        client.locks.insert(ObjId(0), (LockSite::Client, 1));
        let mut node = Machine::new();

        eng.migrate(
            &mut client,
            &mut node,
            LockSite::Client,
            SyncCause::OffloadTrigger,
            &mut PassthroughMaterializer,
            &mut PassthroughMaterializer,
        )
        .unwrap();
        assert_eq!(node.lock_site(ObjId(0)), Some(LockSite::TrustedNode));
    }

    #[test]
    fn lock_transfer_hands_over_pinned_monitor_and_exchanges_state() {
        let mut eng = DsmEngine::new();
        let mut client = machine_with_data();
        let mut node = Machine::new();
        // A background thread on the client holds a pinned monitor.
        client.locks.insert(ObjId(0), (LockSite::Client, 1));
        client.pinned_locks.insert(ObjId(0));
        // Warm up (migration must NOT move the pinned monitor).
        eng.migrate(
            &mut client,
            &mut node,
            LockSite::Client,
            SyncCause::OffloadTrigger,
            &mut PassthroughMaterializer,
            &mut PassthroughMaterializer,
        )
        .unwrap();
        assert_eq!(node.lock_site(ObjId(0)), Some(LockSite::Client), "pinned stays");

        // Node runs, allocates, then blocks on the pinned monitor.
        let fresh = node.heap.alloc_str("node-made this");
        let bytes = eng
            .lock_transfer(
                &mut node,
                &mut client,
                LockSite::Client,
                &mut PassthroughMaterializer,
                &mut PassthroughMaterializer,
            )
            .unwrap();
        assert!(bytes > 0);
        assert_eq!(node.lock_site(ObjId(0)), Some(LockSite::TrustedNode));
        assert_eq!(client.lock_site(ObjId(0)), Some(LockSite::TrustedNode));
        // Both directions of state flowed: the client learned about the
        // node's fresh object.
        assert_eq!(client.heap.str_value(fresh).unwrap(), "node-made this");
        assert_eq!(eng.stats().cause_count(SyncCause::LockTransfer), 1);
        assert_eq!(client.call_depth(), 1, "frames are not clobbered");
    }

    #[test]
    fn tainted_wire_traffic_is_clean() {
        let mut eng = DsmEngine::new();
        let mut client = Machine::new();
        client.heap.alloc_str_tainted("plaintext-cor-99", Label::new(0).unwrap().as_set());
        let mut node = Machine::new();

        let p = eng
            .migrate(
                &mut client,
                &mut node,
                LockSite::Client,
                SyncCause::OffloadTrigger,
                &mut PassthroughMaterializer,
                &mut PassthroughMaterializer,
            )
            .unwrap();
        assert!(!p.wire_contains("plaintext-cor-99"));
    }

    #[test]
    fn wired_engine_emits_sync_events() {
        let (h, sink) = TraceHandle::ring(16);
        let mut eng = DsmEngine::new();
        eng.set_trace(h, SimClock::new(), 7);
        let mut a = machine_with_data();
        let mut b = Machine::new();
        eng.migrate(
            &mut a,
            &mut b,
            LockSite::Client,
            SyncCause::OffloadTrigger,
            &mut PassthroughMaterializer,
            &mut PassthroughMaterializer,
        )
        .unwrap();
        eng.lock_transfer(
            &mut b,
            &mut a,
            LockSite::Client,
            &mut PassthroughMaterializer,
            &mut PassthroughMaterializer,
        )
        .unwrap();
        let recs = sink.snapshot();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].track, 7);
        match &recs[0].event {
            TraceEvent::DsmSync { cause, init, bytes } => {
                assert_eq!(*cause, "offload_trigger");
                assert!(*init, "first sync ships the full heap");
                assert!(*bytes > 0);
            }
            other => panic!("expected DsmSync, got {other:?}"),
        }
        match &recs[1].event {
            TraceEvent::DsmSync { cause, init, .. } => {
                assert_eq!(*cause, "lock_transfer");
                assert!(!*init);
            }
            other => panic!("expected DsmSync, got {other:?}"),
        }
    }

    #[test]
    fn sync_fault_window_times_out_and_checkpoints_survive() {
        use tinman_sim::SimDuration;
        let clock = SimClock::new();
        let mut eng = DsmEngine::new();
        let from = SimTime::ZERO + SimDuration::from_millis(100);
        eng.set_fault(SyncFault { windows: vec![(from, SimTime::MAX)] }, clock.clone());
        let mut a = machine_with_data();
        let mut b = Machine::new();

        // Before the window: sync succeeds and records a checkpoint.
        assert_eq!(eng.last_sync_at(), None);
        clock.advance(SimDuration::from_millis(40));
        eng.migrate(
            &mut a,
            &mut b,
            LockSite::Client,
            SyncCause::OffloadTrigger,
            &mut PassthroughMaterializer,
            &mut PassthroughMaterializer,
        )
        .unwrap();
        let cp = eng.last_sync_at().expect("checkpoint recorded");
        assert_eq!(cp.as_nanos(), 40_000_000);

        // Inside the window: both sync flavors time out, checkpoint keeps
        // its pre-crash value, and stats are untouched by the failures.
        clock.advance(SimDuration::from_millis(100));
        let synced = eng.stats().sync_count;
        let err = eng
            .migrate(
                &mut a,
                &mut b,
                LockSite::Client,
                SyncCause::TaintIdle,
                &mut PassthroughMaterializer,
                &mut PassthroughMaterializer,
            )
            .unwrap_err();
        assert!(matches!(err, DsmError::SyncTimeout { at_ns: 140_000_000 }));
        assert!(matches!(
            eng.lock_transfer(
                &mut a,
                &mut b,
                LockSite::Client,
                &mut PassthroughMaterializer,
                &mut PassthroughMaterializer,
            )
            .unwrap_err(),
            DsmError::SyncTimeout { .. }
        ));
        assert_eq!(eng.last_sync_at(), Some(cp));
        assert_eq!(eng.stats().sync_count, synced);
    }

    #[test]
    fn inert_fault_records_checkpoints_without_failing() {
        use tinman_sim::SimDuration;
        let clock = SimClock::new();
        let mut eng = DsmEngine::new();
        eng.set_fault(SyncFault::inert(), clock.clone());
        let mut a = machine_with_data();
        let mut b = Machine::new();
        clock.advance(SimDuration::from_millis(7));
        eng.migrate(
            &mut a,
            &mut b,
            LockSite::Client,
            SyncCause::OffloadTrigger,
            &mut PassthroughMaterializer,
            &mut PassthroughMaterializer,
        )
        .unwrap();
        assert_eq!(eng.last_sync_at().unwrap().as_nanos(), 7_000_000);
    }

    #[test]
    fn no_fault_wiring_means_no_checkpoints() {
        let mut eng = DsmEngine::new();
        let mut a = machine_with_data();
        let mut b = Machine::new();
        eng.migrate(
            &mut a,
            &mut b,
            LockSite::Client,
            SyncCause::OffloadTrigger,
            &mut PassthroughMaterializer,
            &mut PassthroughMaterializer,
        )
        .unwrap();
        assert_eq!(eng.last_sync_at(), None, "checkpoints need explicit fault wiring");
    }

    #[test]
    fn sync_budget_refuses_excess_syncs_and_bytes() {
        let mut eng = DsmEngine::new();
        eng.set_budget(SyncBudget { max_syncs: 2, max_bytes: u64::MAX });
        let mut a = machine_with_data();
        let mut b = Machine::new();
        for _ in 0..2 {
            eng.migrate(
                &mut a,
                &mut b,
                LockSite::Client,
                SyncCause::TaintIdle,
                &mut PassthroughMaterializer,
                &mut PassthroughMaterializer,
            )
            .unwrap();
        }
        let err = eng
            .migrate(
                &mut a,
                &mut b,
                LockSite::Client,
                SyncCause::TaintIdle,
                &mut PassthroughMaterializer,
                &mut PassthroughMaterializer,
            )
            .unwrap_err();
        assert_eq!(err, DsmError::SyncBudgetExhausted { syncs: 2 });
        assert_eq!(eng.stats().sync_count, 2, "a refused sync ships nothing");

        // Byte budget: a tiny cap trips on the very first (init) sync.
        let mut eng = DsmEngine::new();
        eng.set_budget(SyncBudget { max_syncs: u64::MAX, max_bytes: 16 });
        let mut a = machine_with_data();
        let mut b = Machine::new();
        let err = eng
            .migrate(
                &mut a,
                &mut b,
                LockSite::Client,
                SyncCause::OffloadTrigger,
                &mut PassthroughMaterializer,
                &mut PassthroughMaterializer,
            )
            .unwrap_err();
        assert!(matches!(err, DsmError::SyncBytesExhausted { bytes } if bytes > 16));
    }

    #[test]
    fn no_budget_means_no_refusals() {
        let mut eng = DsmEngine::new();
        let mut a = machine_with_data();
        let mut b = Machine::new();
        for _ in 0..8 {
            eng.migrate(
                &mut a,
                &mut b,
                LockSite::Client,
                SyncCause::TaintIdle,
                &mut PassthroughMaterializer,
                &mut PassthroughMaterializer,
            )
            .unwrap();
        }
        assert_eq!(eng.stats().sync_count, 8);
    }

    #[test]
    fn cause_accounting() {
        let mut eng = DsmEngine::new();
        let mut a = Machine::new();
        let mut b = Machine::new();
        for cause in [SyncCause::OffloadTrigger, SyncCause::TaintIdle, SyncCause::TaintIdle] {
            eng.migrate(
                &mut a,
                &mut b,
                LockSite::Client,
                cause,
                &mut PassthroughMaterializer,
                &mut PassthroughMaterializer,
            )
            .unwrap();
        }
        assert_eq!(eng.stats().cause_count(SyncCause::OffloadTrigger), 1);
        assert_eq!(eng.stats().cause_count(SyncCause::TaintIdle), 2);
        assert_eq!(eng.stats().cause_count(SyncCause::LockTransfer), 0);
        assert_eq!(eng.stats().sync_count, 3);
    }
}
