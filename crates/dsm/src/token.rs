//! Cor tokens and materialization.
//!
//! When the DSM layer serializes a tainted heap object it must not ship the
//! content (plaintext on the trusted node, and even the placeholder is
//! regenerable). Instead it ships a [`CorToken`] — the taint labels plus the
//! object's *shape* — and the receiving endpoint asks its
//! [`CorMaterializer`] to regenerate content appropriate for that side.

use serde::{Deserialize, Serialize};
use tinman_taint::TaintSet;
use tinman_vm::{HeapKind, Value};

use crate::error::DsmError;

/// The shape of a tokenized object: everything about it except its content.
///
/// Shape is not secret — the paper notes that placeholders share the cor's
/// size, so length is deliberately unprotected (§5.1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ObjShape {
    /// A string of the given byte length.
    Str {
        /// Content length in bytes.
        len: usize,
    },
    /// An array of the given element count.
    Arr {
        /// Element count.
        len: usize,
    },
    /// A class instance.
    Obj {
        /// Class id in the app image.
        class: u32,
        /// Field count.
        n_fields: usize,
    },
}

impl ObjShape {
    /// The shape of a heap payload.
    pub fn of(kind: &HeapKind) -> ObjShape {
        match kind {
            HeapKind::Str(s) => ObjShape::Str { len: s.len() },
            HeapKind::Arr(v) => ObjShape::Arr { len: v.len() },
            HeapKind::Obj { class, fields } => {
                ObjShape::Obj { class: *class, n_fields: fields.len() }
            }
        }
    }

    /// True if `kind` has exactly this shape.
    pub fn matches(&self, kind: &HeapKind) -> bool {
        *self == ObjShape::of(kind)
    }
}

/// A tainted object's wire representation: labels + shape, no secret
/// content.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorToken {
    /// The object's taint labels.
    pub labels: TaintSet,
    /// The object's shape.
    pub shape: ObjShape,
    /// The *placeholder* text for string cors — dummy data of the cor's
    /// length, safe to transmit. Carried node→client so the device can
    /// materialize placeholders for cors derived mid-run (a hash, a request
    /// body); the reverse direction never needs it (the node resolves
    /// labels against its store).
    pub placeholder: Option<String>,
}

/// Regenerates content for tokenized objects on the receiving endpoint, and
/// registers newly derived cors on the sending endpoint.
///
/// The runtime layer implements this over the cor store: the trusted node
/// materializes plaintext, the client materializes placeholders, and the
/// node-side sender *mints a derived cor* (fresh label + placeholder) for
/// tainted objects that are not yet registered — e.g. the hash of a
/// password, or an HTTP body with an embedded card number.
pub trait CorMaterializer {
    /// Called by the **sender** for every tainted object about to enter a
    /// delta. Returns the token to ship in place of the content.
    fn tokenize(&mut self, kind: &HeapKind, taint: TaintSet) -> Result<CorToken, DsmError>;

    /// Called by the **receiver** for every token in an incoming delta.
    /// Returns the local content and the taint to attach.
    fn materialize(&mut self, token: &CorToken) -> Result<(HeapKind, TaintSet), DsmError>;
}

/// A materializer for unit tests and taint-free workloads: tokenizing keeps
/// only the shape (content is replaced by `X` bytes / zero values), so it
/// can never leak, and materializing regenerates that neutral content.
#[derive(Clone, Copy, Debug, Default)]
pub struct PassthroughMaterializer;

impl CorMaterializer for PassthroughMaterializer {
    fn tokenize(&mut self, kind: &HeapKind, taint: TaintSet) -> Result<CorToken, DsmError> {
        Ok(CorToken { labels: taint, shape: ObjShape::of(kind), placeholder: None })
    }

    fn materialize(&mut self, token: &CorToken) -> Result<(HeapKind, TaintSet), DsmError> {
        let kind = match &token.shape {
            ObjShape::Str { len } => HeapKind::Str("X".repeat(*len)),
            ObjShape::Arr { len } => HeapKind::Arr(vec![Value::Int(0); *len]),
            ObjShape::Obj { class, n_fields } => {
                HeapKind::Obj { class: *class, fields: vec![Value::Null; *n_fields] }
            }
        };
        Ok((kind, token.labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinman_taint::Label;

    #[test]
    fn shapes_capture_kind_and_size() {
        assert_eq!(ObjShape::of(&HeapKind::Str("abcd".into())), ObjShape::Str { len: 4 });
        assert_eq!(ObjShape::of(&HeapKind::Arr(vec![Value::Int(0); 3])), ObjShape::Arr { len: 3 });
        assert_eq!(
            ObjShape::of(&HeapKind::Obj { class: 7, fields: vec![Value::Null; 2] }),
            ObjShape::Obj { class: 7, n_fields: 2 }
        );
    }

    #[test]
    fn shape_matching() {
        let s = HeapKind::Str("abcd".into());
        assert!(ObjShape::Str { len: 4 }.matches(&s));
        assert!(!ObjShape::Str { len: 5 }.matches(&s));
        assert!(!ObjShape::Arr { len: 4 }.matches(&s));
    }

    #[test]
    fn passthrough_preserves_shape_and_labels_but_not_content() {
        let mut m = PassthroughMaterializer;
        let t = Label::new(4).unwrap().as_set();
        let token = m.tokenize(&HeapKind::Str("secret".into()), t).unwrap();
        assert_eq!(token.shape, ObjShape::Str { len: 6 });
        let (kind, taint) = m.materialize(&token).unwrap();
        assert_eq!(kind, HeapKind::Str("XXXXXX".into()));
        assert_eq!(taint, t);
    }
}
