//! Heap synchronization deltas.

use serde::{Deserialize, Serialize};
use tinman_taint::TaintSet;
use tinman_vm::{Heap, HeapKind, ObjId, Value};

use crate::error::DsmError;
use crate::token::CorMaterializer;

/// One object's worth of synchronization state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DeltaEntry {
    /// A full, untainted object (new since the last sync, or an initial
    /// sync entry).
    Whole {
        /// Object id (consistent across endpoints).
        id: ObjId,
        /// Full payload.
        kind: HeapKind,
    },
    /// A partial update: only the dirty fields of an untainted instance.
    Fields {
        /// Object id.
        id: ObjId,
        /// `(field index, new value)` pairs.
        updates: Vec<(u16, Value)>,
    },
    /// A tainted object, shipped as a content-free cor token.
    Cor {
        /// Object id.
        id: ObjId,
        /// The token standing in for the content.
        token: crate::token::CorToken,
    },
}

impl DeltaEntry {
    /// The object this entry updates.
    pub fn id(&self) -> ObjId {
        match self {
            DeltaEntry::Whole { id, .. }
            | DeltaEntry::Fields { id, .. }
            | DeltaEntry::Cor { id, .. } => *id,
        }
    }
}

/// A heap synchronization message.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct HeapDelta {
    /// Object entries, in ascending id order (new objects must be applied
    /// in allocation order).
    pub entries: Vec<DeltaEntry>,
    /// The sender's intern table, so pooled-string constants resolve to the
    /// same objects on both endpoints.
    pub intern_table: Vec<Option<ObjId>>,
}

impl HeapDelta {
    /// Builds a delta carrying **every** object — the initial sync that
    /// dominates Table 3's "Off. Init" column.
    pub fn build_full(heap: &Heap, mat: &mut dyn CorMaterializer) -> Result<HeapDelta, DsmError> {
        Self::build_inner(heap, mat, /* only_unsynced = */ false)
    }

    /// Builds a delta carrying only objects created or dirtied since the
    /// last sync — the small "Off. Dirty" syncs.
    pub fn build_dirty(heap: &Heap, mat: &mut dyn CorMaterializer) -> Result<HeapDelta, DsmError> {
        Self::build_inner(heap, mat, /* only_unsynced = */ true)
    }

    fn build_inner(
        heap: &Heap,
        mat: &mut dyn CorMaterializer,
        only_unsynced: bool,
    ) -> Result<HeapDelta, DsmError> {
        let mut entries = Vec::new();
        for (id, obj) in heap.iter() {
            let include = !only_unsynced || obj.fresh || obj.is_dirty();
            if !include {
                continue;
            }
            if obj.taint.is_tainted() {
                // The cor exception: content never crosses the wire.
                let token = mat.tokenize(&obj.kind, obj.taint)?;
                entries.push(DeltaEntry::Cor { id, token });
            } else if only_unsynced && !obj.fresh {
                // Known on the other side: ship dirty fields only.
                match &obj.kind {
                    HeapKind::Obj { fields, .. } => {
                        let updates: Vec<(u16, Value)> = fields
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| obj.dirty & (1u64 << (*i as u64).min(63)) != 0)
                            .map(|(i, v)| (i as u16, *v))
                            .collect();
                        entries.push(DeltaEntry::Fields { id, updates });
                    }
                    // Strings are immutable; a dirty array ships whole.
                    _ => entries.push(DeltaEntry::Whole { id, kind: obj.kind.clone() }),
                }
            } else {
                entries.push(DeltaEntry::Whole { id, kind: obj.kind.clone() });
            }
        }
        Ok(HeapDelta { entries, intern_table: heap.intern_table().to_vec() })
    }

    /// Applies this delta to `heap`, materializing cor tokens through
    /// `mat`. After application the touched objects carry no sync marks.
    pub fn apply(&self, heap: &mut Heap, mat: &mut dyn CorMaterializer) -> Result<(), DsmError> {
        for entry in &self.entries {
            match entry {
                DeltaEntry::Whole { id, kind } => {
                    heap.apply_object(*id, kind.clone(), TaintSet::EMPTY)?;
                }
                DeltaEntry::Fields { id, updates } => {
                    heap.apply_fields(*id, updates)?;
                }
                DeltaEntry::Cor { id, token } => {
                    let (kind, taint) = mat.materialize(token)?;
                    if !token.shape.matches(&kind) {
                        return Err(DsmError::ShapeMismatch {
                            obj: *id,
                            detail: format!(
                                "materializer returned {}, token shape {:?}",
                                kind.kind_name(),
                                token.shape
                            ),
                        });
                    }
                    heap.apply_object(*id, kind, taint)?;
                }
            }
        }
        heap.set_intern_table(self.intern_table.clone());
        Ok(())
    }

    /// Serialized size in bytes — the number the paper's Table 3 reports.
    /// Measured over the canonical JSON encoding for honesty (no hand-tuned
    /// constant).
    pub fn wire_bytes(&self) -> u64 {
        serde_json::to_vec(self).map(|v| v.len() as u64).unwrap_or(0)
    }

    /// Number of object entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the delta carries no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if any entry is a cor token.
    pub fn carries_cor(&self) -> bool {
        self.entries.iter().any(|e| matches!(e, DeltaEntry::Cor { .. }))
    }

    /// Scans the serialized wire form for a plaintext needle — used by the
    /// security tests to prove cor content never crosses the network.
    pub fn wire_contains(&self, needle: &str) -> bool {
        serde_json::to_string(self).map(|s| s.contains(needle)).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::PassthroughMaterializer;
    use tinman_taint::Label;

    fn tainted() -> TaintSet {
        Label::new(1).unwrap().as_set()
    }

    #[test]
    fn full_delta_round_trips_a_heap() {
        let mut src = Heap::new();
        src.alloc_str("hello");
        let arr = src.alloc_arr(3);
        src.arr_set(arr, 1, Value::Int(9)).unwrap();
        let obj = src.alloc_obj(0, 2);
        src.field_set(obj, 0, Value::Ref(arr)).unwrap();

        let mut mat = PassthroughMaterializer;
        let delta = HeapDelta::build_full(&src, &mut mat).unwrap();
        assert_eq!(delta.len(), 3);

        let mut dst = Heap::new();
        delta.apply(&mut dst, &mut mat).unwrap();
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.str_value(ObjId(0)).unwrap(), "hello");
        assert_eq!(dst.arr_get(arr, 1).unwrap(), Value::Int(9));
        assert_eq!(dst.field_get(obj, 0).unwrap(), Value::Ref(arr));
    }

    #[test]
    fn dirty_delta_ships_only_changes() {
        let mut src = Heap::new();
        let obj = src.alloc_obj(0, 4);
        src.alloc_str("stable");
        src.clear_sync_marks();

        src.field_set(obj, 2, Value::Int(7)).unwrap();
        let fresh = src.alloc_str("fresh");

        let mut mat = PassthroughMaterializer;
        let delta = HeapDelta::build_dirty(&src, &mut mat).unwrap();
        assert_eq!(delta.len(), 2);
        assert!(matches!(&delta.entries[0], DeltaEntry::Fields { id, updates }
            if *id == obj && updates == &vec![(2u16, Value::Int(7))]));
        assert!(matches!(&delta.entries[1], DeltaEntry::Whole { id, .. } if *id == fresh));
    }

    #[test]
    fn dirty_delta_much_smaller_than_full() {
        let mut src = Heap::new();
        for i in 0..100 {
            src.alloc_str(format!("object number {i} with some payload"));
        }
        let obj = src.alloc_obj(0, 2);
        src.clear_sync_marks();
        src.field_set(obj, 0, Value::Int(1)).unwrap();

        let mut mat = PassthroughMaterializer;
        let full = HeapDelta::build_full(&src, &mut mat).unwrap();
        let dirty = HeapDelta::build_dirty(&src, &mut mat).unwrap();
        assert!(full.wire_bytes() > 10 * dirty.wire_bytes());
    }

    #[test]
    fn tainted_content_never_serializes() {
        let mut src = Heap::new();
        src.alloc_str_tainted("hunter2-the-plaintext", tainted());
        src.alloc_str("public");

        let mut mat = PassthroughMaterializer;
        let delta = HeapDelta::build_full(&src, &mut mat).unwrap();
        assert!(delta.carries_cor());
        assert!(!delta.wire_contains("hunter2"), "cor plaintext must not cross the wire");
        assert!(delta.wire_contains("public"));
    }

    #[test]
    fn cor_token_materializes_with_shape_and_taint() {
        let mut src = Heap::new();
        let cor = src.alloc_str_tainted("8charsec", tainted());
        let mut mat = PassthroughMaterializer;
        let delta = HeapDelta::build_full(&src, &mut mat).unwrap();

        let mut dst = Heap::new();
        delta.apply(&mut dst, &mut mat).unwrap();
        assert_eq!(dst.str_value(cor).unwrap().len(), 8, "placeholder shares the cor's size");
        assert_eq!(dst.taint_of(cor).unwrap(), tainted());
    }

    #[test]
    fn apply_rejects_gapped_delta() {
        let delta = HeapDelta {
            entries: vec![DeltaEntry::Whole { id: ObjId(5), kind: HeapKind::Str("x".into()) }],
            intern_table: Vec::new(),
        };
        let mut dst = Heap::new();
        let mut mat = PassthroughMaterializer;
        assert!(delta.apply(&mut dst, &mut mat).is_err());
    }

    #[test]
    fn intern_table_travels_with_delta() {
        let mut src = Heap::new();
        src.intern_str(0, "const");
        let mut mat = PassthroughMaterializer;
        let delta = HeapDelta::build_full(&src, &mut mat).unwrap();
        let mut dst = Heap::new();
        delta.apply(&mut dst, &mut mat).unwrap();
        // The receiving side resolves the same pool index without a new
        // allocation.
        assert_eq!(dst.intern_str(0, "const"), ObjId(0));
        assert_eq!(dst.len(), 1);
    }

    #[test]
    fn wire_bytes_nonzero_and_monotone() {
        let mut h = Heap::new();
        let mut mat = PassthroughMaterializer;
        let d0 = HeapDelta::build_full(&h, &mut mat).unwrap();
        h.alloc_str("payload payload payload");
        let d1 = HeapDelta::build_full(&h, &mut mat).unwrap();
        assert!(d1.wire_bytes() > d0.wire_bytes());
        assert!(d0.wire_bytes() > 0, "even an empty delta has framing");
    }
}
