#![warn(missing_docs)]
//! COMET-style DSM offloading engine.
//!
//! TinMan builds its application-level offloading on COMET (OSDI'12), a
//! distributed-shared-memory system for Dalvik: the client and a server keep
//! mirrored heaps, migrate a running thread by shipping its frames plus the
//! heap fields dirtied since the last synchronization, and establish
//! happens-before edges at lock operations.
//!
//! This crate reproduces the observable behaviour the paper measures:
//!
//! * an **initial sync** ships the whole reachable heap (Table 3's
//!   "Off. Init" column — hundreds of KB);
//! * **subsequent syncs** ship only fresh objects and dirty fields
//!   ("Off. Dirty" — a few to tens of KB);
//! * **sync counting** per login (the paper observes ≤ 4, caused by offload
//!   triggers, non-offloadable natives, and remotely-owned locks);
//! * the **cor exception** (§3.1): a tainted object's *content never crosses
//!   the wire*. The sender replaces it with a [`CorToken`]; a
//!   [`CorMaterializer`] (implemented by the runtime layer over the cor
//!   store) regenerates the placeholder (client side) or the plaintext
//!   (trusted-node side).
//!
//! The unit shipped in a migration is a [`MigrationPacket`]: the thread's
//! frames plus a [`HeapDelta`].

pub mod delta;
pub mod engine;
pub mod error;
pub mod token;

pub use delta::{DeltaEntry, HeapDelta};
pub use engine::{DsmEngine, DsmStats, MigrationPacket, SyncBudget, SyncCause, SyncFault};
pub use error::DsmError;
pub use token::{CorMaterializer, CorToken, ObjShape, PassthroughMaterializer};
