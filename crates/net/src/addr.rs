//! Host identities and transport addresses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of one simulated host (the IP-address analogue).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl HostId {
    /// Renders this host as it appears from inside `subnet`
    /// (`10.<subnet>.<hi>.<lo>`). Subnet 0 is the legacy flat network,
    /// so `render_in_subnet(0)` is byte-identical to `Display` — audit
    /// logs and reports for un-subnetted hosts never change.
    pub fn render_in_subnet(self, subnet: u8) -> String {
        format!("10.{}.{}.{}", subnet, self.0 >> 8, self.0 & 0xff)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Rendered like an address for reports and audit logs. Hosts not
        // assigned a subnet live in subnet 0; `NetWorld::render_host`
        // substitutes the assigned subnet once a topology exists.
        write!(f, "10.0.{}.{}", self.0 >> 8, self.0 & 0xff)
    }
}

/// A transport endpoint: host + port.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr {
    /// The host.
    pub host: HostId,
    /// The TCP port.
    pub port: u16,
}

impl Addr {
    /// Constructs an address.
    pub fn new(host: HostId, port: u16) -> Self {
        Addr { host, port }
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}:{}", self.host, self.port)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_like_an_ip() {
        let a = Addr::new(HostId(258), 443);
        assert_eq!(a.to_string(), "10.0.1.2:443");
        assert_eq!(format!("{a:?}"), "h258:443");
    }

    #[test]
    fn unsubnetted_rendering_is_pinned_for_audit_logs() {
        // Regression: reports and audit logs render un-subnetted hosts
        // through `Display`; subnet-aware rendering must collapse to the
        // exact same bytes for subnet 0 so existing logs stay stable.
        let h = HostId(258);
        assert_eq!(h.to_string(), "10.0.1.2");
        assert_eq!(h.render_in_subnet(0), h.to_string());
        assert_eq!(h.render_in_subnet(3), "10.3.1.2");
    }

    #[test]
    fn addr_equality_and_ordering() {
        let a = Addr::new(HostId(1), 80);
        let b = Addr::new(HostId(1), 443);
        assert_ne!(a, b);
        assert!(a < b);
    }
}
