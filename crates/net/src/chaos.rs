//! Wire-level fault injection.
//!
//! [`NetChaos`] is the network's share of a chaos plan: packet loss and
//! corruption percentages (modeled as TCP retransmissions — the garbled or
//! lost copy is discarded and resent, so the application sees clean bytes
//! but pays extra latency and radio traffic), a fixed extra one-way delay,
//! a radio "flap" outage window during which sends stall, and hard host
//! partitions that fail sends outright. The loss/corruption dice are a
//! dedicated [`SplitMix64`] stream seeded from the plan, so a chaos run is
//! a pure function of its seeds.
//!
//! Install with [`crate::NetWorld::set_chaos`]; read the tally back with
//! [`crate::NetWorld::chaos_stats`].

use tinman_sim::{SimDuration, SimTime, SplitMix64};

use crate::addr::HostId;

/// Wire-fault configuration for one simulated world.
#[derive(Clone, Debug, Default)]
pub struct NetChaos {
    /// Percent (0–100) of data segments lost in flight and retransmitted.
    pub loss_pct: u8,
    /// Percent (0–100) of data segments corrupted (checksum fails) and
    /// retransmitted.
    pub corrupt_pct: u8,
    /// Extra one-way delay added to every data segment.
    pub extra_delay: SimDuration,
    /// Radio outage window `[from, until)`: transfers that start inside it
    /// stall until the window closes.
    pub flap: Option<(SimTime, SimTime)>,
    /// Host pairs that cannot reach each other, in either direction.
    pub partitions: Vec<(HostId, HostId)>,
    /// Seed for the loss/corruption dice stream.
    pub seed: u64,
}

impl NetChaos {
    /// True if `a` and `b` are on opposite sides of a partition.
    pub fn partitioned(&self, a: HostId, b: HostId) -> bool {
        self.partitions.iter().any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }
}

/// Counters of faults actually fired, for assertions and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetChaosStats {
    /// Data segments lost and retransmitted.
    pub lost_segments: u64,
    /// Data segments corrupted and retransmitted.
    pub corrupted_segments: u64,
    /// Data segments that paid the extra delay.
    pub delayed_segments: u64,
    /// Transfers that stalled on a flap window.
    pub flap_stalls: u64,
    /// Sends refused or silently dropped because of a partition.
    pub partition_drops: u64,
}

/// Live chaos state: configuration plus the dice stream and tally.
pub(crate) struct ChaosState {
    pub cfg: NetChaos,
    pub rng: SplitMix64,
    pub stats: NetChaosStats,
}

impl ChaosState {
    pub fn new(cfg: NetChaos) -> Self {
        let rng = SplitMix64::new(cfg.seed);
        ChaosState { cfg, rng, stats: NetChaosStats::default() }
    }
}
