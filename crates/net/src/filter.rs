//! The egress packet filter.
//!
//! TinMan uses an `iptables` rule on the client to capture packets whose SSL
//! record carries the TinMan mark and redirect them to the trusted node
//! (§3.3 step 3, §3.6). [`EgressFilter`] is that hook: the [`crate::world`]
//! consults it for every data segment leaving a host, before routing.

use crate::addr::HostId;
use crate::tcp::Segment;

/// What the filter decided for one outgoing segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterAction {
    /// Route normally to the header's destination.
    Pass,
    /// Divert to this host's redirect queue instead of the destination.
    /// The header is not rewritten — the consumer sees the original packet.
    Redirect(HostId),
    /// Drop silently (used for failure-injection tests).
    Drop,
}

/// An installed egress filter.
pub trait EgressFilter {
    /// Inspects one outgoing segment.
    fn inspect(&mut self, seg: &Segment) -> FilterAction;
}

impl<F> EgressFilter for F
where
    F: FnMut(&Segment) -> FilterAction,
{
    fn inspect(&mut self, seg: &Segment) -> FilterAction {
        self(seg)
    }
}

/// A filter that redirects segments whose payload begins with a marker
/// byte — exactly how TinMan's modified SSL library marks cor records: it
/// writes a reserved value into the SSL record-type field, which is the
/// first byte on the wire, and the `iptables` rule matches on it (§3.6).
#[derive(Clone, Copy, Debug)]
pub struct MarkFilter {
    /// The record-type byte that marks a cor-bearing record.
    pub mark: u8,
    /// Where marked packets are diverted.
    pub to: HostId,
}

impl EgressFilter for MarkFilter {
    fn inspect(&mut self, seg: &Segment) -> FilterAction {
        if seg.payload.first() == Some(&self.mark) {
            FilterAction::Redirect(self.to)
        } else {
            FilterAction::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::tcp::TcpFlags;

    fn seg(payload: Vec<u8>) -> Segment {
        Segment {
            src: Addr::new(HostId(1), 1000),
            dst: Addr::new(HostId(2), 443),
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            payload,
        }
    }

    #[test]
    fn mark_filter_matches_first_byte_only() {
        let mut f = MarkFilter { mark: 0x7f, to: HostId(9) };
        assert_eq!(f.inspect(&seg(vec![0x7f, 1, 2])), FilterAction::Redirect(HostId(9)));
        assert_eq!(f.inspect(&seg(vec![0x16, 0x7f])), FilterAction::Pass);
        assert_eq!(f.inspect(&seg(vec![])), FilterAction::Pass);
    }

    #[test]
    fn closure_filters_work() {
        let mut dropped = 0;
        {
            let mut f = |_: &Segment| {
                dropped += 1;
                FilterAction::Drop
            };
            assert_eq!(f.inspect(&seg(vec![1])), FilterAction::Drop);
        }
        assert_eq!(dropped, 1);
    }
}
