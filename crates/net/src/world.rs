//! The simulated internet.
//!
//! [`NetWorld`] owns every host, every TCP flow, DNS naming, the egress
//! filters, and the redirect queues. It is driven synchronously: a
//! `send` call segments the data, consults the sender's egress filter,
//! routes each segment (advancing the shared [`SimClock`] by link
//! propagation + serialization), delivers to the peer's TCP, invokes server
//! applications on newly arrived bytes, and routes their replies back — all
//! before returning. Determinism is total: there are no timers and no
//! threads.

use std::collections::HashMap;

use tinman_obs::{TraceEvent, TraceHandle};
use tinman_sim::{LinkProfile, SimClock, SimDuration};

use crate::addr::{Addr, HostId};
use crate::chaos::{ChaosState, NetChaos, NetChaosStats};
use crate::error::NetError;
use crate::filter::{EgressFilter, FilterAction};
use crate::tcp::{Segment, TcpConn, TcpState};

/// Handle to a client-side connection opened with [`NetWorld::connect`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConnId(pub u64);

/// A server application's reply to newly arrived bytes.
#[derive(Clone, Debug, Default)]
pub struct ServerReply {
    /// Bytes to write back on the connection (empty = nothing yet).
    pub data: Vec<u8>,
    /// Simulated server processing time before the reply leaves.
    pub think: SimDuration,
    /// Close the connection after replying.
    pub close: bool,
}

/// A server application bound to a listening port.
///
/// Implementations keep per-connection state keyed by the peer address
/// (e.g. a TLS session per client).
pub trait ServerApp {
    /// Called when a new connection is accepted.
    fn on_connect(&mut self, _peer: Addr) {}

    /// Called whenever application bytes arrive; returns the reply.
    fn on_data(&mut self, peer: Addr, data: &[u8]) -> ServerReply;

    /// Called when the peer closes.
    fn on_close(&mut self, _peer: Addr) {}
}

/// Per-host traffic counters (the radio-energy accounting input).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Bytes this host put on the wire (including headers).
    pub tx_bytes: u64,
    /// Bytes this host took off the wire.
    pub rx_bytes: u64,
}

struct Host {
    name: String,
    link: LinkProfile,
    filter: Option<Box<dyn EgressFilter>>,
    /// Segments diverted here by some host's egress filter, awaiting pickup
    /// by the embedding runtime (TinMan's trusted-node daemon).
    redirect_queue: Vec<Segment>,
    traffic: Traffic,
}

struct Listener {
    app: Box<dyn ServerApp>,
}

/// One live flow: the two TCP endpoints plus which listener (if any) the
/// server side belongs to.
struct Flow {
    client: TcpConn,
    server: TcpConn,
    server_host: HostId,
    server_port: u16,
    /// True once the server app has been told about the close.
    closed_notified: bool,
}

/// The simulated internet.
pub struct NetWorld {
    clock: SimClock,
    hosts: Vec<Host>,
    dns: HashMap<String, HostId>,
    listeners: HashMap<Addr, Listener>,
    flows: HashMap<u64, Flow>,
    next_conn: u64,
    next_port: u16,
    isn_counter: u32,
    /// Cumulative server processing ("think") time, so callers can
    /// attribute latency to the site rather than to the network or to
    /// TinMan's mechanisms.
    think_total: SimDuration,
    /// Trace emitter (no-op by default) and the track its events land on.
    trace: TraceHandle,
    trace_track: u64,
    /// Wire-fault injection (none by default).
    chaos: Option<ChaosState>,
    /// Segments successfully delivered through [`NetWorld::inject`] — the
    /// payload-replacement deliveries a chaos replay must deduplicate.
    injected: u64,
}

impl NetWorld {
    /// Creates an empty world sharing `clock`.
    pub fn new(clock: SimClock) -> Self {
        NetWorld {
            clock,
            hosts: Vec::new(),
            dns: HashMap::new(),
            listeners: HashMap::new(),
            flows: HashMap::new(),
            next_conn: 1,
            next_port: 40000,
            isn_counter: 1000,
            think_total: SimDuration::ZERO,
            trace: TraceHandle::noop(),
            trace_track: 0,
            chaos: None,
            injected: 0,
        }
    }

    /// Wires the world to a trace sink: diverted (`net_redirect`) and
    /// injected (`net_inject`) segments emit events on `track`.
    pub fn set_trace(&mut self, trace: TraceHandle, track: u64) {
        self.trace = trace;
        self.trace_track = track;
    }

    /// Installs (replacing) the world's wire-fault configuration. The
    /// dice stream restarts from `cfg.seed`.
    pub fn set_chaos(&mut self, cfg: NetChaos) {
        self.chaos = Some(ChaosState::new(cfg));
    }

    /// Counters of faults fired so far (zeros when chaos is off).
    pub fn chaos_stats(&self) -> NetChaosStats {
        self.chaos.as_ref().map(|c| c.stats).unwrap_or_default()
    }

    /// Segments successfully delivered via [`NetWorld::inject`] so far.
    ///
    /// Within one deterministic session this is the payload-replacement
    /// delivery count; replays compare it against a ledger to keep
    /// replacement exactly-once toward the origin server.
    pub fn injected_count(&self) -> u64 {
        self.injected
    }

    /// Total server think time accumulated so far.
    pub fn think_time_total(&self) -> SimDuration {
        self.think_total
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Adds a host with the given uplink profile; returns its id.
    pub fn add_host(&mut self, name: &str, link: LinkProfile) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(Host {
            name: name.to_owned(),
            link,
            filter: None,
            redirect_queue: Vec::new(),
            traffic: Traffic::default(),
        });
        self.dns.insert(name.to_owned(), id);
        id
    }

    /// Registers an additional DNS name for a host (e.g. an auth endpoint
    /// alias).
    pub fn register_domain(&mut self, domain: &str, host: HostId) {
        self.dns.insert(domain.to_owned(), host);
    }

    /// Resolves a domain name.
    pub fn lookup(&self, domain: &str) -> Result<HostId, NetError> {
        self.dns.get(domain).copied().ok_or_else(|| NetError::UnknownDomain(domain.to_owned()))
    }

    /// The primary name of a host (for audit logs and whitelist checks).
    pub fn reverse_lookup(&self, host: HostId) -> Option<&str> {
        self.hosts.get(host.0 as usize).map(|h| h.name.as_str())
    }

    /// Installs (replacing) the host's egress filter.
    pub fn set_egress_filter(&mut self, host: HostId, filter: Box<dyn EgressFilter>) {
        if let Some(h) = self.hosts.get_mut(host.0 as usize) {
            h.filter = Some(filter);
        }
    }

    /// Removes the host's egress filter.
    pub fn clear_egress_filter(&mut self, host: HostId) {
        if let Some(h) = self.hosts.get_mut(host.0 as usize) {
            h.filter = None;
        }
    }

    /// Binds a server application to `addr`.
    pub fn install_server(&mut self, addr: Addr, app: Box<dyn ServerApp>) {
        self.listeners.insert(addr, Listener { app });
    }

    /// Traffic counters for a host.
    pub fn traffic(&self, host: HostId) -> Traffic {
        self.hosts.get(host.0 as usize).map(|h| h.traffic).unwrap_or_default()
    }

    /// Takes all segments diverted to `host` by egress filters.
    pub fn take_redirected(&mut self, host: HostId) -> Vec<Segment> {
        self.hosts
            .get_mut(host.0 as usize)
            .map(|h| std::mem::take(&mut h.redirect_queue))
            .unwrap_or_default()
    }

    /// Number of segments waiting in `host`'s redirect queue.
    pub fn redirected_pending(&self, host: HostId) -> usize {
        self.hosts.get(host.0 as usize).map(|h| h.redirect_queue.len()).unwrap_or(0)
    }

    fn host(&self, id: HostId) -> Result<&Host, NetError> {
        self.hosts.get(id.0 as usize).ok_or(NetError::UnknownHost(id))
    }

    fn fresh_isn(&mut self) -> u32 {
        self.isn_counter = self.isn_counter.wrapping_mul(1103515245).wrapping_add(12345);
        self.isn_counter
    }

    /// Opens a TCP connection from `from` to `to`, running the whole
    /// handshake synchronously. Fails if nothing listens at `to`.
    pub fn connect(&mut self, from: HostId, to: Addr) -> Result<ConnId, NetError> {
        self.host(from)?;
        self.host(to.host)?;
        if let Some(chaos) = self.chaos.as_mut() {
            if chaos.cfg.partitioned(from, to.host) {
                chaos.stats.partition_drops += 1;
                return Err(NetError::Partitioned(from, to.host));
            }
        }
        if !self.listeners.contains_key(&to) {
            return Err(NetError::ConnectionRefused(to));
        }
        let local = Addr::new(from, self.next_port);
        self.next_port = self.next_port.wrapping_add(1).max(40000);
        let isn_c = self.fresh_isn();
        let isn_s = self.fresh_isn();
        let (mut client, syn) = TcpConn::connect(local, to, isn_c);
        // One RTT for SYN / SYN-ACK, plus the final ACK's one-way (folded
        // into the data flow in practice; we charge propagation only).
        self.charge_transfer(from, to.host, syn.wire_bytes());
        let (server, syn_ack) = TcpConn::accept(to, &syn, isn_s);
        self.charge_transfer(to.host, from, syn_ack.wire_bytes());
        let acks = client.on_segment(&syn_ack);
        debug_assert_eq!(client.state, TcpState::Established);
        let mut flow = Flow {
            client,
            server,
            server_host: to.host,
            server_port: to.port,
            closed_notified: false,
        };
        for a in acks {
            self.charge_transfer(from, to.host, a.wire_bytes());
            flow.server.on_segment(&a);
        }
        if let Some(l) = self.listeners.get_mut(&to) {
            l.app.on_connect(local);
        }
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        self.flows.insert(id.0, flow);
        Ok(id)
    }

    /// Sends application bytes on a client connection, driving filtering,
    /// routing, server processing and replies to quiescence.
    ///
    /// A multi-segment burst pays propagation latency once (segments
    /// pipeline on the wire) and serialization per byte.
    pub fn send(&mut self, conn: ConnId, data: &[u8]) -> Result<(), NetError> {
        let stale = self.stale_conn(conn.0);
        let flow = self.flows.get_mut(&conn.0).ok_or(stale)?;
        if flow.client.state != TcpState::Established {
            return Err(NetError::NotEstablished(conn.0));
        }
        let (from, to) = (flow.client.local.host, flow.server_host);
        let segs = flow.client.send(data);
        if !segs.is_empty() {
            self.charge_propagation(from, to);
        }
        for seg in segs {
            self.route_from_client(conn, seg)?;
        }
        Ok(())
    }

    /// Reads whatever application bytes have arrived on a client
    /// connection.
    pub fn recv_available(&mut self, conn: ConnId) -> Result<Vec<u8>, NetError> {
        let stale = self.stale_conn(conn.0);
        let flow = self.flows.get_mut(&conn.0).ok_or(stale)?;
        Ok(flow.client.read_available())
    }

    /// Closes a client connection (FIN exchange runs synchronously).
    ///
    /// A flow that disappears mid-exchange (torn down by a concurrent
    /// [`NetWorld::drop_flow`] from a server callback or a chaos hook)
    /// surfaces as [`NetError::NoSuchConn`] instead of panicking.
    pub fn close(&mut self, conn: ConnId) -> Result<(), NetError> {
        let stale = self.stale_conn(conn.0);
        let flow = self.flows.get_mut(&conn.0).ok_or(stale)?;
        let client_host = flow.client.local.host;
        let server_host = flow.server_host;
        let peer = flow.client.local;
        let fin = flow.client.close();
        self.charge_transfer(client_host, server_host, fin.wire_bytes());
        let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
        let replies = flow.server.on_segment(&fin);
        let fin2 = flow.server.close();
        let addr = Addr::new(server_host, flow.server_port);
        let mut to_client = replies;
        to_client.push(fin2);
        for seg in to_client {
            self.charge_transfer(server_host, client_host, seg.wire_bytes());
            let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
            let acks = flow.client.on_segment(&seg);
            for a in acks {
                self.charge_transfer(client_host, server_host, a.wire_bytes());
                let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
                flow.server.on_segment(&a);
            }
        }
        let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
        if !flow.closed_notified {
            flow.closed_notified = true;
            if let Some(l) = self.listeners.get_mut(&addr) {
                l.app.on_close(peer);
            }
        }
        Ok(())
    }

    /// Tears a flow down abruptly (no FIN exchange) — a crashed endpoint or
    /// a chaos plan killing the connection. Further operations on the
    /// `ConnId` report [`NetError::NoSuchConn`].
    pub fn drop_flow(&mut self, conn: ConnId) -> Result<(), NetError> {
        let stale = self.stale_conn(conn.0);
        self.flows.remove(&conn.0).map(|_| ()).ok_or(stale)
    }

    /// The error for a failed flow lookup: ids we allocated once are
    /// *stale* ([`NetError::NoSuchConn`]); ids we never issued are
    /// [`NetError::UnknownConn`].
    fn stale_conn(&self, id: u64) -> NetError {
        if id >= 1 && id < self.next_conn {
            NetError::NoSuchConn(id)
        } else {
            NetError::UnknownConn(id)
        }
    }

    /// The client connection's local address (for diagnostics / filters).
    pub fn conn_local(&self, conn: ConnId) -> Result<Addr, NetError> {
        self.flows.get(&conn.0).map(|f| f.client.local).ok_or_else(|| self.stale_conn(conn.0))
    }

    /// The client connection's TCP sequence diagnostics: `(snd_nxt,
    /// rcv_nxt)` of the client endpoint.
    pub fn conn_seq(&self, conn: ConnId) -> Result<(u32, u32), NetError> {
        self.flows
            .get(&conn.0)
            .map(|f| (f.client.snd_nxt(), f.client.rcv_nxt()))
            .ok_or_else(|| self.stale_conn(conn.0))
    }

    /// Scans the client-side socket receive buffer for residue (§2.1 lists
    /// socket buffers among plaintext hiding places).
    pub fn conn_buffer_contains(&self, conn: ConnId, needle: &[u8]) -> bool {
        self.flows.get(&conn.0).map(|f| f.client.scan_buffer(needle)).unwrap_or(false)
    }

    /// Injects a segment into the network as if transmitted by
    /// `physical_src` — the trusted node forwarding a reframed packet whose
    /// header still names the client (§3.3 step 4). Bypasses
    /// `physical_src`'s egress filter (the node is trusted not to loop).
    pub fn inject(&mut self, physical_src: HostId, seg: Segment) -> Result<(), NetError> {
        self.host(physical_src)?;
        // Find the flow this segment belongs to by its header addresses.
        let conn = self
            .flows
            .iter()
            .find(|(_, f)| f.client.local == seg.src && f.client.remote == seg.dst)
            .map(|(id, _)| ConnId(*id))
            .ok_or(NetError::NoMatchingFlow(seg.src, seg.dst))?;
        self.wire_fault(physical_src, seg.dst.host, seg.wire_bytes())?;
        self.charge_transfer(physical_src, seg.dst.host, seg.wire_bytes());
        if self.trace.is_enabled() {
            self.trace.emit_on(
                self.trace_track,
                self.clock.now(),
                TraceEvent::NetInject { bytes: seg.payload.len() as u64 },
            );
        }
        self.deliver_to_server(conn, seg)?;
        self.injected += 1;
        Ok(())
    }

    /// Routes one client data segment: egress filter, then normal delivery
    /// or diversion.
    fn route_from_client(&mut self, conn: ConnId, seg: Segment) -> Result<(), NetError> {
        let client_host = seg.src.host;
        let action =
            match self.hosts.get_mut(client_host.0 as usize).and_then(|h| h.filter.as_mut()) {
                Some(f) => f.inspect(&seg),
                None => FilterAction::Pass,
            };
        match action {
            FilterAction::Pass => {
                self.wire_fault(client_host, seg.dst.host, seg.wire_bytes())?;
                self.charge_serialization(client_host, seg.dst.host, seg.wire_bytes());
                self.deliver_to_server(conn, seg)
            }
            FilterAction::Redirect(to) => {
                if let Some(chaos) = self.chaos.as_mut() {
                    if chaos.cfg.partitioned(client_host, to) {
                        // The marked segment dies on the partitioned path
                        // to the trusted node: nobody downstream ever sees
                        // the placeholder, which is the fail-closed
                        // degradation the chaos tests assert on.
                        chaos.stats.partition_drops += 1;
                        return Ok(());
                    }
                }
                self.charge_transfer(client_host, to, seg.wire_bytes());
                if self.trace.is_enabled() {
                    self.trace.emit_on(
                        self.trace_track,
                        self.clock.now(),
                        TraceEvent::NetRedirect { bytes: seg.payload.len() as u64 },
                    );
                }
                self.hosts
                    .get_mut(to.0 as usize)
                    .ok_or(NetError::UnknownHost(to))?
                    .redirect_queue
                    .push(seg);
                Ok(())
            }
            FilterAction::Drop => Ok(()),
        }
    }

    /// Delivers a segment to the server side of `conn`, runs the server
    /// app, and routes replies back to the client.
    fn deliver_to_server(&mut self, conn: ConnId, seg: Segment) -> Result<(), NetError> {
        let stale = self.stale_conn(conn.0);
        let flow = self.flows.get_mut(&conn.0).ok_or(stale)?;
        let server_host = flow.server_host;
        let server_addr = Addr::new(server_host, flow.server_port);
        let client_host = flow.client.local.host;
        let peer = flow.client.local;

        let acks = flow.server.on_segment(&seg);
        let arrived = flow.server.read_available();

        // ACKs flow back (propagation charged; they overlap data in real
        // stacks, so only bytes are charged, not extra RTTs).
        for a in acks {
            self.charge_bytes(server_host, client_host, a.wire_bytes());
            let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
            flow.client.on_segment(&a);
        }

        if arrived.is_empty() {
            return Ok(());
        }
        let reply = match self.listeners.get_mut(&server_addr) {
            Some(l) => l.app.on_data(peer, &arrived),
            None => ServerReply::default(),
        };
        if reply.think > SimDuration::ZERO {
            self.clock.advance(reply.think);
            self.think_total += reply.think;
        }
        if !reply.data.is_empty() {
            let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
            let segs = flow.server.send(&reply.data);
            if !segs.is_empty() {
                self.charge_propagation(server_host, client_host);
            }
            for seg in segs {
                self.wire_fault(server_host, client_host, seg.wire_bytes())?;
                self.charge_serialization(server_host, client_host, seg.wire_bytes());
                let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
                let acks = flow.client.on_segment(&seg);
                for a in acks {
                    self.charge_bytes(client_host, server_host, a.wire_bytes());
                    let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
                    flow.server.on_segment(&a);
                }
            }
        }
        if reply.close {
            let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
            let fin = flow.server.close();
            self.charge_transfer(server_host, client_host, fin.wire_bytes());
            let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
            flow.client.on_segment(&fin);
        }
        Ok(())
    }

    /// Applies the installed wire faults to one data segment about to cross
    /// `from -> to`: partitions fail the send, a flap window stalls the
    /// clock to its end, loss/corruption dice charge a retransmission
    /// (extra propagation + serialization — the clean copy still arrives),
    /// and `extra_delay` advances the clock. No-op when chaos is off.
    fn wire_fault(&mut self, from: HostId, to: HostId, bytes: u64) -> Result<(), NetError> {
        let now = self.clock.now();
        let (retransmits, stall_until, delay) = {
            let Some(chaos) = self.chaos.as_mut() else { return Ok(()) };
            if chaos.cfg.partitioned(from, to) {
                chaos.stats.partition_drops += 1;
                return Err(NetError::Partitioned(from, to));
            }
            let stall_until = match chaos.cfg.flap {
                Some((start, until)) if now >= start && now < until => {
                    chaos.stats.flap_stalls += 1;
                    Some(until)
                }
                _ => None,
            };
            let mut retransmits = 0u32;
            if chaos.cfg.loss_pct > 0 && chaos.rng.below(100) < u64::from(chaos.cfg.loss_pct) {
                chaos.stats.lost_segments += 1;
                retransmits += 1;
            }
            if chaos.cfg.corrupt_pct > 0 && chaos.rng.below(100) < u64::from(chaos.cfg.corrupt_pct)
            {
                chaos.stats.corrupted_segments += 1;
                retransmits += 1;
            }
            let delay = if chaos.cfg.extra_delay > SimDuration::ZERO {
                chaos.stats.delayed_segments += 1;
                chaos.cfg.extra_delay
            } else {
                SimDuration::ZERO
            };
            (retransmits, stall_until, delay)
        };
        if let Some(until) = stall_until {
            self.clock.advance_to(until);
        }
        if delay > SimDuration::ZERO {
            self.clock.advance(delay);
        }
        for _ in 0..retransmits {
            // The lost/garbled copy was already on the wire: charge the
            // wasted propagation + serialization and the wasted bytes.
            self.charge_transfer(from, to, bytes);
        }
        Ok(())
    }

    /// Advances the clock for a standalone transfer (propagation +
    /// serialization) and charges both traffic meters.
    fn charge_transfer(&mut self, from: HostId, to: HostId, bytes: u64) {
        self.charge_propagation(from, to);
        self.charge_serialization(from, to, bytes);
    }

    /// Advances the clock by the path's one-way propagation latency.
    fn charge_propagation(&mut self, from: HostId, to: HostId) {
        let t = {
            let src = &self.hosts[from.0 as usize].link;
            let dst = &self.hosts[to.0 as usize].link;
            src.one_way() + dst.one_way()
        };
        self.clock.advance(t);
    }

    /// Advances the clock by serialization delay only (pipelined burst
    /// segments) and charges the traffic meters.
    fn charge_serialization(&mut self, from: HostId, to: HostId, bytes: u64) {
        let t = {
            let src = &self.hosts[from.0 as usize].link;
            let dst = &self.hosts[to.0 as usize].link;
            src.serialize_time(bytes) + dst.serialize_time(bytes)
        };
        self.clock.advance(t);
        self.charge_bytes(from, to, bytes);
    }

    /// Charges traffic meters without advancing the clock (overlapping
    /// traffic such as ACKs).
    fn charge_bytes(&mut self, from: HostId, to: HostId, bytes: u64) {
        if let Some(h) = self.hosts.get_mut(from.0 as usize) {
            h.traffic.tx_bytes += bytes;
        }
        if let Some(h) = self.hosts.get_mut(to.0 as usize) {
            h.traffic.rx_bytes += bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::MarkFilter;
    use tinman_sim::SimTime;

    /// Echo server: replies with what it received, uppercased, after a
    /// fixed think time.
    struct Echo;

    impl ServerApp for Echo {
        fn on_data(&mut self, _peer: Addr, data: &[u8]) -> ServerReply {
            ServerReply {
                data: data.to_ascii_uppercase(),
                think: SimDuration::from_millis(5),
                close: false,
            }
        }
    }

    fn world() -> (NetWorld, HostId, HostId, Addr) {
        let mut w = NetWorld::new(SimClock::new());
        let phone = w.add_host("phone", LinkProfile::wifi());
        let server = w.add_host("example.com", LinkProfile::ethernet());
        let addr = Addr::new(server, 443);
        w.install_server(addr, Box::new(Echo));
        (w, phone, server, addr)
    }

    #[test]
    fn connect_send_recv_round_trip() {
        let (mut w, phone, _server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"hello").unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"HELLO");
    }

    #[test]
    fn connection_refused_without_listener() {
        let (mut w, phone, server, _) = world();
        let err = w.connect(phone, Addr::new(server, 80)).unwrap_err();
        assert!(matches!(err, NetError::ConnectionRefused(_)));
    }

    #[test]
    fn dns_and_reverse_lookup() {
        let (mut w, _phone, server, _) = world();
        assert_eq!(w.lookup("example.com").unwrap(), server);
        assert!(w.lookup("nope.com").is_err());
        w.register_domain("auth.example.com", server);
        assert_eq!(w.lookup("auth.example.com").unwrap(), server);
        assert_eq!(w.reverse_lookup(server), Some("example.com"));
    }

    #[test]
    fn clock_advances_with_traffic() {
        let (mut w, phone, _server, addr) = world();
        let t0 = w.clock().now();
        let conn = w.connect(phone, addr).unwrap();
        let t1 = w.clock().now();
        assert!(t1 > t0, "handshake costs time");
        w.send(conn, &vec![0u8; 100_000]).unwrap();
        let t2 = w.clock().now();
        // 100 KB over ~2.5 MB/s wifi ≈ 40 ms minimum.
        assert!(t2.since(t1) > SimDuration::from_millis(30));
    }

    #[test]
    fn three_g_is_slower_than_wifi() {
        let elapsed = |link: LinkProfile| {
            let mut w = NetWorld::new(SimClock::new());
            let phone = w.add_host("phone", link);
            let server = w.add_host("s", LinkProfile::ethernet());
            let addr = Addr::new(server, 443);
            w.install_server(addr, Box::new(Echo));
            let conn = w.connect(phone, addr).unwrap();
            let t0 = w.clock().now();
            w.send(conn, &vec![1u8; 50_000]).unwrap();
            w.clock().now().since(t0)
        };
        assert!(elapsed(LinkProfile::three_g()) > elapsed(LinkProfile::wifi()) * 2);
    }

    #[test]
    fn traffic_counters_accumulate_both_sides() {
        let (mut w, phone, server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"data").unwrap();
        let pt = w.traffic(phone);
        let st = w.traffic(server);
        assert!(pt.tx_bytes > 0 && pt.rx_bytes > 0);
        assert!(st.tx_bytes > 0 && st.rx_bytes > 0);
    }

    #[test]
    fn marked_segments_divert_to_redirect_queue() {
        let (mut w, phone, _server, addr) = world();
        let node = w.add_host("trusted-node", LinkProfile::ethernet());
        w.set_egress_filter(phone, Box::new(MarkFilter { mark: 0x7f, to: node }));
        let conn = w.connect(phone, addr).unwrap();

        // Unmarked passes through.
        w.send(conn, b"\x16normal").unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"\x16NORMAL");
        assert_eq!(w.redirected_pending(node), 0);

        // Marked is captured, server sees nothing.
        w.send(conn, b"\x7fsecret-placeholder").unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"");
        assert_eq!(w.redirected_pending(node), 1);
        let segs = w.take_redirected(node);
        assert_eq!(segs[0].payload, b"\x7fsecret-placeholder");
        assert_eq!(w.redirected_pending(node), 0);
    }

    #[test]
    fn inject_reframed_packet_reaches_server_as_client() {
        let (mut w, phone, _server, addr) = world();
        let node = w.add_host("trusted-node", LinkProfile::ethernet());
        w.set_egress_filter(phone, Box::new(MarkFilter { mark: 0x7f, to: node }));
        let conn = w.connect(phone, addr).unwrap();

        w.send(conn, b"\x7fplaceholder-body").unwrap();
        let mut seg = w.take_redirected(node).pop().unwrap();
        // Node swaps the payload for one of EQUAL length (the cor shares
        // the placeholder's size) and forwards with the header untouched.
        let real = b"\x17realsecret-body!";
        assert_eq!(seg.payload.len(), real.len());
        seg.payload = real.to_vec();
        w.inject(node, seg).unwrap();
        // The echo server processed it as if the client had sent it.
        assert_eq!(w.recv_available(conn).unwrap(), real.to_ascii_uppercase());
    }

    #[test]
    fn redirect_and_inject_emit_trace_events() {
        let (mut w, phone, _server, addr) = world();
        let node = w.add_host("trusted-node", LinkProfile::ethernet());
        w.set_egress_filter(phone, Box::new(MarkFilter { mark: 0x7f, to: node }));
        let (h, sink) = TraceHandle::ring(16);
        w.set_trace(h, 3);
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"\x7fdiverted").unwrap();
        let seg = w.take_redirected(node).pop().unwrap();
        w.inject(node, seg).unwrap();
        let recs = sink.snapshot();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].track, 3);
        assert_eq!(recs[0].event, TraceEvent::NetRedirect { bytes: 9 });
        assert_eq!(recs[1].event, TraceEvent::NetInject { bytes: 9 });
        assert!(recs[1].sim_ns >= recs[0].sim_ns, "simulated stamps are monotone");
    }

    #[test]
    fn inject_unknown_flow_fails() {
        let (mut w, _phone, server, _) = world();
        let node = w.add_host("node", LinkProfile::ethernet());
        let bogus = Segment {
            src: Addr::new(HostId(77), 1),
            dst: Addr::new(server, 443),
            seq: 0,
            ack: 0,
            flags: crate::tcp::TcpFlags::ACK,
            payload: vec![1],
        };
        assert!(matches!(w.inject(node, bogus), Err(NetError::NoMatchingFlow(_, _))));
    }

    #[test]
    fn drop_filter_silently_discards() {
        let (mut w, phone, _server, addr) = world();
        w.set_egress_filter(phone, Box::new(|_: &Segment| FilterAction::Drop));
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"lost").unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"");
    }

    #[test]
    fn close_notifies_server_app() {
        struct CloseCounter(std::rc::Rc<std::cell::Cell<u32>>);
        impl ServerApp for CloseCounter {
            fn on_data(&mut self, _p: Addr, _d: &[u8]) -> ServerReply {
                ServerReply::default()
            }
            fn on_close(&mut self, _p: Addr) {
                self.0.set(self.0.get() + 1);
            }
        }
        let mut w = NetWorld::new(SimClock::new());
        let phone = w.add_host("phone", LinkProfile::wifi());
        let server = w.add_host("s", LinkProfile::ethernet());
        let addr = Addr::new(server, 443);
        let count = std::rc::Rc::new(std::cell::Cell::new(0));
        w.install_server(addr, Box::new(CloseCounter(count.clone())));
        let conn = w.connect(phone, addr).unwrap();
        w.close(conn).unwrap();
        assert_eq!(count.get(), 1);
    }

    #[test]
    fn server_think_time_advances_clock() {
        let (mut w, phone, _server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        let t0 = w.clock().now();
        w.send(conn, b"x").unwrap();
        assert!(w.clock().now().since(t0) >= SimDuration::from_millis(5));
        let _ = SimTime::ZERO; // keep the import honest
    }

    #[test]
    fn stale_conn_reports_no_such_conn_instead_of_panicking() {
        let (mut w, phone, _server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"live").unwrap();
        w.drop_flow(conn).unwrap();
        // Every operation on the torn-down id degrades to an error.
        assert_eq!(w.send(conn, b"x").unwrap_err(), NetError::NoSuchConn(conn.0));
        assert_eq!(w.recv_available(conn).unwrap_err(), NetError::NoSuchConn(conn.0));
        assert_eq!(w.close(conn).unwrap_err(), NetError::NoSuchConn(conn.0));
        assert_eq!(w.conn_local(conn).unwrap_err(), NetError::NoSuchConn(conn.0));
        assert_eq!(w.conn_seq(conn).unwrap_err(), NetError::NoSuchConn(conn.0));
        assert_eq!(w.drop_flow(conn).unwrap_err(), NetError::NoSuchConn(conn.0));
        // Ids never issued stay UnknownConn.
        assert_eq!(w.send(ConnId(999), b"x").unwrap_err(), NetError::UnknownConn(999));
    }

    #[test]
    fn partition_refuses_connect_and_fails_send() {
        let (mut w, phone, server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        w.set_chaos(NetChaos { partitions: vec![(phone, server)], ..NetChaos::default() });
        assert!(matches!(w.connect(phone, addr), Err(NetError::Partitioned(_, _))));
        assert!(matches!(w.send(conn, b"x"), Err(NetError::Partitioned(_, _))));
        assert!(w.chaos_stats().partition_drops >= 2);
    }

    #[test]
    fn partitioned_redirect_path_drops_marked_segment_silently() {
        let (mut w, phone, _server, addr) = world();
        let node = w.add_host("trusted-node", LinkProfile::ethernet());
        w.set_egress_filter(phone, Box::new(MarkFilter { mark: 0x7f, to: node }));
        let conn = w.connect(phone, addr).unwrap();
        w.set_chaos(NetChaos { partitions: vec![(phone, node)], ..NetChaos::default() });
        // The marked segment dies on the way to the node: no error, no
        // delivery, nothing queued — the placeholder never left the phone.
        w.send(conn, b"\x7fsecret-placeholder").unwrap();
        assert_eq!(w.redirected_pending(node), 0);
        assert_eq!(w.recv_available(conn).unwrap(), b"");
        assert_eq!(w.chaos_stats().partition_drops, 1);
    }

    #[test]
    fn loss_charges_retransmission_but_delivers_clean_bytes() {
        let run = |loss_pct: u8| {
            let mut w = NetWorld::new(SimClock::new());
            let phone = w.add_host("phone", LinkProfile::wifi());
            let server = w.add_host("s", LinkProfile::ethernet());
            let addr = Addr::new(server, 443);
            w.install_server(addr, Box::new(Echo));
            let conn = w.connect(phone, addr).unwrap();
            w.set_chaos(NetChaos { loss_pct, seed: 7, ..NetChaos::default() });
            let t0 = w.clock().now();
            w.send(conn, &vec![b'a'; 200_000]).unwrap();
            let data = w.recv_available(conn).unwrap();
            assert!(data.iter().all(|&b| b == b'A'), "payload is uncorrupted");
            (w.clock().now().since(t0), w.traffic(phone).tx_bytes, w.chaos_stats())
        };
        let (t_clean, tx_clean, s_clean) = run(0);
        let (t_lossy, tx_lossy, s_lossy) = run(60);
        assert_eq!(s_clean.lost_segments, 0);
        assert!(s_lossy.lost_segments > 0, "60% loss over many segments must fire");
        assert!(t_lossy > t_clean, "retransmissions cost time");
        assert!(tx_lossy > tx_clean, "retransmissions cost radio bytes");
    }

    #[test]
    fn flap_window_stalls_transfers_to_its_end() {
        let (mut w, phone, _server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        let until = SimTime::ZERO + SimDuration::from_secs(3);
        w.set_chaos(NetChaos { flap: Some((SimTime::ZERO, until)), ..NetChaos::default() });
        w.send(conn, b"x").unwrap();
        assert!(w.clock().now() >= until, "send inside the flap stalls past it");
        assert!(w.chaos_stats().flap_stalls >= 1);
    }

    #[test]
    fn extra_delay_slows_every_segment() {
        let (mut w, phone, _server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        w.set_chaos(NetChaos { extra_delay: SimDuration::from_millis(40), ..NetChaos::default() });
        let t0 = w.clock().now();
        w.send(conn, b"x").unwrap();
        assert!(w.clock().now().since(t0) >= SimDuration::from_millis(80), "data + reply delayed");
    }

    #[test]
    fn chaos_dice_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut w = NetWorld::new(SimClock::new());
            let phone = w.add_host("phone", LinkProfile::wifi());
            let server = w.add_host("s", LinkProfile::ethernet());
            let addr = Addr::new(server, 443);
            w.install_server(addr, Box::new(Echo));
            let conn = w.connect(phone, addr).unwrap();
            w.set_chaos(NetChaos { loss_pct: 30, corrupt_pct: 10, seed, ..NetChaos::default() });
            w.send(conn, &vec![b'z'; 100_000]).unwrap();
            (w.clock().now(), w.chaos_stats())
        };
        assert_eq!(run(42), run(42), "same seed, same faults, same timeline");
        assert_ne!(run(42).1, run(43).1, "different seed rolls different dice");
    }

    #[test]
    fn injected_count_tracks_successful_injections() {
        let (mut w, phone, _server, addr) = world();
        let node = w.add_host("trusted-node", LinkProfile::ethernet());
        w.set_egress_filter(phone, Box::new(MarkFilter { mark: 0x7f, to: node }));
        let conn = w.connect(phone, addr).unwrap();
        assert_eq!(w.injected_count(), 0);
        w.send(conn, b"\x7fplaceholder-body").unwrap();
        let seg = w.take_redirected(node).pop().unwrap();
        w.inject(node, seg).unwrap();
        assert_eq!(w.injected_count(), 1);
    }
}
