//! The simulated internet.
//!
//! [`NetWorld`] owns every host, every TCP flow, DNS naming, the egress
//! filters, and the redirect queues. It is driven synchronously: a
//! `send` call segments the data, consults the sender's egress filter,
//! routes each segment (advancing the shared [`SimClock`] by link
//! propagation + serialization), delivers to the peer's TCP, invokes server
//! applications on newly arrived bytes, and routes their replies back — all
//! before returning. Determinism is total: there are no timers and no
//! threads.

use std::collections::HashMap;

use tinman_obs::{TraceEvent, TraceHandle};
use tinman_sim::{LinkProfile, SimClock, SimDuration, SimTime};

use crate::addr::{Addr, HostId};
use crate::chaos::{ChaosState, NetChaos, NetChaosStats};
use crate::error::NetError;
use crate::filter::{EgressFilter, FilterAction};
use crate::tcp::{Segment, TcpConn, TcpState};
use crate::topology::{
    DnsOutcome, Handoff, NatVerdict, RouteFailure, RouterId, SubnetId, Topology, TopologyConfig,
    TopologyStats,
};

/// Handle to a client-side connection opened with [`NetWorld::connect`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConnId(pub u64);

/// A server application's reply to newly arrived bytes.
#[derive(Clone, Debug, Default)]
pub struct ServerReply {
    /// Bytes to write back on the connection (empty = nothing yet).
    pub data: Vec<u8>,
    /// Simulated server processing time before the reply leaves.
    pub think: SimDuration,
    /// Close the connection after replying.
    pub close: bool,
}

/// A server application bound to a listening port.
///
/// Implementations keep per-connection state keyed by the peer address
/// (e.g. a TLS session per client).
pub trait ServerApp {
    /// Called when a new connection is accepted.
    fn on_connect(&mut self, _peer: Addr) {}

    /// Called whenever application bytes arrive; returns the reply.
    fn on_data(&mut self, peer: Addr, data: &[u8]) -> ServerReply;

    /// Called when the peer closes.
    fn on_close(&mut self, _peer: Addr) {}
}

/// Per-host traffic counters (the radio-energy accounting input).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Bytes this host put on the wire (including headers).
    pub tx_bytes: u64,
    /// Bytes this host took off the wire.
    pub rx_bytes: u64,
}

struct Host {
    name: String,
    link: LinkProfile,
    filter: Option<Box<dyn EgressFilter>>,
    /// Segments diverted here by some host's egress filter, awaiting pickup
    /// by the embedding runtime (TinMan's trusted-node daemon).
    redirect_queue: Vec<Segment>,
    traffic: Traffic,
}

struct Listener {
    app: Box<dyn ServerApp>,
}

/// One live flow: the two TCP endpoints plus which listener (if any) the
/// server side belongs to.
struct Flow {
    client: TcpConn,
    server: TcpConn,
    server_host: HostId,
    server_port: u16,
    /// True once the server app has been told about the close.
    closed_notified: bool,
}

/// The simulated internet.
pub struct NetWorld {
    clock: SimClock,
    hosts: Vec<Host>,
    dns: HashMap<String, HostId>,
    listeners: HashMap<Addr, Listener>,
    flows: HashMap<u64, Flow>,
    next_conn: u64,
    next_port: u16,
    isn_counter: u32,
    /// Cumulative server processing ("think") time, so callers can
    /// attribute latency to the site rather than to the network or to
    /// TinMan's mechanisms.
    think_total: SimDuration,
    /// Trace emitter (no-op by default) and the track its events land on.
    trace: TraceHandle,
    trace_track: u64,
    /// Wire-fault injection (none by default).
    chaos: Option<ChaosState>,
    /// Segments successfully delivered through [`NetWorld::inject`] — the
    /// payload-replacement deliveries a chaos replay must deduplicate.
    injected: u64,
    /// The routed layer (None = legacy flat world, byte-identical to the
    /// pre-topology behavior).
    topology: Option<Topology>,
    /// Routed-layer counters. Kept on the world (not the topology) so
    /// handoff accounting works even on a flat world.
    topo_stats: TopologyStats,
    /// Scheduled mobility handoffs, applied by [`NetWorld::poll_network`].
    pending_handoffs: Vec<(HostId, Handoff)>,
    /// Scheduled conntrack flushes (the `NatTableFlush` chaos family).
    nat_flushes: Vec<SimTime>,
    /// When present, records every data segment as it crosses the
    /// untrusted wire (post-NAT) — the exposure probe acceptance tests
    /// scan for secrets on.
    wire_tap: Option<Vec<Segment>>,
}

impl NetWorld {
    /// Creates an empty world sharing `clock`.
    pub fn new(clock: SimClock) -> Self {
        NetWorld {
            clock,
            hosts: Vec::new(),
            dns: HashMap::new(),
            listeners: HashMap::new(),
            flows: HashMap::new(),
            next_conn: 1,
            next_port: 40000,
            isn_counter: 1000,
            think_total: SimDuration::ZERO,
            trace: TraceHandle::noop(),
            trace_track: 0,
            chaos: None,
            injected: 0,
            topology: None,
            topo_stats: TopologyStats::default(),
            pending_handoffs: Vec::new(),
            nat_flushes: Vec::new(),
            wire_tap: None,
        }
    }

    /// Wires the world to a trace sink: diverted (`net_redirect`) and
    /// injected (`net_inject`) segments emit events on `track`.
    pub fn set_trace(&mut self, trace: TraceHandle, track: u64) {
        self.trace = trace;
        self.trace_track = track;
    }

    /// Installs (replacing) the world's wire-fault configuration. The
    /// dice stream restarts from `cfg.seed`.
    pub fn set_chaos(&mut self, cfg: NetChaos) {
        self.chaos = Some(ChaosState::new(cfg));
    }

    /// Counters of faults fired so far (zeros when chaos is off).
    pub fn chaos_stats(&self) -> NetChaosStats {
        self.chaos.as_ref().map(|c| c.stats).unwrap_or_default()
    }

    /// Segments successfully delivered via [`NetWorld::inject`] so far.
    ///
    /// Within one deterministic session this is the payload-replacement
    /// delivery count; replays compare it against a ledger to keep
    /// replacement exactly-once toward the origin server.
    pub fn injected_count(&self) -> u64 {
        self.injected
    }

    /// Total server think time accumulated so far.
    pub fn think_time_total(&self) -> SimDuration {
        self.think_total
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Adds a host with the given uplink profile; returns its id.
    pub fn add_host(&mut self, name: &str, link: LinkProfile) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(Host {
            name: name.to_owned(),
            link,
            filter: None,
            redirect_queue: Vec::new(),
            traffic: Traffic::default(),
        });
        self.dns.insert(name.to_owned(), id);
        id
    }

    /// Registers an additional DNS name for a host (e.g. an auth endpoint
    /// alias).
    pub fn register_domain(&mut self, domain: &str, host: HostId) {
        self.dns.insert(domain.to_owned(), host);
    }

    /// Resolves a domain name.
    pub fn lookup(&self, domain: &str) -> Result<HostId, NetError> {
        self.dns.get(domain).copied().ok_or_else(|| NetError::UnknownDomain(domain.to_owned()))
    }

    /// The primary name of a host (for audit logs and whitelist checks).
    pub fn reverse_lookup(&self, host: HostId) -> Option<&str> {
        self.hosts.get(host.0 as usize).map(|h| h.name.as_str())
    }

    /// Installs (replacing) the host's egress filter.
    pub fn set_egress_filter(&mut self, host: HostId, filter: Box<dyn EgressFilter>) {
        if let Some(h) = self.hosts.get_mut(host.0 as usize) {
            h.filter = Some(filter);
        }
    }

    /// Removes the host's egress filter.
    pub fn clear_egress_filter(&mut self, host: HostId) {
        if let Some(h) = self.hosts.get_mut(host.0 as usize) {
            h.filter = None;
        }
    }

    /// Binds a server application to `addr`.
    pub fn install_server(&mut self, addr: Addr, app: Box<dyn ServerApp>) {
        self.listeners.insert(addr, Listener { app });
    }

    /// Traffic counters for a host.
    ///
    /// Unknown ids are an error: a silent zero here once masked energy
    /// accounting against hosts that were never registered.
    pub fn traffic(&self, host: HostId) -> Result<Traffic, NetError> {
        self.hosts.get(host.0 as usize).map(|h| h.traffic).ok_or(NetError::NoSuchHost(host))
    }

    /// Takes all segments diverted to `host` by egress filters.
    ///
    /// Unknown ids are an error rather than an empty queue, so a
    /// misrouted redirect pickup can't silently look like "nothing
    /// diverted".
    pub fn take_redirected(&mut self, host: HostId) -> Result<Vec<Segment>, NetError> {
        self.hosts
            .get_mut(host.0 as usize)
            .map(|h| std::mem::take(&mut h.redirect_queue))
            .ok_or(NetError::NoSuchHost(host))
    }

    /// Number of segments waiting in `host`'s redirect queue.
    pub fn redirected_pending(&self, host: HostId) -> Result<usize, NetError> {
        self.hosts
            .get(host.0 as usize)
            .map(|h| h.redirect_queue.len())
            .ok_or(NetError::NoSuchHost(host))
    }

    // ------------------------------------------------------------------
    // Routed topology: subnets, routers, NAT, DNS, mobility.
    // ------------------------------------------------------------------

    /// Installs the routed layer with explicit tunables. Until this (or
    /// any topology mutator) is called the world stays flat and behaves
    /// byte-identically to the pre-topology implementation.
    pub fn enable_topology(&mut self, cfg: TopologyConfig) {
        self.topology = Some(Topology::new(cfg));
    }

    /// True once the routed layer is installed.
    pub fn topology_enabled(&self) -> bool {
        self.topology.is_some()
    }

    fn topo_mut(&mut self) -> &mut Topology {
        if self.topology.is_none() {
            self.topology = Some(Topology::new(TopologyConfig::default()));
        }
        self.topology.as_mut().expect("just installed")
    }

    /// Moves a host into a subnet (installing a default topology if none
    /// exists yet). Hosts never assigned live in subnet 0.
    pub fn assign_subnet(&mut self, host: HostId, subnet: SubnetId) {
        self.topo_mut().assign(host, subnet);
    }

    /// The subnet a host lives in (0 on a flat world).
    pub fn host_subnet(&self, host: HostId) -> SubnetId {
        self.topology.as_ref().map(|t| t.subnet(host)).unwrap_or(0)
    }

    /// Adds a router attached to `subnets` whose firewall refuses the
    /// given destination ports.
    pub fn add_router(&mut self, name: &str, subnets: &[SubnetId], deny_ports: &[u16]) -> RouterId {
        self.topo_mut().add_router(name, subnets, deny_ports)
    }

    /// Administratively raises/lowers a router.
    pub fn set_router_up(&mut self, id: RouterId, up: bool) {
        if let Some(r) = self.topo_mut().router_mut(id) {
            r.up = up;
        }
    }

    /// Installs (replacing) a router's chaos outage windows `[from, until)`.
    pub fn set_router_outages(&mut self, id: RouterId, windows: Vec<(SimTime, SimTime)>) {
        if let Some(r) = self.topo_mut().router_mut(id) {
            r.outages = windows;
        }
    }

    /// Appends outage windows to *every* router — the `RouterCrash` chaos
    /// family takes the whole routed core down for the window.
    pub fn set_all_router_outages(&mut self, windows: Vec<(SimTime, SimTime)>) {
        let topo = self.topo_mut();
        for i in 0..topo.router_count() {
            if let Some(r) = topo.router_mut(RouterId(i)) {
                r.outages.extend(windows.iter().copied());
            }
        }
    }

    /// Installs a NAT gateway on `subnet`. Returns the gateway's public
    /// host (a real registered host named `nat-<subnet>`): rewritten
    /// segments carry it as their source address.
    pub fn enable_nat(&mut self, subnet: SubnetId) -> HostId {
        let public = self.add_host(&format!("nat-{subnet}"), LinkProfile::ethernet());
        self.topo_mut().install_nat(subnet, public);
        public
    }

    /// True if `subnet` has a NAT gateway installed.
    pub fn nat_enabled(&self, subnet: SubnetId) -> bool {
        self.topology.as_ref().is_some_and(|t| t.has_nat(subnet))
    }

    /// Schedules a conntrack flush at `at` (applied by the next
    /// [`NetWorld::poll_network`] at or after that instant). Established
    /// flows fail closed with [`NetError::NatExpired`] afterwards.
    pub fn schedule_nat_flush(&mut self, at: SimTime) {
        self.topo_mut();
        self.nat_flushes.push(at);
    }

    /// Flushes every NAT conntrack table immediately.
    pub fn flush_nat_now(&mut self) {
        self.topo_mut().flush_nat();
        self.topo_stats.nat_flushes += 1;
    }

    /// Installs (replacing) the DNS resolver's outage windows.
    pub fn set_dns_outages(&mut self, windows: Vec<(SimTime, SimTime)>) {
        self.topo_mut().set_dns_outages(windows);
    }

    /// Schedules a mobility handoff for `host`. Applied deterministically
    /// by [`NetWorld::poll_network`] once the clock reaches `handoff.at`.
    pub fn schedule_handoff(&mut self, host: HostId, handoff: Handoff) {
        self.pending_handoffs.push((host, handoff));
    }

    /// Handoffs scheduled but not yet applied.
    pub fn pending_handoffs(&self) -> usize {
        self.pending_handoffs.len()
    }

    /// The host's current uplink profile (it changes across handoffs).
    pub fn host_link(&self, host: HostId) -> Result<LinkProfile, NetError> {
        self.hosts.get(host.0 as usize).map(|h| h.link.clone()).ok_or(NetError::NoSuchHost(host))
    }

    /// Applies every scheduled network event (handoffs, NAT flushes) due
    /// at or before the current clock, in timestamp order (ties broken by
    /// host id, flushes before handoffs). Called automatically on every
    /// connect/send/inject/resolve; exposed so embedders that advance the
    /// clock out-of-band (DSM syncs, backoff sleeps) can re-sync the
    /// network state explicitly.
    pub fn poll_network(&mut self) {
        loop {
            let now = self.clock.now();
            let flush_i = self
                .nat_flushes
                .iter()
                .enumerate()
                .filter(|(_, &t)| t <= now)
                .min_by_key(|(_, &t)| t)
                .map(|(i, _)| i);
            let hand_i = self
                .pending_handoffs
                .iter()
                .enumerate()
                .filter(|(_, (_, h))| h.at <= now)
                .min_by_key(|(_, (host, h))| (h.at, host.0))
                .map(|(i, _)| i);
            match (flush_i, hand_i) {
                (None, None) => break,
                (Some(fi), None) => self.apply_nat_flush(fi),
                (None, Some(hi)) => self.apply_handoff(hi),
                (Some(fi), Some(hi)) => {
                    if self.nat_flushes[fi] <= self.pending_handoffs[hi].1.at {
                        self.apply_nat_flush(fi);
                    } else {
                        self.apply_handoff(hi);
                    }
                }
            }
        }
    }

    fn apply_nat_flush(&mut self, idx: usize) {
        self.nat_flushes.remove(idx);
        if let Some(t) = self.topology.as_mut() {
            t.flush_nat();
        }
        self.topo_stats.nat_flushes += 1;
    }

    fn apply_handoff(&mut self, idx: usize) {
        let (host, h) = self.pending_handoffs.remove(idx);
        let link_name = h.link.name;
        if let Some(entry) = self.hosts.get_mut(host.0 as usize) {
            entry.link = h.link;
        }
        if let Some(t) = self.topology.as_mut() {
            if let Some(s) = h.to_subnet {
                t.assign(host, s);
            }
            if h.rebind_nat {
                t.rebind_host(host);
            }
        }
        // The radio is dark until the new attachment completes: anything
        // in flight stalls to the end of the blackout.
        let dark_until = h.at + h.blackout;
        if self.clock.now() < dark_until {
            self.clock.advance_to(dark_until);
        }
        self.topo_stats.handoffs += 1;
        if self.trace.is_enabled() {
            self.trace.emit_on(
                self.trace_track,
                self.clock.now(),
                TraceEvent::Handoff {
                    link: link_name,
                    blackout_ns: h.blackout.as_nanos(),
                    rebind: h.rebind_nat,
                },
            );
        }
    }

    /// Resolves a domain through the routed layer's DNS (TTL cache,
    /// resolver cost, outage windows). On a flat world this is exactly
    /// [`NetWorld::lookup`].
    pub fn resolve(&mut self, domain: &str) -> Result<HostId, NetError> {
        self.poll_network();
        if self.topology.is_none() {
            return self.lookup(domain);
        }
        let record = self.dns.get(domain).copied();
        let now = self.clock.now();
        let outcome =
            self.topology.as_mut().expect("topology checked").dns_resolve(domain, now, record);
        match outcome {
            DnsOutcome::Cached(h) => {
                self.topo_stats.dns_cache_hits += 1;
                Ok(h)
            }
            DnsOutcome::Resolved(h) => {
                self.topo_stats.dns_lookups += 1;
                let cost = self.topology.as_ref().expect("topology checked").cfg.dns_cost;
                self.clock.advance(cost);
                Ok(h)
            }
            DnsOutcome::Outage => {
                self.topo_stats.dns_failures += 1;
                if self.trace.is_enabled() {
                    self.trace.emit_on(
                        self.trace_track,
                        self.clock.now(),
                        TraceEvent::DnsFault { domain: domain.to_owned() },
                    );
                }
                Err(NetError::DnsOutage(domain.to_owned()))
            }
            DnsOutcome::Unknown => Err(NetError::UnknownDomain(domain.to_owned())),
        }
    }

    /// Renders a host as seen from its assigned subnet
    /// (`10.<subnet>.<hi>.<lo>`). Identical to `Display` on a flat world
    /// or for hosts in subnet 0, so existing audit logs stay stable.
    pub fn render_host(&self, host: HostId) -> String {
        host.render_in_subnet(self.host_subnet(host))
    }

    /// Renders an address subnet-aware (see [`NetWorld::render_host`]).
    pub fn render_addr(&self, addr: Addr) -> String {
        format!("{}:{}", self.render_host(addr.host), addr.port)
    }

    /// Routed-layer counters (all zero on a flat world with no handoffs).
    pub fn topology_stats(&self) -> TopologyStats {
        self.topo_stats
    }

    /// Starts (or stops) recording every data segment that crosses the
    /// untrusted wire, post-NAT. Enabling clears any previous capture.
    pub fn set_wire_tap(&mut self, enabled: bool) {
        self.wire_tap = if enabled { Some(Vec::new()) } else { None };
    }

    /// Takes the wire-tap capture recorded so far.
    pub fn take_wire_tap(&mut self) -> Vec<Segment> {
        self.wire_tap.as_mut().map(std::mem::take).unwrap_or_default()
    }

    fn tap_segment(&mut self, seg: &Segment) {
        if let Some(tap) = self.wire_tap.as_mut() {
            tap.push(seg.clone());
        }
    }

    /// Checks (and charges) the routed path between two hosts' subnets.
    /// Flat worlds and intra-subnet traffic cost nothing; a routed path
    /// charges per-hop forwarding latency; a missing or firewalled path
    /// fails closed.
    fn route_check(
        &mut self,
        from: HostId,
        to: HostId,
        dst_port: Option<u16>,
    ) -> Result<(), NetError> {
        let (verdict, hop_latency) = {
            let Some(topo) = self.topology.as_ref() else { return Ok(()) };
            let now = self.clock.now();
            (topo.route(topo.subnet(from), topo.subnet(to), now, dst_port), topo.cfg.hop_latency)
        };
        match verdict {
            Ok(0) => Ok(()),
            Ok(hops) => {
                self.topo_stats.router_hops += hops;
                self.clock.advance(hop_latency * hops);
                Ok(())
            }
            Err(RouteFailure::NoRoute) => {
                self.topo_stats.route_drops += 1;
                Err(NetError::NoRoute(from, to))
            }
            Err(RouteFailure::Firewall) => {
                self.topo_stats.firewall_drops += 1;
                Err(NetError::FirewallDenied(Addr::new(to, dst_port.unwrap_or(0))))
            }
        }
    }

    /// [`NetWorld::route_check`] without the hop-latency charge: used to
    /// pre-validate a send before any TCP state is consumed. Failed
    /// probes still count as drops.
    fn route_probe(
        &mut self,
        from: HostId,
        to: HostId,
        dst_port: Option<u16>,
    ) -> Result<(), NetError> {
        let verdict = {
            let Some(topo) = self.topology.as_ref() else { return Ok(()) };
            let now = self.clock.now();
            topo.route(topo.subnet(from), topo.subnet(to), now, dst_port)
        };
        match verdict {
            Ok(_) => Ok(()),
            Err(RouteFailure::NoRoute) => {
                self.topo_stats.route_drops += 1;
                Err(NetError::NoRoute(from, to))
            }
            Err(RouteFailure::Firewall) => {
                self.topo_stats.firewall_drops += 1;
                Err(NetError::FirewallDenied(Addr::new(to, dst_port.unwrap_or(0))))
            }
        }
    }

    /// Translates one outbound segment's source address through the NAT
    /// conntrack table. Keyed on the segment's *header* source (the flow
    /// identity), not the physical sender — which is exactly how a
    /// node-injected reframed packet traverses the same rewrite as the
    /// placeholder it replaces. Flushed bindings fail closed.
    fn nat_rewrite_seg(&mut self, mut seg: Segment) -> Result<Segment, NetError> {
        let verdict = {
            let Some(topo) = self.topology.as_mut() else { return Ok(seg) };
            let dst_subnet = topo.subnet(seg.dst.host);
            topo.nat_translate(seg.src, dst_subnet)
        };
        let public = match verdict {
            NatVerdict::Untouched => return Ok(seg),
            NatVerdict::Rewritten(p) => p,
            NatVerdict::Rebound(p) => {
                self.topo_stats.nat_rebinds += 1;
                p
            }
            NatVerdict::Expired => {
                self.topo_stats.nat_drops += 1;
                return Err(NetError::NatExpired(seg.src));
            }
        };
        self.topo_stats.nat_rewrites += 1;
        if self.trace.is_enabled() {
            self.trace.emit_on(
                self.trace_track,
                self.clock.now(),
                TraceEvent::NatRewrite { port: public.port },
            );
        }
        seg.src = public;
        Ok(seg)
    }

    fn host(&self, id: HostId) -> Result<&Host, NetError> {
        self.hosts.get(id.0 as usize).ok_or(NetError::UnknownHost(id))
    }

    fn fresh_isn(&mut self) -> u32 {
        self.isn_counter = self.isn_counter.wrapping_mul(1103515245).wrapping_add(12345);
        self.isn_counter
    }

    /// Opens a TCP connection from `from` to `to`, running the whole
    /// handshake synchronously. Fails if nothing listens at `to`.
    pub fn connect(&mut self, from: HostId, to: Addr) -> Result<ConnId, NetError> {
        self.poll_network();
        self.host(from)?;
        self.host(to.host)?;
        if let Some(chaos) = self.chaos.as_mut() {
            if chaos.cfg.partitioned(from, to.host) {
                chaos.stats.partition_drops += 1;
                return Err(NetError::Partitioned(from, to.host));
            }
        }
        self.route_check(from, to.host, Some(to.port))?;
        if !self.listeners.contains_key(&to) {
            return Err(NetError::ConnectionRefused(to));
        }
        let local = Addr::new(from, self.next_port);
        self.next_port = self.next_port.wrapping_add(1).max(40000);
        // A NAT gateway on the client's subnet allocates the conntrack
        // binding at connect time, exactly like the SYN punching the hole.
        let fresh_binding = {
            match self.topology.as_mut() {
                Some(topo) => {
                    let dst_subnet = topo.subnet(to.host);
                    topo.nat_bind(local, dst_subnet).map(|(_, fresh)| fresh)
                }
                None => None,
            }
        };
        if fresh_binding == Some(true) {
            self.topo_stats.nat_bindings += 1;
        }
        let isn_c = self.fresh_isn();
        let isn_s = self.fresh_isn();
        let (mut client, syn) = TcpConn::connect(local, to, isn_c);
        // One RTT for SYN / SYN-ACK, plus the final ACK's one-way (folded
        // into the data flow in practice; we charge propagation only).
        self.charge_transfer(from, to.host, syn.wire_bytes());
        let (server, syn_ack) = TcpConn::accept(to, &syn, isn_s);
        self.charge_transfer(to.host, from, syn_ack.wire_bytes());
        let acks = client.on_segment(&syn_ack);
        debug_assert_eq!(client.state, TcpState::Established);
        let mut flow = Flow {
            client,
            server,
            server_host: to.host,
            server_port: to.port,
            closed_notified: false,
        };
        for a in acks {
            self.charge_transfer(from, to.host, a.wire_bytes());
            flow.server.on_segment(&a);
        }
        if let Some(l) = self.listeners.get_mut(&to) {
            l.app.on_connect(local);
        }
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        self.flows.insert(id.0, flow);
        Ok(id)
    }

    /// Sends application bytes on a client connection, driving filtering,
    /// routing, server processing and replies to quiescence.
    ///
    /// A multi-segment burst pays propagation latency once (segments
    /// pipeline on the wire) and serialization per byte.
    pub fn send(&mut self, conn: ConnId, data: &[u8]) -> Result<(), NetError> {
        self.poll_network();
        let stale = self.stale_conn(conn.0);
        let flow = self.flows.get_mut(&conn.0).ok_or(stale)?;
        if flow.client.state != TcpState::Established {
            return Err(NetError::NotEstablished(conn.0));
        }
        let (from, to) = (flow.client.local.host, flow.server_host);
        let (local, server_port) = (flow.client.local, flow.server_port);
        // Pre-validate the routed path and the NAT binding *before* the
        // client TCP consumes sequence numbers, so a downed route or a
        // flushed conntrack entry fails the send atomically instead of
        // wedging the flow with a sequence gap. No hop latency is charged
        // here — the per-segment delivery path pays it.
        self.route_probe(from, to, Some(server_port))?;
        if let Some(topo) = self.topology.as_ref() {
            if matches!(topo.nat_peek(local, topo.subnet(to)), NatVerdict::Expired) {
                self.topo_stats.nat_drops += 1;
                return Err(NetError::NatExpired(local));
            }
        }
        let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
        let segs = flow.client.send(data);
        if !segs.is_empty() {
            self.charge_propagation(from, to);
        }
        for seg in segs {
            self.route_from_client(conn, seg)?;
        }
        Ok(())
    }

    /// Reads whatever application bytes have arrived on a client
    /// connection.
    pub fn recv_available(&mut self, conn: ConnId) -> Result<Vec<u8>, NetError> {
        let stale = self.stale_conn(conn.0);
        let flow = self.flows.get_mut(&conn.0).ok_or(stale)?;
        Ok(flow.client.read_available())
    }

    /// Closes a client connection (FIN exchange runs synchronously).
    ///
    /// A flow that disappears mid-exchange (torn down by a concurrent
    /// [`NetWorld::drop_flow`] from a server callback or a chaos hook)
    /// surfaces as [`NetError::NoSuchConn`] instead of panicking.
    pub fn close(&mut self, conn: ConnId) -> Result<(), NetError> {
        let stale = self.stale_conn(conn.0);
        let flow = self.flows.get_mut(&conn.0).ok_or(stale)?;
        let client_host = flow.client.local.host;
        let server_host = flow.server_host;
        let peer = flow.client.local;
        let fin = flow.client.close();
        self.charge_transfer(client_host, server_host, fin.wire_bytes());
        let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
        let replies = flow.server.on_segment(&fin);
        let fin2 = flow.server.close();
        let addr = Addr::new(server_host, flow.server_port);
        let mut to_client = replies;
        to_client.push(fin2);
        for seg in to_client {
            self.charge_transfer(server_host, client_host, seg.wire_bytes());
            let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
            let acks = flow.client.on_segment(&seg);
            for a in acks {
                self.charge_transfer(client_host, server_host, a.wire_bytes());
                let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
                flow.server.on_segment(&a);
            }
        }
        let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
        if !flow.closed_notified {
            flow.closed_notified = true;
            if let Some(l) = self.listeners.get_mut(&addr) {
                l.app.on_close(peer);
            }
        }
        Ok(())
    }

    /// Tears a flow down abruptly (no FIN exchange) — a crashed endpoint or
    /// a chaos plan killing the connection. Further operations on the
    /// `ConnId` report [`NetError::NoSuchConn`].
    pub fn drop_flow(&mut self, conn: ConnId) -> Result<(), NetError> {
        let stale = self.stale_conn(conn.0);
        self.flows.remove(&conn.0).map(|_| ()).ok_or(stale)
    }

    /// The error for a failed flow lookup: ids we allocated once are
    /// *stale* ([`NetError::NoSuchConn`]); ids we never issued are
    /// [`NetError::UnknownConn`].
    fn stale_conn(&self, id: u64) -> NetError {
        if id >= 1 && id < self.next_conn {
            NetError::NoSuchConn(id)
        } else {
            NetError::UnknownConn(id)
        }
    }

    /// The client connection's local address (for diagnostics / filters).
    pub fn conn_local(&self, conn: ConnId) -> Result<Addr, NetError> {
        self.flows.get(&conn.0).map(|f| f.client.local).ok_or_else(|| self.stale_conn(conn.0))
    }

    /// The client connection's TCP sequence diagnostics: `(snd_nxt,
    /// rcv_nxt)` of the client endpoint.
    pub fn conn_seq(&self, conn: ConnId) -> Result<(u32, u32), NetError> {
        self.flows
            .get(&conn.0)
            .map(|f| (f.client.snd_nxt(), f.client.rcv_nxt()))
            .ok_or_else(|| self.stale_conn(conn.0))
    }

    /// Scans the client-side socket receive buffer for residue (§2.1 lists
    /// socket buffers among plaintext hiding places).
    pub fn conn_buffer_contains(&self, conn: ConnId, needle: &[u8]) -> bool {
        self.flows.get(&conn.0).map(|f| f.client.scan_buffer(needle)).unwrap_or(false)
    }

    /// Injects a segment into the network as if transmitted by
    /// `physical_src` — the trusted node forwarding a reframed packet whose
    /// header still names the client (§3.3 step 4). Bypasses
    /// `physical_src`'s egress filter (the node is trusted not to loop).
    pub fn inject(&mut self, physical_src: HostId, seg: Segment) -> Result<(), NetError> {
        self.poll_network();
        self.host(physical_src)?;
        // Find the flow this segment belongs to by its header addresses
        // (the *private* flow identity — NAT translation happens below,
        // after the flow is identified, exactly like conntrack matching
        // the inner tuple before rewriting the outer one).
        let conn = self
            .flows
            .iter()
            .find(|(_, f)| f.client.local == seg.src && f.client.remote == seg.dst)
            .map(|(id, _)| ConnId(*id))
            .ok_or(NetError::NoMatchingFlow(seg.src, seg.dst))?;
        self.route_check(physical_src, seg.dst.host, Some(seg.dst.port))?;
        let seg = self.nat_rewrite_seg(seg)?;
        self.wire_fault(physical_src, seg.dst.host, seg.wire_bytes())?;
        self.charge_transfer(physical_src, seg.dst.host, seg.wire_bytes());
        if self.trace.is_enabled() {
            self.trace.emit_on(
                self.trace_track,
                self.clock.now(),
                TraceEvent::NetInject { bytes: seg.payload.len() as u64 },
            );
        }
        self.tap_segment(&seg);
        self.deliver_to_server(conn, seg)?;
        self.injected += 1;
        Ok(())
    }

    /// Routes one client data segment: egress filter, then normal delivery
    /// or diversion.
    fn route_from_client(&mut self, conn: ConnId, seg: Segment) -> Result<(), NetError> {
        let client_host = seg.src.host;
        let action =
            match self.hosts.get_mut(client_host.0 as usize).and_then(|h| h.filter.as_mut()) {
                Some(f) => f.inspect(&seg),
                None => FilterAction::Pass,
            };
        match action {
            FilterAction::Pass => {
                self.route_check(client_host, seg.dst.host, Some(seg.dst.port))?;
                let seg = self.nat_rewrite_seg(seg)?;
                self.wire_fault(client_host, seg.dst.host, seg.wire_bytes())?;
                self.charge_serialization(client_host, seg.dst.host, seg.wire_bytes());
                self.tap_segment(&seg);
                self.deliver_to_server(conn, seg)
            }
            FilterAction::Redirect(to) => {
                if let Some(chaos) = self.chaos.as_mut() {
                    if chaos.cfg.partitioned(client_host, to) {
                        // The marked segment dies on the partitioned path
                        // to the trusted node: nobody downstream ever sees
                        // the placeholder, which is the fail-closed
                        // degradation the chaos tests assert on.
                        chaos.stats.partition_drops += 1;
                        return Ok(());
                    }
                }
                if self.route_check(client_host, to, None).is_err() {
                    // The path to the trusted node is down: like the
                    // partition above, the marked segment dies silently —
                    // nothing downstream ever sees the placeholder.
                    return Ok(());
                }
                self.charge_transfer(client_host, to, seg.wire_bytes());
                if self.trace.is_enabled() {
                    self.trace.emit_on(
                        self.trace_track,
                        self.clock.now(),
                        TraceEvent::NetRedirect { bytes: seg.payload.len() as u64 },
                    );
                }
                self.hosts
                    .get_mut(to.0 as usize)
                    .ok_or(NetError::UnknownHost(to))?
                    .redirect_queue
                    .push(seg);
                Ok(())
            }
            FilterAction::Drop => Ok(()),
        }
    }

    /// Delivers a segment to the server side of `conn`, runs the server
    /// app, and routes replies back to the client.
    fn deliver_to_server(&mut self, conn: ConnId, seg: Segment) -> Result<(), NetError> {
        let stale = self.stale_conn(conn.0);
        let flow = self.flows.get_mut(&conn.0).ok_or(stale)?;
        let server_host = flow.server_host;
        let server_addr = Addr::new(server_host, flow.server_port);
        let client_host = flow.client.local.host;
        let peer = flow.client.local;

        let acks = flow.server.on_segment(&seg);
        let arrived = flow.server.read_available();

        // ACKs flow back (propagation charged; they overlap data in real
        // stacks, so only bytes are charged, not extra RTTs).
        for a in acks {
            self.charge_bytes(server_host, client_host, a.wire_bytes());
            let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
            flow.client.on_segment(&a);
        }

        if arrived.is_empty() {
            return Ok(());
        }
        let reply = match self.listeners.get_mut(&server_addr) {
            Some(l) => l.app.on_data(peer, &arrived),
            None => ServerReply::default(),
        };
        if reply.think > SimDuration::ZERO {
            self.clock.advance(reply.think);
            self.think_total += reply.think;
        }
        if !reply.data.is_empty() {
            // The reply takes the reverse routed path (charged once per
            // burst, like propagation — reply segments pipeline).
            self.route_check(server_host, client_host, None)?;
            let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
            let segs = flow.server.send(&reply.data);
            if !segs.is_empty() {
                self.charge_propagation(server_host, client_host);
            }
            for seg in segs {
                self.wire_fault(server_host, client_host, seg.wire_bytes())?;
                self.charge_serialization(server_host, client_host, seg.wire_bytes());
                let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
                let acks = flow.client.on_segment(&seg);
                for a in acks {
                    self.charge_bytes(client_host, server_host, a.wire_bytes());
                    let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
                    flow.server.on_segment(&a);
                }
            }
        }
        if reply.close {
            let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
            let fin = flow.server.close();
            self.charge_transfer(server_host, client_host, fin.wire_bytes());
            let flow = self.flows.get_mut(&conn.0).ok_or(NetError::NoSuchConn(conn.0))?;
            flow.client.on_segment(&fin);
        }
        Ok(())
    }

    /// Applies the installed wire faults to one data segment about to cross
    /// `from -> to`: partitions fail the send, a flap window stalls the
    /// clock to its end, loss/corruption dice charge a retransmission
    /// (extra propagation + serialization — the clean copy still arrives),
    /// and `extra_delay` advances the clock. No-op when chaos is off.
    fn wire_fault(&mut self, from: HostId, to: HostId, bytes: u64) -> Result<(), NetError> {
        let now = self.clock.now();
        let (retransmits, stall_until, delay) = {
            let Some(chaos) = self.chaos.as_mut() else { return Ok(()) };
            if chaos.cfg.partitioned(from, to) {
                chaos.stats.partition_drops += 1;
                return Err(NetError::Partitioned(from, to));
            }
            let stall_until = match chaos.cfg.flap {
                Some((start, until)) if now >= start && now < until => {
                    chaos.stats.flap_stalls += 1;
                    Some(until)
                }
                _ => None,
            };
            let mut retransmits = 0u32;
            if chaos.cfg.loss_pct > 0 && chaos.rng.below(100) < u64::from(chaos.cfg.loss_pct) {
                chaos.stats.lost_segments += 1;
                retransmits += 1;
            }
            if chaos.cfg.corrupt_pct > 0 && chaos.rng.below(100) < u64::from(chaos.cfg.corrupt_pct)
            {
                chaos.stats.corrupted_segments += 1;
                retransmits += 1;
            }
            let delay = if chaos.cfg.extra_delay > SimDuration::ZERO {
                chaos.stats.delayed_segments += 1;
                chaos.cfg.extra_delay
            } else {
                SimDuration::ZERO
            };
            (retransmits, stall_until, delay)
        };
        if let Some(until) = stall_until {
            self.clock.advance_to(until);
        }
        if delay > SimDuration::ZERO {
            self.clock.advance(delay);
        }
        for _ in 0..retransmits {
            // The lost/garbled copy was already on the wire: charge the
            // wasted propagation + serialization and the wasted bytes.
            self.charge_transfer(from, to, bytes);
        }
        Ok(())
    }

    /// Advances the clock for a standalone transfer (propagation +
    /// serialization) and charges both traffic meters.
    fn charge_transfer(&mut self, from: HostId, to: HostId, bytes: u64) {
        self.charge_propagation(from, to);
        self.charge_serialization(from, to, bytes);
    }

    /// Advances the clock by the path's one-way propagation latency.
    fn charge_propagation(&mut self, from: HostId, to: HostId) {
        let t = {
            let src = &self.hosts[from.0 as usize].link;
            let dst = &self.hosts[to.0 as usize].link;
            src.one_way() + dst.one_way()
        };
        self.clock.advance(t);
    }

    /// Advances the clock by serialization delay only (pipelined burst
    /// segments) and charges the traffic meters.
    fn charge_serialization(&mut self, from: HostId, to: HostId, bytes: u64) {
        let t = {
            let src = &self.hosts[from.0 as usize].link;
            let dst = &self.hosts[to.0 as usize].link;
            src.serialize_time(bytes) + dst.serialize_time(bytes)
        };
        self.clock.advance(t);
        self.charge_bytes(from, to, bytes);
    }

    /// Charges traffic meters without advancing the clock (overlapping
    /// traffic such as ACKs).
    fn charge_bytes(&mut self, from: HostId, to: HostId, bytes: u64) {
        if let Some(h) = self.hosts.get_mut(from.0 as usize) {
            h.traffic.tx_bytes += bytes;
        }
        if let Some(h) = self.hosts.get_mut(to.0 as usize) {
            h.traffic.rx_bytes += bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::MarkFilter;
    use tinman_sim::SimTime;

    /// Echo server: replies with what it received, uppercased, after a
    /// fixed think time.
    struct Echo;

    impl ServerApp for Echo {
        fn on_data(&mut self, _peer: Addr, data: &[u8]) -> ServerReply {
            ServerReply {
                data: data.to_ascii_uppercase(),
                think: SimDuration::from_millis(5),
                close: false,
            }
        }
    }

    fn world() -> (NetWorld, HostId, HostId, Addr) {
        let mut w = NetWorld::new(SimClock::new());
        let phone = w.add_host("phone", LinkProfile::wifi());
        let server = w.add_host("example.com", LinkProfile::ethernet());
        let addr = Addr::new(server, 443);
        w.install_server(addr, Box::new(Echo));
        (w, phone, server, addr)
    }

    #[test]
    fn connect_send_recv_round_trip() {
        let (mut w, phone, _server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"hello").unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"HELLO");
    }

    #[test]
    fn connection_refused_without_listener() {
        let (mut w, phone, server, _) = world();
        let err = w.connect(phone, Addr::new(server, 80)).unwrap_err();
        assert!(matches!(err, NetError::ConnectionRefused(_)));
    }

    #[test]
    fn dns_and_reverse_lookup() {
        let (mut w, _phone, server, _) = world();
        assert_eq!(w.lookup("example.com").unwrap(), server);
        assert!(w.lookup("nope.com").is_err());
        w.register_domain("auth.example.com", server);
        assert_eq!(w.lookup("auth.example.com").unwrap(), server);
        assert_eq!(w.reverse_lookup(server), Some("example.com"));
    }

    #[test]
    fn clock_advances_with_traffic() {
        let (mut w, phone, _server, addr) = world();
        let t0 = w.clock().now();
        let conn = w.connect(phone, addr).unwrap();
        let t1 = w.clock().now();
        assert!(t1 > t0, "handshake costs time");
        w.send(conn, &vec![0u8; 100_000]).unwrap();
        let t2 = w.clock().now();
        // 100 KB over ~2.5 MB/s wifi ≈ 40 ms minimum.
        assert!(t2.since(t1) > SimDuration::from_millis(30));
    }

    #[test]
    fn three_g_is_slower_than_wifi() {
        let elapsed = |link: LinkProfile| {
            let mut w = NetWorld::new(SimClock::new());
            let phone = w.add_host("phone", link);
            let server = w.add_host("s", LinkProfile::ethernet());
            let addr = Addr::new(server, 443);
            w.install_server(addr, Box::new(Echo));
            let conn = w.connect(phone, addr).unwrap();
            let t0 = w.clock().now();
            w.send(conn, &vec![1u8; 50_000]).unwrap();
            w.clock().now().since(t0)
        };
        assert!(elapsed(LinkProfile::three_g()) > elapsed(LinkProfile::wifi()) * 2);
    }

    #[test]
    fn traffic_counters_accumulate_both_sides() {
        let (mut w, phone, server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"data").unwrap();
        let pt = w.traffic(phone).unwrap();
        let st = w.traffic(server).unwrap();
        assert!(pt.tx_bytes > 0 && pt.rx_bytes > 0);
        assert!(st.tx_bytes > 0 && st.rx_bytes > 0);
    }

    #[test]
    fn marked_segments_divert_to_redirect_queue() {
        let (mut w, phone, _server, addr) = world();
        let node = w.add_host("trusted-node", LinkProfile::ethernet());
        w.set_egress_filter(phone, Box::new(MarkFilter { mark: 0x7f, to: node }));
        let conn = w.connect(phone, addr).unwrap();

        // Unmarked passes through.
        w.send(conn, b"\x16normal").unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"\x16NORMAL");
        assert_eq!(w.redirected_pending(node).unwrap(), 0);

        // Marked is captured, server sees nothing.
        w.send(conn, b"\x7fsecret-placeholder").unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"");
        assert_eq!(w.redirected_pending(node).unwrap(), 1);
        let segs = w.take_redirected(node).unwrap();
        assert_eq!(segs[0].payload, b"\x7fsecret-placeholder");
        assert_eq!(w.redirected_pending(node).unwrap(), 0);
    }

    #[test]
    fn inject_reframed_packet_reaches_server_as_client() {
        let (mut w, phone, _server, addr) = world();
        let node = w.add_host("trusted-node", LinkProfile::ethernet());
        w.set_egress_filter(phone, Box::new(MarkFilter { mark: 0x7f, to: node }));
        let conn = w.connect(phone, addr).unwrap();

        w.send(conn, b"\x7fplaceholder-body").unwrap();
        let mut seg = w.take_redirected(node).unwrap().pop().unwrap();
        // Node swaps the payload for one of EQUAL length (the cor shares
        // the placeholder's size) and forwards with the header untouched.
        let real = b"\x17realsecret-body!";
        assert_eq!(seg.payload.len(), real.len());
        seg.payload = real.to_vec();
        w.inject(node, seg).unwrap();
        // The echo server processed it as if the client had sent it.
        assert_eq!(w.recv_available(conn).unwrap(), real.to_ascii_uppercase());
    }

    #[test]
    fn redirect_and_inject_emit_trace_events() {
        let (mut w, phone, _server, addr) = world();
        let node = w.add_host("trusted-node", LinkProfile::ethernet());
        w.set_egress_filter(phone, Box::new(MarkFilter { mark: 0x7f, to: node }));
        let (h, sink) = TraceHandle::ring(16);
        w.set_trace(h, 3);
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"\x7fdiverted").unwrap();
        let seg = w.take_redirected(node).unwrap().pop().unwrap();
        w.inject(node, seg).unwrap();
        let recs = sink.snapshot();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].track, 3);
        assert_eq!(recs[0].event, TraceEvent::NetRedirect { bytes: 9 });
        assert_eq!(recs[1].event, TraceEvent::NetInject { bytes: 9 });
        assert!(recs[1].sim_ns >= recs[0].sim_ns, "simulated stamps are monotone");
    }

    #[test]
    fn inject_unknown_flow_fails() {
        let (mut w, _phone, server, _) = world();
        let node = w.add_host("node", LinkProfile::ethernet());
        let bogus = Segment {
            src: Addr::new(HostId(77), 1),
            dst: Addr::new(server, 443),
            seq: 0,
            ack: 0,
            flags: crate::tcp::TcpFlags::ACK,
            payload: vec![1],
        };
        assert!(matches!(w.inject(node, bogus), Err(NetError::NoMatchingFlow(_, _))));
    }

    #[test]
    fn drop_filter_silently_discards() {
        let (mut w, phone, _server, addr) = world();
        w.set_egress_filter(phone, Box::new(|_: &Segment| FilterAction::Drop));
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"lost").unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"");
    }

    #[test]
    fn close_notifies_server_app() {
        struct CloseCounter(std::rc::Rc<std::cell::Cell<u32>>);
        impl ServerApp for CloseCounter {
            fn on_data(&mut self, _p: Addr, _d: &[u8]) -> ServerReply {
                ServerReply::default()
            }
            fn on_close(&mut self, _p: Addr) {
                self.0.set(self.0.get() + 1);
            }
        }
        let mut w = NetWorld::new(SimClock::new());
        let phone = w.add_host("phone", LinkProfile::wifi());
        let server = w.add_host("s", LinkProfile::ethernet());
        let addr = Addr::new(server, 443);
        let count = std::rc::Rc::new(std::cell::Cell::new(0));
        w.install_server(addr, Box::new(CloseCounter(count.clone())));
        let conn = w.connect(phone, addr).unwrap();
        w.close(conn).unwrap();
        assert_eq!(count.get(), 1);
    }

    #[test]
    fn server_think_time_advances_clock() {
        let (mut w, phone, _server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        let t0 = w.clock().now();
        w.send(conn, b"x").unwrap();
        assert!(w.clock().now().since(t0) >= SimDuration::from_millis(5));
        let _ = SimTime::ZERO; // keep the import honest
    }

    #[test]
    fn stale_conn_reports_no_such_conn_instead_of_panicking() {
        let (mut w, phone, _server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"live").unwrap();
        w.drop_flow(conn).unwrap();
        // Every operation on the torn-down id degrades to an error.
        assert_eq!(w.send(conn, b"x").unwrap_err(), NetError::NoSuchConn(conn.0));
        assert_eq!(w.recv_available(conn).unwrap_err(), NetError::NoSuchConn(conn.0));
        assert_eq!(w.close(conn).unwrap_err(), NetError::NoSuchConn(conn.0));
        assert_eq!(w.conn_local(conn).unwrap_err(), NetError::NoSuchConn(conn.0));
        assert_eq!(w.conn_seq(conn).unwrap_err(), NetError::NoSuchConn(conn.0));
        assert_eq!(w.drop_flow(conn).unwrap_err(), NetError::NoSuchConn(conn.0));
        // Ids never issued stay UnknownConn.
        assert_eq!(w.send(ConnId(999), b"x").unwrap_err(), NetError::UnknownConn(999));
    }

    #[test]
    fn partition_refuses_connect_and_fails_send() {
        let (mut w, phone, server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        w.set_chaos(NetChaos { partitions: vec![(phone, server)], ..NetChaos::default() });
        assert!(matches!(w.connect(phone, addr), Err(NetError::Partitioned(_, _))));
        assert!(matches!(w.send(conn, b"x"), Err(NetError::Partitioned(_, _))));
        assert!(w.chaos_stats().partition_drops >= 2);
    }

    #[test]
    fn partitioned_redirect_path_drops_marked_segment_silently() {
        let (mut w, phone, _server, addr) = world();
        let node = w.add_host("trusted-node", LinkProfile::ethernet());
        w.set_egress_filter(phone, Box::new(MarkFilter { mark: 0x7f, to: node }));
        let conn = w.connect(phone, addr).unwrap();
        w.set_chaos(NetChaos { partitions: vec![(phone, node)], ..NetChaos::default() });
        // The marked segment dies on the way to the node: no error, no
        // delivery, nothing queued — the placeholder never left the phone.
        w.send(conn, b"\x7fsecret-placeholder").unwrap();
        assert_eq!(w.redirected_pending(node).unwrap(), 0);
        assert_eq!(w.recv_available(conn).unwrap(), b"");
        assert_eq!(w.chaos_stats().partition_drops, 1);
    }

    #[test]
    fn loss_charges_retransmission_but_delivers_clean_bytes() {
        let run = |loss_pct: u8| {
            let mut w = NetWorld::new(SimClock::new());
            let phone = w.add_host("phone", LinkProfile::wifi());
            let server = w.add_host("s", LinkProfile::ethernet());
            let addr = Addr::new(server, 443);
            w.install_server(addr, Box::new(Echo));
            let conn = w.connect(phone, addr).unwrap();
            w.set_chaos(NetChaos { loss_pct, seed: 7, ..NetChaos::default() });
            let t0 = w.clock().now();
            w.send(conn, &vec![b'a'; 200_000]).unwrap();
            let data = w.recv_available(conn).unwrap();
            assert!(data.iter().all(|&b| b == b'A'), "payload is uncorrupted");
            (w.clock().now().since(t0), w.traffic(phone).unwrap().tx_bytes, w.chaos_stats())
        };
        let (t_clean, tx_clean, s_clean) = run(0);
        let (t_lossy, tx_lossy, s_lossy) = run(60);
        assert_eq!(s_clean.lost_segments, 0);
        assert!(s_lossy.lost_segments > 0, "60% loss over many segments must fire");
        assert!(t_lossy > t_clean, "retransmissions cost time");
        assert!(tx_lossy > tx_clean, "retransmissions cost radio bytes");
    }

    #[test]
    fn flap_window_stalls_transfers_to_its_end() {
        let (mut w, phone, _server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        let until = SimTime::ZERO + SimDuration::from_secs(3);
        w.set_chaos(NetChaos { flap: Some((SimTime::ZERO, until)), ..NetChaos::default() });
        w.send(conn, b"x").unwrap();
        assert!(w.clock().now() >= until, "send inside the flap stalls past it");
        assert!(w.chaos_stats().flap_stalls >= 1);
    }

    #[test]
    fn extra_delay_slows_every_segment() {
        let (mut w, phone, _server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        w.set_chaos(NetChaos { extra_delay: SimDuration::from_millis(40), ..NetChaos::default() });
        let t0 = w.clock().now();
        w.send(conn, b"x").unwrap();
        assert!(w.clock().now().since(t0) >= SimDuration::from_millis(80), "data + reply delayed");
    }

    #[test]
    fn chaos_dice_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut w = NetWorld::new(SimClock::new());
            let phone = w.add_host("phone", LinkProfile::wifi());
            let server = w.add_host("s", LinkProfile::ethernet());
            let addr = Addr::new(server, 443);
            w.install_server(addr, Box::new(Echo));
            let conn = w.connect(phone, addr).unwrap();
            w.set_chaos(NetChaos { loss_pct: 30, corrupt_pct: 10, seed, ..NetChaos::default() });
            w.send(conn, &vec![b'z'; 100_000]).unwrap();
            (w.clock().now(), w.chaos_stats())
        };
        assert_eq!(run(42), run(42), "same seed, same faults, same timeline");
        assert_ne!(run(42).1, run(43).1, "different seed rolls different dice");
    }

    #[test]
    fn injected_count_tracks_successful_injections() {
        let (mut w, phone, _server, addr) = world();
        let node = w.add_host("trusted-node", LinkProfile::ethernet());
        w.set_egress_filter(phone, Box::new(MarkFilter { mark: 0x7f, to: node }));
        let conn = w.connect(phone, addr).unwrap();
        assert_eq!(w.injected_count(), 0);
        w.send(conn, b"\x7fplaceholder-body").unwrap();
        let seg = w.take_redirected(node).unwrap().pop().unwrap();
        w.inject(node, seg).unwrap();
        assert_eq!(w.injected_count(), 1);
    }

    #[test]
    fn unknown_host_queries_are_errors_not_defaults() {
        let (mut w, _phone, _server, _) = world();
        let ghost = HostId(999);
        assert_eq!(w.traffic(ghost).unwrap_err(), NetError::NoSuchHost(ghost));
        assert_eq!(w.take_redirected(ghost).unwrap_err(), NetError::NoSuchHost(ghost));
        assert_eq!(w.redirected_pending(ghost).unwrap_err(), NetError::NoSuchHost(ghost));
        assert_eq!(w.host_link(ghost).unwrap_err(), NetError::NoSuchHost(ghost));
    }

    /// World with phone in subnet 1 behind NAT, server in subnet 0,
    /// joined by one router.
    fn routed_world() -> (NetWorld, HostId, HostId, Addr) {
        let (mut w, phone, server, addr) = world();
        w.enable_topology(TopologyConfig::default());
        w.assign_subnet(phone, 1);
        w.add_router("r-access", &[1, 0], &[]);
        w.enable_nat(1);
        (w, phone, server, addr)
    }

    #[test]
    fn flat_world_is_byte_identical_with_and_without_the_topology_module() {
        // A world that never calls a topology method must produce the
        // exact same timeline and traffic as before the routed layer
        // existed: all-zero stats, Display-identical rendering.
        let (mut w, phone, _server, addr) = world();
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"hello").unwrap();
        assert_eq!(w.topology_stats(), TopologyStats::default());
        assert_eq!(w.render_host(phone), phone.to_string());
        assert!(!w.topology_enabled());
    }

    #[test]
    fn routed_world_charges_hops_and_rewrites_sources() {
        let (mut w, phone, _server, addr) = routed_world();
        w.set_wire_tap(true);
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"hello").unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"HELLO");
        let stats = w.topology_stats();
        assert!(stats.router_hops > 0, "cross-subnet traffic traverses the router");
        assert_eq!(stats.nat_bindings, 1, "connect allocated a conntrack entry");
        assert!(stats.nat_rewrites > 0, "outbound data was source-rewritten");
        // Every tapped (untrusted-wire) segment carries the NAT's public
        // source, never the phone's private address.
        let tap = w.take_wire_tap();
        assert!(!tap.is_empty());
        let nat_host = w.lookup("nat-1").unwrap();
        for seg in &tap {
            assert_eq!(seg.src.host, nat_host, "post-NAT source on the wire");
        }
        assert_eq!(w.render_host(phone), phone.render_in_subnet(1));
    }

    #[test]
    fn router_outage_fails_cross_subnet_traffic_closed_until_it_ends() {
        let (mut w, phone, _server, addr) = routed_world();
        let conn = w.connect(phone, addr).unwrap();
        let now = w.clock().now();
        let until = now + SimDuration::from_secs(5);
        w.set_all_router_outages(vec![(now, until)]);
        assert!(matches!(w.send(conn, b"x"), Err(NetError::NoRoute(_, _))));
        assert!(w.topology_stats().route_drops >= 1);
        // Advance past the window (a DSM backoff would do this) and the
        // same connection works again.
        w.clock().advance_to(until);
        w.send(conn, b"back").unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"BACK");
    }

    #[test]
    fn firewall_denied_port_refuses_connect() {
        let (mut w, phone, server, _addr) = world();
        w.enable_topology(TopologyConfig::default());
        w.assign_subnet(phone, 1);
        w.add_router("fw", &[1, 0], &[443]);
        let err = w.connect(phone, Addr::new(server, 443)).unwrap_err();
        assert!(matches!(err, NetError::FirewallDenied(_)));
        assert_eq!(w.topology_stats().firewall_drops, 1);
    }

    #[test]
    fn nat_table_flush_fails_established_flows_closed() {
        let (mut w, phone, _server, addr) = routed_world();
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"pre").unwrap();
        w.flush_nat_now();
        assert!(matches!(w.send(conn, b"post"), Err(NetError::NatExpired(_))));
        let stats = w.topology_stats();
        assert_eq!(stats.nat_flushes, 1);
        assert!(stats.nat_drops >= 1);
        // A *new* connection re-binds and works.
        let conn2 = w.connect(phone, addr).unwrap();
        w.send(conn2, b"fresh").unwrap();
        assert_eq!(w.recv_available(conn2).unwrap(), b"FRESH");
    }

    #[test]
    fn handoff_swaps_link_stalls_blackout_and_rebinds_nat() {
        let (mut w, phone, _server, addr) = routed_world();
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"on-wifi").unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"ON-WIFI");
        assert_eq!(w.host_link(phone).unwrap().name, "wifi");
        let at = w.clock().now() + SimDuration::from_millis(10);
        w.schedule_handoff(
            phone,
            Handoff {
                at,
                link: LinkProfile::three_g(),
                blackout: SimDuration::from_millis(400),
                rebind_nat: true,
                to_subnet: None,
            },
        );
        assert_eq!(w.pending_handoffs(), 1);
        w.clock().advance(SimDuration::from_millis(20));
        // The next network operation applies the handoff: blackout stall,
        // link swap, NAT rebind — and the established flow survives.
        w.send(conn, b"on-3g").unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"ON-3G");
        assert_eq!(w.host_link(phone).unwrap().name, "3g");
        assert!(w.clock().now() >= at + SimDuration::from_millis(400), "blackout stalled");
        let stats = w.topology_stats();
        assert_eq!(stats.handoffs, 1);
        assert!(stats.nat_rebinds >= 1, "flow transparently re-bound through the NAT");
        assert_eq!(w.pending_handoffs(), 0);
    }

    #[test]
    fn dns_resolver_charges_caches_and_fails_closed_in_outages() {
        let (mut w, _phone, server, _addr) = routed_world();
        let t0 = w.clock().now();
        assert_eq!(w.resolve("example.com").unwrap(), server);
        assert!(w.clock().now() > t0, "cold lookup pays the resolver round trip");
        let t1 = w.clock().now();
        assert_eq!(w.resolve("example.com").unwrap(), server);
        assert_eq!(w.clock().now(), t1, "cache hit is free");
        let until = t1 + SimDuration::from_secs(10);
        w.set_dns_outages(vec![(t1, until)]);
        // Cached name still serves through the outage; a cold one fails.
        assert_eq!(w.resolve("example.com").unwrap(), server);
        w.register_domain("cold.example.com", server);
        assert!(matches!(w.resolve("cold.example.com"), Err(NetError::DnsOutage(_))));
        let stats = w.topology_stats();
        assert_eq!(stats.dns_lookups, 1);
        assert_eq!(stats.dns_cache_hits, 2);
        assert_eq!(stats.dns_failures, 1);
    }

    #[test]
    fn flat_world_resolve_is_plain_lookup() {
        let (mut w, _phone, server, _) = world();
        let t0 = w.clock().now();
        assert_eq!(w.resolve("example.com").unwrap(), server);
        assert_eq!(w.clock().now(), t0, "no resolver cost on a flat world");
    }

    #[test]
    fn injected_replacement_traverses_the_same_nat_rewrite() {
        let (mut w, phone, _server, addr) = routed_world();
        let node = w.add_host("trusted-node", LinkProfile::ethernet());
        w.assign_subnet(node, 2);
        w.add_router("r-core", &[2, 0, 1], &[]);
        w.set_egress_filter(phone, Box::new(MarkFilter { mark: 0x7f, to: node }));
        w.set_wire_tap(true);
        let conn = w.connect(phone, addr).unwrap();
        w.send(conn, b"\x7fplaceholder-body").unwrap();
        // The diverted segment still carries the phone's *private* flow
        // identity — that is what lets the node inject by header match.
        let mut seg = w.take_redirected(node).unwrap().pop().unwrap();
        assert_eq!(seg.src.host, phone);
        seg.payload = b"\x17realsecret-body!".to_vec();
        w.inject(node, seg).unwrap();
        assert_eq!(w.recv_available(conn).unwrap(), b"\x17REALSECRET-BODY!");
        // On the untrusted wire the injected copy was source-rewritten
        // through the same conntrack binding the SYN punched.
        let tap = w.take_wire_tap();
        let nat_host = w.lookup("nat-1").unwrap();
        assert!(!tap.is_empty());
        for seg in &tap {
            assert_eq!(seg.src.host, nat_host);
        }
        assert!(w.topology_stats().nat_rewrites >= 1);
    }

    #[test]
    fn scheduled_nat_flush_applies_at_its_instant() {
        let (mut w, phone, _server, addr) = routed_world();
        let conn = w.connect(phone, addr).unwrap();
        let at = w.clock().now() + SimDuration::from_millis(50);
        w.schedule_nat_flush(at);
        w.send(conn, b"before").unwrap();
        assert_eq!(w.topology_stats().nat_flushes, 0, "not due yet");
        w.clock().advance_to(at);
        assert!(matches!(w.send(conn, b"after"), Err(NetError::NatExpired(_))));
        assert_eq!(w.topology_stats().nat_flushes, 1);
    }
}
