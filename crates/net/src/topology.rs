//! Routed topology over the flat host world.
//!
//! The paper's prototype ran phone and node on one clean subnet; real
//! mobile traffic crosses subnets, routers, firewalls, NATs, and flaky
//! DNS, and phones change networks mid-session. This module grows the
//! simulated internet into that shape while keeping it deterministic:
//!
//! * **Subnets** — every host is assigned to a [`SubnetId`] (subnet 0 is
//!   the legacy flat network every host starts in). Rendered addresses
//!   derive from the assignment: `10.<subnet>.<hi>.<lo>`.
//! * **Routers** — a [`Router`] attaches to a set of subnets, can be
//!   down (administratively or inside an outage window), and holds
//!   firewall rules (denied destination ports). Cross-subnet segments
//!   take the deterministic shortest router path or fail closed.
//! * **NAT** — a [`NatGateway`] on a subnet rewrites the source address
//!   of outbound segments through a connection-tracking table. Bindings
//!   are allocated at connect; flushing the table makes every further
//!   translation fail closed unless the host is marked for transparent
//!   rebinding (what a mobility handoff does).
//! * **DNS** — TTL'd positive caching over the world's name table plus
//!   injectable outage windows: a cached live record resolves through an
//!   outage, anything else fails with `DnsOutage`.
//!
//! The [`Topology`] itself is pure bookkeeping: it computes verdicts and
//! the [`crate::world::NetWorld`] applies the effects (clock charges,
//! stats, trace events), which keeps every path deterministic and
//! byte-identical across reruns.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use tinman_sim::{LinkProfile, SimDuration, SimTime};

use crate::addr::{Addr, HostId};

/// Identity of one subnet (the `10.<subnet>.0.0/16` analogue). Subnet 0
/// is the legacy flat network every host starts in.
pub type SubnetId = u8;

/// Identity of a router added with `NetWorld::add_router`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterId(pub usize);

/// One router: forwards between its attached subnets while up, drops
/// segments to denied destination ports (its firewall table).
#[derive(Clone, Debug)]
pub struct Router {
    /// Human-readable name (diagnostics).
    pub name: String,
    /// Administratively up. A down router forwards nothing.
    pub up: bool,
    /// Subnets this router connects.
    pub attached: Vec<SubnetId>,
    /// Destination ports this router's firewall refuses to forward.
    pub deny_ports: Vec<u16>,
    /// Chaos outage windows `[from, until)` during which the router is
    /// down regardless of `up`.
    pub(crate) outages: Vec<(SimTime, SimTime)>,
}

impl Router {
    fn forwards_at(&self, now: SimTime) -> bool {
        self.up && !self.outages.iter().any(|&(from, until)| now >= from && now < until)
    }
}

/// Tunables for the routed layer.
#[derive(Clone, Debug)]
pub struct TopologyConfig {
    /// Forwarding latency charged per router hop, per segment.
    pub hop_latency: SimDuration,
    /// Positive-cache lifetime of a resolved DNS record.
    pub dns_ttl: SimDuration,
    /// Resolver round trip charged on a DNS cache miss.
    pub dns_cost: SimDuration,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            hop_latency: SimDuration::from_micros(200),
            dns_ttl: SimDuration::from_secs(60),
            dns_cost: SimDuration::from_millis(8),
        }
    }
}

/// Counters of routed-layer activity (all zero when no topology is
/// installed). These feed the `net.topology.*` / `net.handoff.*` metrics
/// and the fleet's availability columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TopologyStats {
    /// Mid-session link handoffs applied.
    pub handoffs: u64,
    /// NAT conntrack bindings allocated at connect time.
    pub nat_bindings: u64,
    /// Segments whose source address was rewritten through the NAT.
    pub nat_rewrites: u64,
    /// Transparent re-allocations after a handoff flushed the binding.
    pub nat_rebinds: u64,
    /// Segments dropped fail-closed because their binding was flushed.
    pub nat_drops: u64,
    /// Conntrack table flushes applied (scheduled or chaos-injected).
    pub nat_flushes: u64,
    /// DNS resolutions that went to the resolver (cache misses).
    pub dns_lookups: u64,
    /// DNS resolutions served from the TTL cache.
    pub dns_cache_hits: u64,
    /// DNS resolutions refused by an outage window.
    pub dns_failures: u64,
    /// Router hops traversed by routed segments.
    pub router_hops: u64,
    /// Segments dropped because no up-router path existed.
    pub route_drops: u64,
    /// Segments dropped by a router firewall rule.
    pub firewall_drops: u64,
}

/// One scheduled mobility handoff for a host: at `at` the radio switches
/// to `link`, the air goes dark for `blackout`, and (optionally) the host
/// moves subnets and its NAT bindings are flushed-with-rebind.
#[derive(Clone, Debug)]
pub struct Handoff {
    /// When the switch happens.
    pub at: SimTime,
    /// The link profile after the switch (e.g. Wi-Fi -> 3G).
    pub link: LinkProfile,
    /// Radio blackout: transfers in flight stall until `at + blackout`.
    pub blackout: SimDuration,
    /// Flush the host's NAT bindings and allow transparent re-allocation
    /// on the next translated segment (the address-change half of a
    /// handoff). Without this the old bindings survive unchanged.
    pub rebind_nat: bool,
    /// Move the host to this subnet (None = stay).
    pub to_subnet: Option<SubnetId>,
}

/// Why a route computation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RouteFailure {
    /// No path of up routers connects the two subnets.
    NoRoute,
    /// A firewall rule on every candidate path denies the port.
    Firewall,
}

/// Verdict of a NAT translation attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum NatVerdict {
    /// No gateway applies; the segment passes untouched.
    Untouched,
    /// Rewrite the source to this public address.
    Rewritten(Addr),
    /// Same, via a fresh post-handoff binding.
    Rebound(Addr),
    /// The binding was flushed and the host may not rebind: fail closed.
    Expired,
}

/// Outcome of a DNS resolution attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DnsOutcome {
    /// Served from the TTL cache (no resolver traffic).
    Cached(HostId),
    /// Freshly resolved; charge the resolver round trip.
    Resolved(HostId),
    /// Inside an outage window with no live cached record.
    Outage,
    /// The name has no record at all.
    Unknown,
}

struct NatGateway {
    subnet: SubnetId,
    public_host: HostId,
    next_port: u16,
    /// private source endpoint -> allocated public port.
    conntrack: HashMap<Addr, u16>,
    /// Hosts allowed to transparently re-allocate after a flush.
    rebind: HashSet<HostId>,
}

/// The routed layer's bookkeeping. Pure: every method computes a verdict
/// and leaves clock charges, stats, and tracing to the world.
pub(crate) struct Topology {
    pub(crate) cfg: TopologyConfig,
    subnet_of: HashMap<HostId, SubnetId>,
    routers: Vec<Router>,
    nats: Vec<NatGateway>,
    dns_cache: HashMap<String, (HostId, SimTime)>,
    dns_outages: Vec<(SimTime, SimTime)>,
}

impl Topology {
    pub(crate) fn new(cfg: TopologyConfig) -> Self {
        Topology {
            cfg,
            subnet_of: HashMap::new(),
            routers: Vec::new(),
            nats: Vec::new(),
            dns_cache: HashMap::new(),
            dns_outages: Vec::new(),
        }
    }

    /// The subnet a host lives in (0 by default).
    pub(crate) fn subnet(&self, host: HostId) -> SubnetId {
        self.subnet_of.get(&host).copied().unwrap_or(0)
    }

    pub(crate) fn assign(&mut self, host: HostId, subnet: SubnetId) {
        self.subnet_of.insert(host, subnet);
    }

    pub(crate) fn add_router(
        &mut self,
        name: &str,
        attached: &[SubnetId],
        deny_ports: &[u16],
    ) -> RouterId {
        self.routers.push(Router {
            name: name.to_owned(),
            up: true,
            attached: attached.to_vec(),
            deny_ports: deny_ports.to_vec(),
            outages: Vec::new(),
        });
        RouterId(self.routers.len() - 1)
    }

    pub(crate) fn router_mut(&mut self, id: RouterId) -> Option<&mut Router> {
        self.routers.get_mut(id.0)
    }

    pub(crate) fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// Deterministic shortest router path between two subnets. Returns
    /// the hop count, or why no segment to `dst_port` can cross.
    pub(crate) fn route(
        &self,
        from: SubnetId,
        to: SubnetId,
        now: SimTime,
        dst_port: Option<u16>,
    ) -> Result<u64, RouteFailure> {
        if from == to {
            return Ok(0);
        }
        if self.routers.is_empty() {
            // No routers installed: the world is still flat.
            return Ok(0);
        }
        let usable =
            |r: &Router| r.forwards_at(now) && dst_port.is_none_or(|p| !r.deny_ports.contains(&p));
        match self.bfs_hops(from, to, &usable) {
            Some(hops) => Ok(hops),
            None => {
                // Distinguish "down" from "firewalled": if ignoring the
                // firewall finds a path, the firewall is what refused it.
                let up_only = |r: &Router| r.forwards_at(now);
                if self.bfs_hops(from, to, &up_only).is_some() {
                    Err(RouteFailure::Firewall)
                } else {
                    Err(RouteFailure::NoRoute)
                }
            }
        }
    }

    /// BFS over the subnet/router bipartite graph; routers are visited in
    /// index order and subnets in attachment order, so the chosen path is
    /// deterministic. Returns the number of routers traversed.
    fn bfs_hops(
        &self,
        from: SubnetId,
        to: SubnetId,
        usable: &dyn Fn(&Router) -> bool,
    ) -> Option<u64> {
        let mut dist: HashMap<SubnetId, u64> = HashMap::new();
        dist.insert(from, 0);
        let mut frontier = vec![from];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &s in &frontier {
                let d = dist[&s];
                for r in self.routers.iter().filter(|r| usable(r)) {
                    if !r.attached.contains(&s) {
                        continue;
                    }
                    for &n in &r.attached {
                        if n == to {
                            return Some(d + 1);
                        }
                        if let Entry::Vacant(e) = dist.entry(n) {
                            e.insert(d + 1);
                            next.push(n);
                        }
                    }
                }
            }
            frontier = next;
        }
        None
    }

    /// Installs a NAT gateway on `subnet` whose rewritten segments carry
    /// `public_host` as their source.
    pub(crate) fn install_nat(&mut self, subnet: SubnetId, public_host: HostId) {
        self.nats.push(NatGateway {
            subnet,
            public_host,
            next_port: 30000,
            conntrack: HashMap::new(),
            rebind: HashSet::new(),
        });
    }

    /// True if `subnet` has a NAT gateway.
    pub(crate) fn has_nat(&self, subnet: SubnetId) -> bool {
        self.nats.iter().any(|g| g.subnet == subnet)
    }

    /// Allocates (or refreshes) a conntrack binding for `src` talking to
    /// a host in `dst_subnet`. Returns the public address when a gateway
    /// applies (a fresh allocation bumps `nat_bindings` at the caller).
    pub(crate) fn nat_bind(&mut self, src: Addr, dst_subnet: SubnetId) -> Option<(Addr, bool)> {
        let s = self.subnet(src.host);
        if s == dst_subnet {
            return None;
        }
        let gw = self.nats.iter_mut().find(|g| g.subnet == s)?;
        let fresh = !gw.conntrack.contains_key(&src);
        let port = *gw.conntrack.entry(src).or_insert_with(|| {
            let p = gw.next_port;
            gw.next_port = gw.next_port.wrapping_add(1).max(30000);
            p
        });
        Some((Addr::new(gw.public_host, port), fresh))
    }

    /// Side-effect-free preview of [`Topology::nat_translate`]: what
    /// would happen to a segment from `src`, without allocating a rebind
    /// port. Lets `send` fail atomically before TCP consumes sequence
    /// numbers.
    pub(crate) fn nat_peek(&self, src: Addr, dst_subnet: SubnetId) -> NatVerdict {
        let s = self.subnet(src.host);
        if s == dst_subnet {
            return NatVerdict::Untouched;
        }
        let Some(gw) = self.nats.iter().find(|g| g.subnet == s) else {
            return NatVerdict::Untouched;
        };
        if let Some(&port) = gw.conntrack.get(&src) {
            return NatVerdict::Rewritten(Addr::new(gw.public_host, port));
        }
        if gw.rebind.contains(&src.host) {
            return NatVerdict::Rebound(Addr::new(gw.public_host, gw.next_port));
        }
        NatVerdict::Expired
    }

    /// Translates one outbound segment source through the conntrack
    /// table. Pure verdict; the caller applies the rewrite and counts.
    pub(crate) fn nat_translate(&mut self, src: Addr, dst_subnet: SubnetId) -> NatVerdict {
        let s = self.subnet(src.host);
        if s == dst_subnet {
            return NatVerdict::Untouched;
        }
        let Some(gw) = self.nats.iter_mut().find(|g| g.subnet == s) else {
            return NatVerdict::Untouched;
        };
        if let Some(&port) = gw.conntrack.get(&src) {
            return NatVerdict::Rewritten(Addr::new(gw.public_host, port));
        }
        if gw.rebind.contains(&src.host) {
            let p = gw.next_port;
            gw.next_port = gw.next_port.wrapping_add(1).max(30000);
            gw.conntrack.insert(src, p);
            return NatVerdict::Rebound(Addr::new(gw.public_host, p));
        }
        NatVerdict::Expired
    }

    /// Flushes every gateway's conntrack table (the `NatTableFlush`
    /// chaos family). Established translations fail closed afterwards.
    pub(crate) fn flush_nat(&mut self) {
        for gw in &mut self.nats {
            gw.conntrack.clear();
        }
    }

    /// Drops `host`'s bindings everywhere and marks it for transparent
    /// rebinding — the NAT half of a mobility handoff.
    pub(crate) fn rebind_host(&mut self, host: HostId) {
        for gw in &mut self.nats {
            gw.conntrack.retain(|a, _| a.host != host);
            gw.rebind.insert(host);
        }
    }

    pub(crate) fn set_dns_outages(&mut self, windows: Vec<(SimTime, SimTime)>) {
        self.dns_outages = windows;
    }

    fn dns_down(&self, now: SimTime) -> bool {
        self.dns_outages.iter().any(|&(from, until)| now >= from && now < until)
    }

    /// Resolves `domain` through the TTL cache and outage windows.
    /// `record` is the authoritative name-table entry (the world's map).
    pub(crate) fn dns_resolve(
        &mut self,
        domain: &str,
        now: SimTime,
        record: Option<HostId>,
    ) -> DnsOutcome {
        if let Some(&(host, expires)) = self.dns_cache.get(domain) {
            if now < expires {
                return DnsOutcome::Cached(host);
            }
        }
        if self.dns_down(now) {
            return DnsOutcome::Outage;
        }
        match record {
            Some(host) => {
                self.dns_cache.insert(domain.to_owned(), (host, now + self.cfg.dns_ttl));
                DnsOutcome::Resolved(host)
            }
            None => DnsOutcome::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(TopologyConfig::default())
    }

    #[test]
    fn same_subnet_is_zero_hops() {
        let t = topo();
        assert_eq!(t.route(0, 0, SimTime::ZERO, None), Ok(0));
    }

    #[test]
    fn routerless_world_stays_flat() {
        let t = topo();
        // No routers installed: cross-subnet still routes (legacy worlds).
        assert_eq!(t.route(1, 2, SimTime::ZERO, None), Ok(0));
    }

    #[test]
    fn bfs_finds_shortest_router_path() {
        let mut t = topo();
        t.add_router("a", &[1, 0], &[]);
        t.add_router("b", &[0, 2], &[]);
        t.add_router("direct", &[1, 2], &[]);
        assert_eq!(t.route(1, 2, SimTime::ZERO, None), Ok(1), "direct beats two hops");
        assert_eq!(t.route(1, 0, SimTime::ZERO, None), Ok(1));
    }

    #[test]
    fn down_router_fails_closed_and_outage_windows_recover() {
        let mut t = topo();
        let r = t.add_router("a", &[1, 0], &[]);
        let from = SimTime::ZERO + SimDuration::from_secs(1);
        let until = SimTime::ZERO + SimDuration::from_secs(2);
        t.router_mut(r).unwrap().outages = vec![(from, until)];
        assert_eq!(t.route(1, 0, SimTime::ZERO, None), Ok(1), "before the window");
        assert_eq!(t.route(1, 0, from, None), Err(RouteFailure::NoRoute), "inside");
        assert_eq!(t.route(1, 0, until, None), Ok(1), "after it ends");
    }

    #[test]
    fn firewall_denies_port_distinctly_from_no_route() {
        let mut t = topo();
        t.add_router("fw", &[1, 0], &[443]);
        assert_eq!(t.route(1, 0, SimTime::ZERO, Some(80)), Ok(1));
        assert_eq!(t.route(1, 0, SimTime::ZERO, Some(443)), Err(RouteFailure::Firewall));
        assert_eq!(t.route(1, 0, SimTime::ZERO, None), Ok(1));
    }

    #[test]
    fn nat_binding_allocates_deterministic_ports() {
        let mut t = topo();
        t.assign(HostId(1), 1);
        t.install_nat(1, HostId(9));
        let a = Addr::new(HostId(1), 40000);
        let (pub_a, fresh) = t.nat_bind(a, 0).unwrap();
        assert!(fresh);
        assert_eq!(pub_a, Addr::new(HostId(9), 30000));
        // Re-binding the same endpoint reuses the entry.
        let (again, fresh2) = t.nat_bind(a, 0).unwrap();
        assert_eq!(again, pub_a);
        assert!(!fresh2);
        // A second endpoint gets the next port.
        let b = Addr::new(HostId(1), 40001);
        assert_eq!(t.nat_bind(b, 0).unwrap().0.port, 30001);
    }

    #[test]
    fn flush_fails_closed_but_handoff_rebinds() {
        let mut t = topo();
        t.assign(HostId(1), 1);
        t.install_nat(1, HostId(9));
        let a = Addr::new(HostId(1), 40000);
        t.nat_bind(a, 0).unwrap();
        assert!(matches!(t.nat_translate(a, 0), NatVerdict::Rewritten(_)));
        t.flush_nat();
        assert_eq!(t.nat_translate(a, 0), NatVerdict::Expired, "flush fails closed");
        t.rebind_host(HostId(1));
        let v = t.nat_translate(a, 0);
        assert!(matches!(v, NatVerdict::Rebound(p) if p.port == 30001), "fresh public port");
        assert!(matches!(t.nat_translate(a, 0), NatVerdict::Rewritten(_)), "then stable");
    }

    #[test]
    fn intra_subnet_traffic_is_not_natted() {
        let mut t = topo();
        t.assign(HostId(1), 1);
        t.install_nat(1, HostId(9));
        assert_eq!(t.nat_translate(Addr::new(HostId(1), 40000), 1), NatVerdict::Untouched);
    }

    #[test]
    fn dns_ttl_cache_and_outage_windows() {
        let mut t = topo();
        let now = SimTime::ZERO;
        let h = HostId(5);
        assert_eq!(t.dns_resolve("x.com", now, Some(h)), DnsOutcome::Resolved(h));
        assert_eq!(t.dns_resolve("x.com", now, Some(h)), DnsOutcome::Cached(h));
        // Past the TTL the record must be re-resolved.
        let later = now + t.cfg.dns_ttl + SimDuration::from_secs(1);
        assert_eq!(t.dns_resolve("x.com", later, Some(h)), DnsOutcome::Resolved(h));
        // During an outage a live cached entry still serves; a cold name
        // fails closed.
        let from = later;
        let until = later + SimDuration::from_secs(30);
        t.set_dns_outages(vec![(from, until)]);
        assert_eq!(
            t.dns_resolve("x.com", later + SimDuration::from_secs(1), Some(h)),
            DnsOutcome::Cached(h)
        );
        assert_eq!(
            t.dns_resolve("y.com", later + SimDuration::from_secs(1), Some(h)),
            DnsOutcome::Outage
        );
        assert_eq!(t.dns_resolve("y.com", until, None), DnsOutcome::Unknown, "after the window");
    }
}
