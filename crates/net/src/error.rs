//! Network error type.

use std::fmt;

use crate::addr::{Addr, HostId};

/// An error raised by the simulated network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// Referenced a host id not registered in the world.
    UnknownHost(HostId),
    /// Resolved a domain with no DNS entry.
    UnknownDomain(String),
    /// Connected to an address with no listener.
    ConnectionRefused(Addr),
    /// Operated on a connection id the world does not know.
    UnknownConn(u64),
    /// Operated on a connection that existed once but has been torn down
    /// (stale `ConnId` after [`crate::world::NetWorld::drop_flow`]).
    NoSuchConn(u64),
    /// The two hosts cannot reach each other under the installed chaos
    /// partition set.
    Partitioned(HostId, HostId),
    /// Operated on a connection that is not (or no longer) established.
    NotEstablished(u64),
    /// A reframed/injected segment did not belong to any live flow.
    NoMatchingFlow(Addr, Addr),
    /// A TCP invariant was violated (simulation bug or deliberately
    /// corrupted injection).
    Protocol(String),
    /// Queried world state (traffic counters, redirect queue) for a host
    /// id not registered in the world.
    NoSuchHost(HostId),
    /// The DNS resolver is inside an outage window and the name has no
    /// live cached record.
    DnsOutage(String),
    /// No path of up routers connects the two hosts' subnets.
    NoRoute(HostId, HostId),
    /// A router firewall rule refused to forward to this destination.
    FirewallDenied(Addr),
    /// The NAT conntrack binding for this source endpoint was flushed
    /// and the host may not transparently rebind: the segment fails
    /// closed instead of leaking with a stale translation.
    NatExpired(Addr),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownHost(h) => write!(f, "unknown host {h:?}"),
            NetError::UnknownDomain(d) => write!(f, "unknown domain '{d}'"),
            NetError::ConnectionRefused(a) => write!(f, "connection refused by {a}"),
            NetError::UnknownConn(id) => write!(f, "unknown connection {id}"),
            NetError::NoSuchConn(id) => {
                write!(f, "no such connection {id} (stale or torn down)")
            }
            NetError::Partitioned(a, b) => {
                write!(f, "hosts {a:?} and {b:?} are partitioned")
            }
            NetError::NotEstablished(id) => write!(f, "connection {id} is not established"),
            NetError::NoMatchingFlow(src, dst) => {
                write!(f, "no flow matches {src} -> {dst}")
            }
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::NoSuchHost(h) => write!(f, "no such host {h:?}"),
            NetError::DnsOutage(d) => write!(f, "dns outage resolving '{d}'"),
            NetError::NoRoute(a, b) => {
                write!(f, "no route between {a:?} and {b:?}")
            }
            NetError::FirewallDenied(a) => write!(f, "firewall denied traffic to {a}"),
            NetError::NatExpired(a) => {
                write!(f, "nat binding for {a} expired (conntrack flushed)")
            }
        }
    }
}

impl std::error::Error for NetError {}
