#![warn(missing_docs)]
//! Simulated internet for the TinMan reproduction.
//!
//! The paper's prototype sends real packets: apps on the phone open TCP
//! connections to web servers, an `iptables` rule captures packets whose SSL
//! record carries TinMan's mark and redirects them to the trusted node, and
//! the node forwards reframed packets whose TCP header still names the
//! phone as the source. This crate rebuilds those moving parts as a
//! deterministic, single-threaded simulation:
//!
//! * [`tcp`] — a sans-io userspace TCP: SYN/SYN-ACK/ACK handshake,
//!   sequence/acknowledgement tracking, segmentation, out-of-order
//!   reassembly, FIN teardown. Pure state machine, fully property-testable.
//! * [`world`] — the [`NetWorld`]: hosts with [`LinkProfile`]s, DNS-style
//!   naming, synchronous segment routing that advances the shared
//!   [`SimClock`], per-host traffic counters (the radio-energy input),
//!   server applications, and the egress [`filter`] with its redirect queue
//!   (the `iptables` stand-in that makes TCP payload replacement possible).
//! * [`filter`] — the egress-filter hook and actions.
//! * [`chaos`] — deterministic wire-fault injection ([`NetChaos`]): packet
//!   loss/corruption modeled as retransmissions, extra delay, radio flap
//!   windows, and hard host partitions.
//! * [`topology`] — the routed layer grown over the flat world: subnets,
//!   routers with firewall rules and outage windows, NAT connection
//!   tracking, TTL'd DNS with injectable outages, and mid-session
//!   mobility handoffs. Entirely opt-in: a world that never calls a
//!   topology method behaves byte-identically to the flat original.
//!
//! [`LinkProfile`]: tinman_sim::LinkProfile
//! [`SimClock`]: tinman_sim::SimClock

pub mod addr;
pub mod chaos;
pub mod error;
pub mod filter;
pub mod tcp;
pub mod topology;
pub mod world;

pub use addr::{Addr, HostId};
pub use chaos::{NetChaos, NetChaosStats};
pub use error::NetError;
pub use filter::{EgressFilter, FilterAction, MarkFilter};
pub use tcp::{Segment, TcpConn, TcpState};
pub use topology::{Handoff, Router, RouterId, SubnetId, TopologyConfig, TopologyStats};
pub use world::{ConnId, NetWorld, ServerApp, ServerReply, Traffic};
