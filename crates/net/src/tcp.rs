//! A sans-io userspace TCP.
//!
//! [`TcpConn`] is a pure state machine: it consumes [`Segment`]s and emits
//! [`Segment`]s, never touching a clock or a wire. The [`crate::world`]
//! module drives it against the simulated internet; the unit and property
//! tests drive it directly, including under reordering and duplication.
//!
//! Faithfulness matters only where TinMan's payload replacement depends on
//! it: real sequence/acknowledgement arithmetic (so a payload-swapped
//! segment with an unchanged header remains in-sequence), segmentation at an
//! MSS, out-of-order reassembly, and an explicit handshake. Congestion
//! control, timers, and window management are out of scope — the simulated
//! network models bandwidth at the link layer instead.

use serde::{Deserialize, Serialize};

use crate::addr::Addr;

/// Maximum payload bytes per segment.
pub const MSS: usize = 1400;

/// TCP header flags (the subset the simulation uses).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpFlags {
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// Sender has finished sending.
    pub fin: bool,
    /// Connection reset.
    pub rst: bool,
}

impl TcpFlags {
    /// A SYN.
    pub const SYN: TcpFlags = TcpFlags { syn: true, ack: false, fin: false, rst: false };
    /// A SYN-ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags { syn: true, ack: true, fin: false, rst: false };
    /// A bare ACK.
    pub const ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: false, rst: false };
    /// A FIN-ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: true, rst: false };
    /// A reset.
    pub const RST: TcpFlags = TcpFlags { syn: false, ack: false, fin: false, rst: true };
}

/// One TCP segment. The simulated analogue of an IP packet: TinMan's packet
/// filter inspects these, and its payload replacement rewrites `payload`
/// while leaving every header field untouched.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Source endpoint (as named in the header — under payload replacement
    /// this stays the client even though the trusted node transmits it).
    pub src: Addr,
    /// Destination endpoint.
    pub dst: Addr,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgement number (valid when `flags.ack`).
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Segment {
    /// Total simulated wire size: payload plus a 40-byte TCP/IP header.
    pub fn wire_bytes(&self) -> u64 {
        self.payload.len() as u64 + 40
    }

    /// True if this segment carries application data.
    pub fn has_data(&self) -> bool {
        !self.payload.is_empty()
    }
}

/// Connection lifecycle states (simplified).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Active open sent, awaiting SYN-ACK.
    SynSent,
    /// Passive open received SYN, sent SYN-ACK.
    SynRcvd,
    /// Data may flow.
    Established,
    /// We sent FIN, awaiting peer FIN/ACK.
    FinWait,
    /// Peer sent FIN; we may still flush then close.
    CloseWait,
}

/// One endpoint of a TCP connection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TcpConn {
    /// Our address.
    pub local: Addr,
    /// Peer address.
    pub remote: Addr,
    /// Connection state.
    pub state: TcpState,
    /// Next sequence number we will send.
    snd_nxt: u32,
    /// Next sequence number we expect from the peer.
    rcv_nxt: u32,
    /// Bytes received in order, not yet read by the application.
    recv_buf: Vec<u8>,
    /// Out-of-order segments awaiting the gap to fill: (seq, payload).
    reasm: Vec<(u32, Vec<u8>)>,
    /// True once the peer's FIN has been consumed.
    peer_closed: bool,
}

impl TcpConn {
    /// Creates a client connection and the opening SYN.
    pub fn connect(local: Addr, remote: Addr, isn: u32) -> (TcpConn, Segment) {
        let conn = TcpConn {
            local,
            remote,
            state: TcpState::SynSent,
            snd_nxt: isn.wrapping_add(1), // SYN consumes one sequence number
            rcv_nxt: 0,
            recv_buf: Vec::new(),
            reasm: Vec::new(),
            peer_closed: false,
        };
        let syn = Segment {
            src: local,
            dst: remote,
            seq: isn,
            ack: 0,
            flags: TcpFlags::SYN,
            payload: Vec::new(),
        };
        (conn, syn)
    }

    /// Creates a server connection from a received SYN and the SYN-ACK to
    /// send back.
    pub fn accept(local: Addr, syn: &Segment, isn: u32) -> (TcpConn, Segment) {
        let conn = TcpConn {
            local,
            remote: syn.src,
            state: TcpState::SynRcvd,
            snd_nxt: isn.wrapping_add(1),
            rcv_nxt: syn.seq.wrapping_add(1),
            recv_buf: Vec::new(),
            reasm: Vec::new(),
            peer_closed: false,
        };
        let syn_ack = Segment {
            src: local,
            dst: syn.src,
            seq: isn,
            ack: conn.rcv_nxt,
            flags: TcpFlags::SYN_ACK,
            payload: Vec::new(),
        };
        (conn, syn_ack)
    }

    /// Next sequence number this side will use (exposed for payload
    /// replacement diagnostics).
    pub fn snd_nxt(&self) -> u32 {
        self.snd_nxt
    }

    /// Next sequence number expected from the peer.
    pub fn rcv_nxt(&self) -> u32 {
        self.rcv_nxt
    }

    /// True if the peer has closed and all data was drained.
    pub fn is_drained(&self) -> bool {
        self.peer_closed && self.recv_buf.is_empty()
    }

    /// Segments `data` into MSS-sized data segments and advances `snd_nxt`.
    pub fn send(&mut self, data: &[u8]) -> Vec<Segment> {
        debug_assert!(
            matches!(self.state, TcpState::Established | TcpState::CloseWait),
            "send on a non-established connection"
        );
        let mut out = Vec::new();
        for chunk in data.chunks(MSS.max(1)) {
            let seg = Segment {
                src: self.local,
                dst: self.remote,
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags: TcpFlags::ACK,
                payload: chunk.to_vec(),
            };
            self.snd_nxt = self.snd_nxt.wrapping_add(chunk.len() as u32);
            out.push(seg);
        }
        out
    }

    /// Initiates close; returns the FIN segment.
    pub fn close(&mut self) -> Segment {
        let fin = Segment {
            src: self.local,
            dst: self.remote,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            flags: TcpFlags::FIN_ACK,
            payload: Vec::new(),
        };
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        self.state = match self.state {
            TcpState::CloseWait => TcpState::Closed,
            _ => TcpState::FinWait,
        };
        fin
    }

    /// Consumes an incoming segment; returns any segments to send in
    /// response (ACKs, nothing for duplicates).
    pub fn on_segment(&mut self, seg: &Segment) -> Vec<Segment> {
        let mut out = Vec::new();
        if seg.flags.rst {
            self.state = TcpState::Closed;
            return out;
        }
        match self.state {
            TcpState::SynSent if seg.flags.syn && seg.flags.ack => {
                self.rcv_nxt = seg.seq.wrapping_add(1);
                self.state = TcpState::Established;
                out.push(self.bare_ack());
            }
            TcpState::SynRcvd if seg.flags.ack && !seg.flags.syn => {
                self.state = TcpState::Established;
                // Fall through to data handling for piggybacked payloads.
                if seg.has_data() || seg.flags.fin {
                    out.extend(self.ingest(seg));
                }
            }
            TcpState::Established | TcpState::FinWait | TcpState::CloseWait => {
                if seg.flags.syn {
                    // Duplicate SYN-ACK of an established flow: re-ACK.
                    out.push(self.bare_ack());
                } else {
                    out.extend(self.ingest(seg));
                }
            }
            _ => {}
        }
        out
    }

    /// Handles data/FIN for an established-ish connection.
    fn ingest(&mut self, seg: &Segment) -> Vec<Segment> {
        let mut out = Vec::new();
        if seg.has_data() {
            let offset = seg.seq.wrapping_sub(self.rcv_nxt);
            if offset == 0 {
                // In order: deliver, then drain any reassembly that now
                // fits.
                self.recv_buf.extend_from_slice(&seg.payload);
                self.rcv_nxt = self.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                self.drain_reasm();
                out.push(self.bare_ack());
            } else if (offset as i32) < 0 {
                // Entirely duplicate data: re-ACK so the peer advances.
                out.push(self.bare_ack());
            } else {
                // Out of order: hold for reassembly (dedup by seq).
                if !self.reasm.iter().any(|(s, _)| *s == seg.seq) {
                    self.reasm.push((seg.seq, seg.payload.clone()));
                }
                out.push(self.bare_ack());
            }
        }
        if seg.flags.fin {
            let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            if fin_seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.peer_closed = true;
                self.state = match self.state {
                    TcpState::FinWait => TcpState::Closed,
                    _ => TcpState::CloseWait,
                };
                out.push(self.bare_ack());
            }
        }
        out
    }

    fn drain_reasm(&mut self) {
        while let Some(pos) = self.reasm.iter().position(|(s, _)| *s == self.rcv_nxt) {
            let (_, payload) = self.reasm.swap_remove(pos);
            self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
            self.recv_buf.extend_from_slice(&payload);
        }
    }

    fn bare_ack(&self) -> Segment {
        Segment {
            src: self.local,
            dst: self.remote,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            flags: TcpFlags::ACK,
            payload: Vec::new(),
        }
    }

    /// Takes all application bytes received so far.
    pub fn read_available(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.recv_buf)
    }

    /// Peeks the receive buffer without consuming.
    pub fn peek_available(&self) -> &[u8] {
        &self.recv_buf
    }

    /// Exposes the receive buffer contents for the residue scanner — the
    /// paper lists socket buffers among the places plaintext lingers
    /// (the paper's §1 cites prior residue studies).
    pub fn scan_buffer(&self, needle: &[u8]) -> bool {
        !needle.is_empty() && self.recv_buf.windows(needle.len()).any(|w| w == needle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::HostId;

    fn pair() -> (TcpConn, TcpConn) {
        let c_addr = Addr::new(HostId(1), 40000);
        let s_addr = Addr::new(HostId(2), 443);
        let (mut client, syn) = TcpConn::connect(c_addr, s_addr, 1000);
        let (mut server, syn_ack) = TcpConn::accept(s_addr, &syn, 9000);
        let acks = client.on_segment(&syn_ack);
        assert_eq!(client.state, TcpState::Established);
        for a in &acks {
            server.on_segment(a);
        }
        assert_eq!(server.state, TcpState::Established);
        (client, server)
    }

    /// Delivers `segs` to `dst`, recursively delivering responses to `src`.
    fn deliver(segs: Vec<Segment>, dst: &mut TcpConn, src: &mut TcpConn) {
        for seg in segs {
            let replies = dst.on_segment(&seg);
            for r in replies {
                let back = src.on_segment(&r);
                assert!(back.is_empty(), "ACK storms must settle");
            }
        }
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let (c, s) = pair();
        assert_eq!(c.state, TcpState::Established);
        assert_eq!(s.state, TcpState::Established);
        assert_eq!(c.rcv_nxt(), 9001);
        assert_eq!(s.rcv_nxt(), 1001);
    }

    #[test]
    fn data_flows_in_order() {
        let (mut c, mut s) = pair();
        let segs = c.send(b"hello world");
        assert_eq!(segs.len(), 1);
        deliver(segs, &mut s, &mut c);
        assert_eq!(s.read_available(), b"hello world");
        let reply = s.send(b"ok");
        deliver(reply, &mut c, &mut s);
        assert_eq!(c.read_available(), b"ok");
    }

    #[test]
    fn large_payload_segments_at_mss() {
        let (mut c, mut s) = pair();
        let data = vec![7u8; MSS * 3 + 100];
        let segs = c.send(&data);
        assert_eq!(segs.len(), 4);
        assert!(segs[..3].iter().all(|x| x.payload.len() == MSS));
        assert_eq!(segs[3].payload.len(), 100);
        deliver(segs, &mut s, &mut c);
        assert_eq!(s.read_available(), data);
    }

    #[test]
    fn out_of_order_delivery_reassembles() {
        let (mut c, mut s) = pair();
        let data = vec![1u8; MSS * 3];
        let mut segs = c.send(&data);
        segs.reverse(); // worst-case reordering
        deliver(segs, &mut s, &mut c);
        assert_eq!(s.read_available(), data);
    }

    #[test]
    fn duplicate_segments_are_idempotent() {
        let (mut c, mut s) = pair();
        let segs = c.send(b"once");
        deliver(segs.clone(), &mut s, &mut c);
        deliver(segs, &mut s, &mut c);
        assert_eq!(s.read_available(), b"once");
    }

    #[test]
    fn close_handshake_both_sides_reach_closed() {
        let (mut c, mut s) = pair();
        let fin = c.close();
        assert_eq!(c.state, TcpState::FinWait);
        deliver(vec![fin], &mut s, &mut c);
        assert_eq!(s.state, TcpState::CloseWait);
        let fin2 = s.close();
        deliver(vec![fin2], &mut c, &mut s);
        assert_eq!(c.state, TcpState::Closed);
        assert_eq!(s.state, TcpState::Closed);
        assert!(c.is_drained());
    }

    #[test]
    fn payload_replacement_preserves_flow_validity() {
        // The core TinMan TCP trick: swapping a payload of EQUAL LENGTH
        // under an unchanged header must be invisible to the receiver.
        let (mut c, mut s) = pair();
        let mut segs = c.send(b"placeholder-PLACEHOLDER-bytes!");
        assert_eq!(segs.len(), 1);
        // The "trusted node" swaps the payload (same length).
        let real = b"realsecret-0123456789-payload!";
        assert_eq!(segs[0].payload.len(), real.len());
        segs[0].payload = real.to_vec();
        deliver(segs, &mut s, &mut c);
        assert_eq!(s.read_available(), real);
        // And the flow continues normally afterwards.
        let more = c.send(b"after");
        deliver(more, &mut s, &mut c);
        assert_eq!(s.read_available(), b"after");
    }

    #[test]
    fn rst_closes_immediately() {
        let (mut c, _s) = pair();
        let rst = Segment {
            src: c.remote,
            dst: c.local,
            seq: 0,
            ack: 0,
            flags: TcpFlags::RST,
            payload: Vec::new(),
        };
        c.on_segment(&rst);
        assert_eq!(c.state, TcpState::Closed);
    }

    #[test]
    fn buffer_scan_finds_residue() {
        let (mut c, mut s) = pair();
        let segs = c.send(b"contains hunter2 secret");
        deliver(segs, &mut s, &mut c);
        assert!(s.scan_buffer(b"hunter2"));
        s.read_available();
        assert!(!s.scan_buffer(b"hunter2"));
        assert!(!s.scan_buffer(b""));
    }

    #[test]
    fn wire_bytes_include_header() {
        let seg = Segment {
            src: Addr::new(HostId(1), 1),
            dst: Addr::new(HostId(2), 2),
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            payload: vec![0; 100],
        };
        assert_eq!(seg.wire_bytes(), 140);
    }
}
