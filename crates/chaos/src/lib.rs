#![warn(missing_docs)]
//! Deterministic fault injection and recovery primitives.
//!
//! TinMan's security argument is only as strong as its failure behaviour:
//! cor never exists on the device, so every failure of the trusted-node
//! path must fail *closed* — the placeholder stays a placeholder, the
//! session degrades or retries, and plaintext never appears as a
//! consolation prize. This crate provides the pieces the fleet layer uses
//! to prove that under injected faults:
//!
//! * [`plan`] — the [`ChaosPlan`]: a validated, seeded schedule of
//!   [`ChaosEvent`]s (node crash/recover, link flap, packet
//!   loss/corruption/delay, host partitions, DSM sync timeouts) on two
//!   time axes: within-session sim-time offsets and the fleet's session-id
//!   axis. [`session_faults`] projects a plan onto one (node, session)
//!   pair as plain data the executor applies to a hermetic session world.
//! * [`breaker`] — a per-node [`CircuitBreaker`]
//!   (Closed → Open → HalfOpen) and the [`BreakerSchedule`], a pure replay
//!   of the breaker over the session-id axis so placement decisions are
//!   deterministic and independent of worker interleaving.
//! * [`replay`] — the [`DeliveryLedger`] enforcing exactly-once TCP
//!   payload replacement toward the origin server across session replays.
//!
//! Everything here is a pure function of the plan and its seeds; the crate
//! depends only on `tinman-sim`. The net/dsm layers own their fault hooks
//! (`NetChaos`, `SyncFault`); the fleet layer translates a plan into those
//! hooks and runs the recovery loop.

pub mod breaker;
pub mod plan;
pub mod replay;

pub use breaker::{BreakerSchedule, BreakerState, CircuitBreaker};
pub use plan::{
    session_faults, tenant_faults, ChaosEvent, ChaosPlan, ChaosPlanError, HandoffSpec,
    HostileGuestKind, SessionFaults, TenantFaults, VaultCrashKind,
};
pub use replay::DeliveryLedger;
