//! Chaos plans: validated, seeded fault schedules.
//!
//! A plan speaks two time axes. *Within-session* offsets ([`SimDuration`])
//! are interpreted on each session's own hermetic clock (every session sim
//! starts at `SimTime::ZERO`): a crash "at 600 ms" hits every affected
//! session 600 ms into its run. The *fleet* axis is the session-id order
//! (`from_session`/`until_session`): a crash "from session 3" means
//! sessions 0–2 saw a healthy node and later ones hit the outage — this is
//! what drives the circuit breaker's deterministic history.

use std::fmt;

use tinman_sim::{SimDuration, SplitMix64};

/// Which durability fault a [`ChaosEvent::VaultCrash`] injects into the
/// node's cor vault. All three leave artifacts recovery must handle:
/// uncommitted work lost, a torn final write, or a half-finished
/// snapshot publish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VaultCrashKind {
    /// Power cut between `append` and the commit barrier: the staged
    /// frame is lost and the previous frame lands duplicated (the retry
    /// path re-sent it), exercising the idempotent LSN apply.
    MidCommit,
    /// Power cut mid-append: the final WAL write lands as a prefix and
    /// recovery must truncate it away.
    TornTail,
    /// Power cut inside snapshot+truncate compaction, at a seeded point
    /// in the publish protocol.
    Compaction,
}

impl VaultCrashKind {
    /// Stable lowercase name (obs labels, report rows).
    pub fn as_str(self) -> &'static str {
        match self {
            VaultCrashKind::MidCommit => "mid_commit",
            VaultCrashKind::TornTail => "torn_tail",
            VaultCrashKind::Compaction => "compaction",
        }
    }
}

/// Which resource-exhaustion attack a hostile guest mounts against the
/// trusted node that agreed to run it. Each kind is engineered to exhaust
/// exactly one [budget] axis, so a kill's reported reason is a meaningful
/// assertion target rather than "whichever limit tripped first".
///
/// [budget]: https://en.wikipedia.org/wiki/Resource_exhaustion_attack
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostileGuestKind {
    /// A post-offload busy loop that keeps touching tainted data so
    /// taint-idle migrate-back never fires: burns node fuel forever.
    Spin,
    /// Repeated doubling of a tainted string: exhausts the heap byte
    /// quota long before fuel runs low.
    HeapBomb,
    /// Unbounded recursion with a tainted argument pinning every frame
    /// to the node: trips the call-depth limit.
    DeepRecursion,
    /// A loop engineered to bounce state between client and node on
    /// every iteration: floods the DSM sync budget.
    SyncFlood,
}

impl HostileGuestKind {
    /// Stable lowercase name (obs labels, report rows).
    pub fn as_str(self) -> &'static str {
        match self {
            HostileGuestKind::Spin => "spin",
            HostileGuestKind::HeapBomb => "heap_bomb",
            HostileGuestKind::DeepRecursion => "deep_recursion",
            HostileGuestKind::SyncFlood => "sync_flood",
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Node `node` stops answering DSM syncs `at` into each affected
    /// session, for every session id ≥ `from_session` (until a matching
    /// [`ChaosEvent::NodeRecover`]).
    NodeCrash {
        /// Pool index of the crashed node.
        node: usize,
        /// Within-session offset at which syncs start timing out.
        at: SimDuration,
        /// First session id that observes the crash.
        from_session: u64,
    },
    /// Node `node` answers again for session ids ≥ `from_session`.
    NodeRecover {
        /// Pool index of the recovering node.
        node: usize,
        /// First session id that observes the recovery.
        from_session: u64,
    },
    /// Radio outage window `[from, until)` on every session's timeline:
    /// transfers that start inside it stall until it closes.
    LinkFlap {
        /// Window start (within-session offset).
        from: SimDuration,
        /// Window end (within-session offset).
        until: SimDuration,
    },
    /// Percent (0–100) of data segments lost and retransmitted.
    PacketLoss {
        /// Loss probability in percent.
        pct: u8,
    },
    /// Percent (0–100) of data segments corrupted and retransmitted.
    PacketCorrupt {
        /// Corruption probability in percent.
        pct: u8,
    },
    /// Extra one-way delay on every data segment.
    PacketDelay {
        /// The added delay.
        delay: SimDuration,
    },
    /// Node `node` is unreachable from the phone for session ids in
    /// `[from_session, until_session)`. Marked segments diverted toward it
    /// die on the wire (fail-closed by construction).
    Partition {
        /// Pool index of the unreachable node.
        node: usize,
        /// First session id that observes the partition.
        from_session: u64,
        /// First session id that no longer observes it.
        until_session: u64,
    },
    /// DSM syncs against `node` time out inside `[from, until)` on every
    /// affected session's timeline (transient stall rather than a crash).
    SyncTimeout {
        /// Pool index of the stalling node.
        node: usize,
        /// Window start (within-session offset).
        from: SimDuration,
        /// Window end (within-session offset).
        until: SimDuration,
    },
    /// Node `node`'s cor vault crashes (power-cut model) after the
    /// session's cor writes, for session ids in
    /// `[from_session, until_session)`. The session's durability audit
    /// injects the crash, recovers, and must reproduce the committed
    /// store exactly — any divergence is a lost-cor incident.
    VaultCrash {
        /// Pool index of the node whose vault crashes.
        node: usize,
        /// Which crash artifact to leave behind.
        kind: VaultCrashKind,
        /// First session id that observes the crash.
        from_session: u64,
        /// First session id that no longer observes it.
        until_session: u64,
    },
    /// Replication to node `node`'s failover replica lags by `lsns`
    /// records for session ids in `[from_session, until_session)`.
    /// Cor-aware failover must anti-entropy the replica up (charged
    /// against the session's penalty deadline) or fail the session
    /// closed — never serve from the stale store.
    ReplicaLag {
        /// Pool index of the node whose replica lags.
        node: usize,
        /// How many LSNs the replica's watermark trails the primary.
        lsns: u64,
        /// First session id that observes the lag.
        from_session: u64,
        /// First session id that no longer observes it.
        until_session: u64,
    },
    /// Sessions in `[from_session, until_session)` run a hostile app
    /// instead of their scripted one. Unlike node faults, the attack
    /// travels with the *session* — whichever node admits it gets
    /// attacked — so there is no node index. When several windows cover
    /// the same session, the matching kinds alternate by session id, so
    /// four full-width events exercise every kind over any session count.
    HostileGuest {
        /// Which exhaustion attack the guest mounts.
        kind: HostileGuestKind,
        /// First hostile session id.
        from_session: u64,
        /// First session id that runs its scripted app again.
        until_session: u64,
    },
    /// Tenant `tenant`'s key hierarchy rotates to the next epoch inside
    /// the window. Like [`ChaosEvent::HostileGuest`], the fault travels
    /// with the *session* (a tenant's keys rotate fleet-wide, not on one
    /// node), so there is no node index. The rotation fires at the
    /// tenant's first session id ≥ `from_session`; that session pays the
    /// re-encryption cost or fails closed, and every later session of
    /// the tenant seals under the new epoch — the old epoch is revoked.
    TenantKeyRotation {
        /// Raw tenant number whose keys rotate.
        tenant: u64,
        /// First session id at which the rotation may fire.
        from_session: u64,
        /// First session id past the rotation window.
        until_session: u64,
    },
    /// Every router in each affected session's routed topology is down
    /// inside `[from, until)` on the session's own timeline: cross-subnet
    /// traffic (phone → server, phone → node control plane) fails closed
    /// with `NoRoute` until the window lifts. A no-op for flat worlds.
    RouterCrash {
        /// Window start (within-session offset).
        from: SimDuration,
        /// Window end (within-session offset).
        until: SimDuration,
    },
    /// The NAT gateway's connection-tracking table is flushed `at` into
    /// each affected session: every established flow's binding vanishes,
    /// and the next segment on an old flow fails closed (`NatExpired`)
    /// until the session reconnects. A no-op for worlds without NAT.
    NatTableFlush {
        /// Within-session offset of the flush.
        at: SimDuration,
    },
    /// The DNS resolver is dark inside `[from, until)` on each affected
    /// session's timeline: cold names fail closed, cached records keep
    /// serving until their TTL expires. A no-op for flat worlds (flat
    /// lookup is a host-directory read, not a resolver query).
    DnsOutage {
        /// Window start (within-session offset).
        from: SimDuration,
        /// Window end (within-session offset).
        until: SimDuration,
        /// Session-axis slice `[from_session, until_session)` the outage
        /// applies to (like `Partition`): sessions outside it resolve
        /// normally, sessions inside meet the dead resolver and must
        /// fail closed if the window covers their lookup.
        from_session: u64,
        /// End of the session-axis slice (exclusive).
        until_session: u64,
    },
    /// Mid-session mobility: the phone hands off between Wi-Fi and 3G
    /// `count` times, every `every`, each with a radio blackout of
    /// `blackout` and a NAT rebind. Handoff `i` (1-based) lands at
    /// `every * i`; odd handoffs move to 3G, even ones back to Wi-Fi.
    HandoffStorm {
        /// How many handoffs the storm schedules.
        count: u32,
        /// Spacing between consecutive handoffs.
        every: SimDuration,
        /// Radio blackout charged at each handoff.
        blackout: SimDuration,
    },
    /// Like [`ChaosEvent::TenantKeyRotation`], but the rotation is an
    /// emergency response to a suspected key compromise: if the rotating
    /// session cannot afford the re-encryption inside its deadline it
    /// must fail closed (reason `revoked_key`) — serving under the
    /// suspect epoch is never an option.
    TenantKeyCompromise {
        /// Raw tenant number whose keys are suspect.
        tenant: u64,
        /// First session id at which the forced rotation may fire.
        from_session: u64,
        /// First session id past the rotation window.
        until_session: u64,
    },
    /// Node `node` is *Draining* for session ids in
    /// `[from_session, until_session)`: a planned membership change (the
    /// operator is taking the node out for maintenance). Unlike a crash,
    /// a draining node still *admits* sessions — but checkpoints them at
    /// the first DSM sync point and hands the serialized guest to an
    /// attested peer, scrubbing its own heap. After the window the node
    /// is *Evacuated* and admits nothing.
    NodeDrain {
        /// Pool index of the draining node.
        node: usize,
        /// First session id that observes the drain.
        from_session: u64,
        /// First session id that observes the node evacuated.
        until_session: u64,
    },
    /// Every node in region `region` dies for session ids in
    /// `[from_session, until_session)`: sessions in flight on the region
    /// when the window opens are checkpointed and must migrate to an
    /// attested peer *region* (or fail closed, reason `no_region`);
    /// sessions placed inside the window skip the region entirely. After
    /// the window the region's nodes rejoin as *CatchingUp* — they must
    /// reach the acked vault watermark before serving again.
    RegionOutage {
        /// Region index (checked against the fleet's region count at
        /// membership-schedule build, not here — the plan does not know
        /// how many regions the fleet runs).
        region: u32,
        /// First session id that observes the outage.
        from_session: u64,
        /// First session id at which the region begins catching up.
        until_session: u64,
    },
    /// A rolling upgrade: starting at `from_session`, node 0 drains for
    /// `wave_sessions` session ids, then node 1, then node 2, … one node
    /// per wave, so the fleet is never more than one node short. Each
    /// drained node rejoins as *CatchingUp* when its wave ends and is
    /// serving again one wave later.
    RollingUpgrade {
        /// Session ids each node's drain wave lasts.
        wave_sessions: u64,
        /// First session id of node 0's wave.
        from_session: u64,
    },
    /// Node `node` flaps: alternating *Down* and rejoining windows of
    /// `period_sessions` session ids each, inside
    /// `[from_session, until_session)`. The first period is Down; each
    /// rejoin period starts *CatchingUp* — a flapping node that never
    /// catches up before its next outage must never serve, no matter how
    /// often it waves hello.
    RejoinFlap {
        /// Pool index of the flapping node.
        node: usize,
        /// Session ids per half-cycle (down, then catching up/serving).
        period_sessions: u64,
        /// First session id of the first Down period.
        from_session: u64,
        /// First session id at which the node is stably back.
        until_session: u64,
    },
}

/// A plan that failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosPlanError {
    /// An event referenced a node index outside the pool.
    BadNode {
        /// The offending index.
        node: usize,
        /// The pool size it was checked against.
        pool_len: usize,
    },
    /// A percentage was above 100.
    BadPercent {
        /// The offending value.
        pct: u8,
    },
    /// A window's end was not after its start.
    EmptyWindow,
    /// `trip_after` or `probe_every` was zero.
    BadBreakerConfig,
    /// A [`ChaosEvent::ReplicaLag`] with `lsns == 0` — a no-op lag is a
    /// plan bug, not a fault.
    ZeroLag,
    /// A [`ChaosEvent::HandoffStorm`] with `count == 0` or
    /// `every == 0` — a storm that never moves is a plan bug.
    BadHandoffStorm,
    /// A membership event with a degenerate schedule: a
    /// [`ChaosEvent::RollingUpgrade`] wave or [`ChaosEvent::RejoinFlap`]
    /// period of zero sessions.
    BadMembership,
}

impl fmt::Display for ChaosPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosPlanError::BadNode { node, pool_len } => {
                write!(f, "chaos event references node {node}, but the pool has {pool_len} nodes")
            }
            ChaosPlanError::BadPercent { pct } => {
                write!(f, "chaos percentage {pct} is above 100")
            }
            ChaosPlanError::EmptyWindow => write!(f, "chaos window end is not after its start"),
            ChaosPlanError::BadBreakerConfig => {
                write!(f, "breaker trip_after and probe_every must be nonzero")
            }
            ChaosPlanError::ZeroLag => write!(f, "replica lag of zero LSNs is not a fault"),
            ChaosPlanError::BadHandoffStorm => {
                write!(f, "handoff storm count and spacing must be nonzero")
            }
            ChaosPlanError::BadMembership => {
                write!(f, "membership wave and flap period must be nonzero sessions")
            }
        }
    }
}

impl std::error::Error for ChaosPlanError {}

/// A complete fault schedule plus recovery policy for one fleet run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed of every dice stream the plan spawns (packet loss/corruption).
    pub seed: u64,
    /// Per-session budget of *penalty* time (failed attempts + backoff).
    /// A session whose accumulated penalty exceeds this fails closed
    /// instead of retrying further.
    pub deadline: SimDuration,
    /// Consecutive failures before a node's breaker opens.
    pub trip_after: u64,
    /// While Open, every `probe_every`-th placement becomes a HalfOpen
    /// probe instead of a fast skip.
    pub probe_every: u64,
    /// The scheduled faults.
    pub events: Vec<ChaosEvent>,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            seed: 0xc4a0_5bad_c0ff_ee00,
            deadline: SimDuration::from_secs(60),
            trip_after: 3,
            probe_every: 4,
            events: Vec::new(),
        }
    }
}

impl ChaosPlan {
    /// An empty plan (no faults, default recovery policy) — the chaos
    /// executor under an empty plan must reproduce a fault-free run.
    pub fn empty() -> Self {
        ChaosPlan::default()
    }

    /// Checks every event against a pool of `pool_len` nodes. Mirrors the
    /// `FaultPlan` index validation: a plan naming a nonexistent node is a
    /// configuration bug, not something to silently ignore.
    pub fn validate(&self, pool_len: usize) -> Result<(), ChaosPlanError> {
        if self.trip_after == 0 || self.probe_every == 0 {
            return Err(ChaosPlanError::BadBreakerConfig);
        }
        for ev in &self.events {
            let node = match *ev {
                ChaosEvent::NodeCrash { node, .. }
                | ChaosEvent::NodeRecover { node, .. }
                | ChaosEvent::Partition { node, .. }
                | ChaosEvent::SyncTimeout { node, .. }
                | ChaosEvent::VaultCrash { node, .. }
                | ChaosEvent::ReplicaLag { node, .. }
                | ChaosEvent::NodeDrain { node, .. }
                | ChaosEvent::RejoinFlap { node, .. } => Some(node),
                _ => None,
            };
            if let Some(node) = node {
                if node >= pool_len {
                    return Err(ChaosPlanError::BadNode { node, pool_len });
                }
            }
            match *ev {
                ChaosEvent::PacketLoss { pct } | ChaosEvent::PacketCorrupt { pct } if pct > 100 => {
                    return Err(ChaosPlanError::BadPercent { pct });
                }
                ChaosEvent::LinkFlap { from, until } if until <= from => {
                    return Err(ChaosPlanError::EmptyWindow);
                }
                ChaosEvent::SyncTimeout { from, until, .. } if until <= from => {
                    return Err(ChaosPlanError::EmptyWindow);
                }
                ChaosEvent::RouterCrash { from, until }
                | ChaosEvent::DnsOutage { from, until, .. }
                    if until <= from =>
                {
                    return Err(ChaosPlanError::EmptyWindow);
                }
                ChaosEvent::HandoffStorm { count, every, .. }
                    if count == 0 || every == SimDuration::ZERO =>
                {
                    return Err(ChaosPlanError::BadHandoffStorm);
                }
                ChaosEvent::Partition { from_session, until_session, .. }
                | ChaosEvent::DnsOutage { from_session, until_session, .. }
                | ChaosEvent::VaultCrash { from_session, until_session, .. }
                | ChaosEvent::ReplicaLag { from_session, until_session, .. }
                | ChaosEvent::HostileGuest { from_session, until_session, .. }
                | ChaosEvent::TenantKeyRotation { from_session, until_session, .. }
                | ChaosEvent::TenantKeyCompromise { from_session, until_session, .. }
                | ChaosEvent::NodeDrain { from_session, until_session, .. }
                | ChaosEvent::RegionOutage { from_session, until_session, .. }
                | ChaosEvent::RejoinFlap { from_session, until_session, .. }
                    if until_session <= from_session =>
                {
                    return Err(ChaosPlanError::EmptyWindow);
                }
                ChaosEvent::ReplicaLag { lsns: 0, .. } => {
                    return Err(ChaosPlanError::ZeroLag);
                }
                ChaosEvent::RollingUpgrade { wave_sessions: 0, .. }
                | ChaosEvent::RejoinFlap { period_sessions: 0, .. } => {
                    return Err(ChaosPlanError::BadMembership);
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// A named, canned scenario. `None` for an unknown name; see
    /// [`ChaosPlan::canned_names`].
    pub fn canned(name: &str) -> Option<ChaosPlan> {
        let mut plan = ChaosPlan::default();
        match name {
            // The acceptance scenario: crash the primary mid-session with
            // 5% packet loss and one radio flap. Sessions placed on node 0
            // fail their first attempt partway through and succeed on a
            // replica via checkpoint/replay. The 900 ms offset lands after
            // a typical session's first TCP payload replacement, so the
            // replay re-sends it and the origin-side dedup has real work.
            "crash-primary" => {
                plan.events = vec![
                    ChaosEvent::NodeCrash {
                        node: 0,
                        at: SimDuration::from_millis(900),
                        from_session: 0,
                    },
                    ChaosEvent::PacketLoss { pct: 5 },
                    ChaosEvent::LinkFlap {
                        from: SimDuration::from_millis(200),
                        until: SimDuration::from_millis(350),
                    },
                ];
            }
            // Crash then recover on the session axis: exercises the full
            // breaker cycle (trip, fast skips, HalfOpen probes, reclose).
            "recovery" => {
                plan.trip_after = 2;
                plan.probe_every = 3;
                plan.events = vec![
                    ChaosEvent::NodeCrash { node: 0, at: SimDuration::ZERO, from_session: 0 },
                    ChaosEvent::NodeRecover { node: 0, from_session: 12 },
                ];
            }
            // Hard partition of the first four nodes: sessions whose whole
            // replica set is unreachable must fail closed.
            "partition" => {
                plan.events = (0..4)
                    .map(|node| ChaosEvent::Partition {
                        node,
                        from_session: 0,
                        until_session: u64::MAX,
                    })
                    .collect();
            }
            // Durability gauntlet: every vault crash artifact plus stale
            // replicas, layered over a node 0 crash so failover actually
            // happens while the vault is being tortured. Node 0 tears
            // mid-commit, node 1 tears its WAL tail, node 2 dies inside
            // compaction, node 3 tears its tail again; nodes 1 and 2
            // additionally ship to lagging replicas, so cor-aware
            // failover must anti-entropy before serving.
            "vault-crash" => {
                plan.events = vec![
                    ChaosEvent::NodeCrash {
                        node: 0,
                        at: SimDuration::from_millis(900),
                        from_session: 0,
                    },
                    ChaosEvent::VaultCrash {
                        node: 0,
                        kind: VaultCrashKind::MidCommit,
                        from_session: 0,
                        until_session: u64::MAX,
                    },
                    ChaosEvent::VaultCrash {
                        node: 1,
                        kind: VaultCrashKind::TornTail,
                        from_session: 0,
                        until_session: u64::MAX,
                    },
                    ChaosEvent::VaultCrash {
                        node: 2,
                        kind: VaultCrashKind::Compaction,
                        from_session: 0,
                        until_session: u64::MAX,
                    },
                    ChaosEvent::VaultCrash {
                        node: 3,
                        kind: VaultCrashKind::TornTail,
                        from_session: 4,
                        until_session: u64::MAX,
                    },
                    ChaosEvent::ReplicaLag {
                        node: 1,
                        lsns: 2,
                        from_session: 0,
                        until_session: u64::MAX,
                    },
                    ChaosEvent::ReplicaLag {
                        node: 2,
                        lsns: 1,
                        from_session: 2,
                        until_session: u64::MAX,
                    },
                ];
            }
            // The guard's acceptance scenario: every session is hostile,
            // cycling through all four exhaustion attacks by session id.
            // Every run must end in a deterministic kill with the right
            // reason, a scrubbed node heap, and an untouched pool.
            "hostile-guest" => {
                plan.events = [
                    HostileGuestKind::Spin,
                    HostileGuestKind::HeapBomb,
                    HostileGuestKind::DeepRecursion,
                    HostileGuestKind::SyncFlood,
                ]
                .into_iter()
                .map(|kind| ChaosEvent::HostileGuest {
                    kind,
                    from_session: 0,
                    until_session: u64::MAX,
                })
                .collect();
            }
            // The tenant subsystem's acceptance scenario: tenant 0's
            // keys rotate routinely mid-run, while tenant 1 suffers a
            // suspected compromise and must force-rotate. With two
            // tenants, tenant 0's rotation fires at session 4 and
            // tenant 1's at session 7 — both mid-run for the canonical
            // 12-session test fleet, so earlier sessions seal under
            // epoch 0 and later ones under epoch 1, never mixing.
            "tenant-rotation" => {
                plan.events = vec![
                    ChaosEvent::TenantKeyRotation {
                        tenant: 0,
                        from_session: 4,
                        until_session: u64::MAX,
                    },
                    ChaosEvent::TenantKeyCompromise {
                        tenant: 1,
                        from_session: 6,
                        until_session: u64::MAX,
                    },
                ];
            }
            // The mobility acceptance scenario: the phone hands off
            // Wi-Fi → 3G → Wi-Fi mid-session (the first switch lands
            // inside a typical session's offload window), each with a
            // 150 ms radio blackout and a NAT rebind. Requires the fleet
            // to run routed worlds (`topology`); sessions must complete
            // after bounded re-sync retries or fail closed.
            "handoff" => {
                plan.events = vec![ChaosEvent::HandoffStorm {
                    count: 2,
                    every: SimDuration::from_millis(700),
                    blackout: SimDuration::from_millis(150),
                }];
            }
            // The routed-internet gauntlet: a router outage window, a
            // conntrack flush, and a DNS brownout, layered so each
            // session crosses at least one of them. Established flows
            // must fail closed (`NatExpired`/`NoRoute`) and reconnect,
            // cached DNS records must keep serving through the brownout.
            "nat-traversal" => {
                plan.events = vec![
                    ChaosEvent::RouterCrash {
                        from: SimDuration::from_millis(250),
                        until: SimDuration::from_millis(400),
                    },
                    ChaosEvent::NatTableFlush { at: SimDuration::from_millis(2200) },
                    // One slice of the fleet meets a dead resolver at
                    // connect time and must fail closed; the rest
                    // resolve normally and exercise the NAT path.
                    ChaosEvent::DnsOutage {
                        from: SimDuration::ZERO,
                        until: SimDuration::from_millis(120),
                        from_session: 6,
                        until_session: 12,
                    },
                ];
            }
            // The region acceptance scenario: region 0 dies whole for the
            // middle of the run. Sessions in flight on region-0 nodes when
            // the outage opens are checkpointed mid-offload and must
            // migrate to an attested peer region (or fail closed, reason
            // `no_region`); sessions placed inside the window route
            // around the dead region. Node 1 (a peer-region node under
            // the canonical 2-region split) ships to a lagging replica,
            // so some migration targets must anti-entropy before serving
            // — the stale-replica refusal applies to migrated-in guests
            // exactly as to fresh placements. Requires region mode
            // (`regions >= 2`).
            "region-failover" => {
                // Session 6 is the first id homed in region 0 inside the
                // window (the region hash is a pure function of the id),
                // so the outage's opening session is genuinely in flight
                // on a region-0 node and must checkpoint-migrate.
                plan.events = vec![
                    ChaosEvent::RegionOutage { region: 0, from_session: 6, until_session: 12 },
                    ChaosEvent::ReplicaLag { node: 1, lsns: 2, from_session: 6, until_session: 12 },
                ];
            }
            // The rolling-upgrade acceptance scenario: one node drains
            // per three-session wave starting at session 2, so the fleet
            // is never more than one node short. Every wave forces live
            // migrations off the draining node; drained nodes rejoin
            // CatchingUp and must hit the acked vault watermark before
            // serving again.
            "rolling-upgrade" => {
                plan.events =
                    vec![ChaosEvent::RollingUpgrade { wave_sessions: 3, from_session: 2 }];
            }
            // A noisy but survivable wire: loss, corruption, and delay.
            "wire-noise" => {
                plan.events = vec![
                    ChaosEvent::PacketLoss { pct: 10 },
                    ChaosEvent::PacketCorrupt { pct: 5 },
                    ChaosEvent::PacketDelay { delay: SimDuration::from_millis(20) },
                ];
            }
            _ => return None,
        }
        Some(plan)
    }

    /// The names [`ChaosPlan::canned`] recognizes.
    pub fn canned_names() -> &'static [&'static str] {
        &[
            "crash-primary",
            "recovery",
            "partition",
            "wire-noise",
            "vault-crash",
            "hostile-guest",
            "tenant-rotation",
            "handoff",
            "nat-traversal",
            "region-failover",
            "rolling-upgrade",
        ]
    }

    /// The first session id at which `node` recovers (`u64::MAX` if it
    /// never does).
    fn recover_session(&self, node: usize) -> u64 {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                ChaosEvent::NodeRecover { node: n, from_session } if n == node => {
                    Some(from_session)
                }
                _ => None,
            })
            .min()
            .unwrap_or(u64::MAX)
    }

    /// The crash interval for `node` on the session axis:
    /// `(from_session, recover_session, within-session offset)`.
    pub fn crash_interval(&self, node: usize) -> Option<(u64, u64, SimDuration)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                ChaosEvent::NodeCrash { node: n, at, from_session } if n == node => {
                    Some((from_session, at))
                }
                _ => None,
            })
            .min()
            .map(|(from, at)| (from, self.recover_session(node).max(from), at))
    }
}

/// A plan projected onto one (node, session) pair: plain data the executor
/// translates into `NetChaos` + `SyncFault` for that session's hermetic
/// world.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionFaults {
    /// Within-session offset at which the node stops answering syncs
    /// (`None` = no crash for this session).
    pub crash: Option<SimDuration>,
    /// Transient DSM-timeout windows `[from, until)`.
    pub sync_windows: Vec<(SimDuration, SimDuration)>,
    /// Packet-loss percent (summed over events, capped at 100).
    pub loss_pct: u8,
    /// Packet-corruption percent (summed over events, capped at 100).
    pub corrupt_pct: u8,
    /// Extra one-way delay per data segment.
    pub delay: SimDuration,
    /// Radio flap window `[from, until)`.
    pub flap: Option<(SimDuration, SimDuration)>,
    /// True if the phone cannot reach this node at all.
    pub partitioned: bool,
    /// Vault crash injected into this session's durability audit
    /// (`None` = the vault survives this session).
    pub vault_crash: Option<VaultCrashKind>,
    /// LSNs the node's failover replica trails the primary by (0 = the
    /// replica's watermark covers everything).
    pub replica_lag: u64,
    /// The hostile app this session runs instead of its scripted one
    /// (`None` = the session is well behaved).
    pub hostile_guest: Option<HostileGuestKind>,
    /// Router outage windows `[from, until)` covering every router in
    /// the session's topology (empty or ignored for flat worlds).
    pub router_outages: Vec<(SimDuration, SimDuration)>,
    /// Within-session offsets at which the NAT conntrack table flushes.
    pub nat_flushes: Vec<SimDuration>,
    /// DNS resolver outage windows `[from, until)`.
    pub dns_outages: Vec<(SimDuration, SimDuration)>,
    /// Scheduled mobility handoffs, in firing order.
    pub handoffs: Vec<HandoffSpec>,
    /// Seed of this session's loss/corruption dice stream.
    pub dice_seed: u64,
}

/// One scheduled mobility handoff, as plain data (the executor maps
/// `to_3g` onto the concrete link profiles of its world).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HandoffSpec {
    /// Within-session offset at which the radio switches.
    pub at: SimDuration,
    /// Radio blackout charged at the switch.
    pub blackout: SimDuration,
    /// `true` = hand off to 3G, `false` = back to Wi-Fi.
    pub to_3g: bool,
}

/// Projects `plan` onto the session with id `session` (and per-session
/// seed `session_seed`) attempting node `node`. Pure: the same inputs
/// always produce the same faults, regardless of worker interleaving.
pub fn session_faults(
    plan: &ChaosPlan,
    node: usize,
    session: u64,
    session_seed: u64,
) -> SessionFaults {
    let mut f = SessionFaults {
        dice_seed: SplitMix64::new(
            plan.seed
                ^ session_seed.rotate_left(17)
                ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        )
        .next_u64(),
        ..SessionFaults::default()
    };
    if let Some((from, recover, at)) = plan.crash_interval(node) {
        if session >= from && session < recover {
            f.crash = Some(at);
        }
    }
    let mut hostile: Vec<HostileGuestKind> = Vec::new();
    for ev in &plan.events {
        match *ev {
            ChaosEvent::LinkFlap { from, until } => f.flap = Some((from, until)),
            ChaosEvent::PacketLoss { pct } => {
                f.loss_pct = f.loss_pct.saturating_add(pct).min(100);
            }
            ChaosEvent::PacketCorrupt { pct } => {
                f.corrupt_pct = f.corrupt_pct.saturating_add(pct).min(100);
            }
            ChaosEvent::PacketDelay { delay } => f.delay += delay,
            ChaosEvent::Partition { node: n, from_session, until_session }
                if n == node && session >= from_session && session < until_session =>
            {
                f.partitioned = true;
            }
            ChaosEvent::SyncTimeout { node: n, from, until } if n == node => {
                f.sync_windows.push((from, until));
            }
            ChaosEvent::VaultCrash { node: n, kind, from_session, until_session }
                if n == node && session >= from_session && session < until_session =>
            {
                f.vault_crash = Some(kind);
            }
            ChaosEvent::ReplicaLag { node: n, lsns, from_session, until_session }
                if n == node && session >= from_session && session < until_session =>
            {
                f.replica_lag = f.replica_lag.max(lsns);
            }
            ChaosEvent::HostileGuest { kind, from_session, until_session }
                if session >= from_session && session < until_session =>
            {
                hostile.push(kind);
            }
            ChaosEvent::RouterCrash { from, until } => f.router_outages.push((from, until)),
            ChaosEvent::NatTableFlush { at } => f.nat_flushes.push(at),
            ChaosEvent::DnsOutage { from, until, from_session, until_session }
                if session >= from_session && session < until_session =>
            {
                f.dns_outages.push((from, until));
            }
            ChaosEvent::HandoffStorm { count, every, blackout } => {
                for i in 1..=count as u64 {
                    f.handoffs.push(HandoffSpec { at: every * i, blackout, to_3g: i % 2 == 1 });
                }
            }
            _ => {}
        }
    }
    if !hostile.is_empty() {
        // Overlapping windows alternate by session id (see the event's
        // doc); a session's attack is independent of the node attempted.
        f.hostile_guest = Some(hostile[(session % hostile.len() as u64) as usize]);
    }
    f
}

/// A plan projected onto one (tenant, session) pair: which key epoch the
/// session seals under and whether it is the one paying for a rotation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantFaults {
    /// Key epoch this session's tenant seals under (rotations before or
    /// at this session bumped it from 0).
    pub epoch: u32,
    /// True when this is the tenant's rotation session: it pays the
    /// re-encryption cost (or fails closed) before serving.
    pub rotates: bool,
    /// True when the rotation this session pays for was forced by a
    /// suspected compromise: an unaffordable rotation must fail closed
    /// with reason `revoked_key` rather than degrade gracefully.
    pub compromised: bool,
}

/// The session id at which a rotation scheduled `from` lands for
/// `tenant` under round-robin assignment over `tenants`: the tenant's
/// first session id ≥ `from`.
fn rotation_session(tenants: u64, tenant: u64, from: u64) -> u64 {
    from + ((tenant + tenants - from % tenants) % tenants)
}

/// Projects `plan`'s tenant-key events onto the session with id
/// `session` belonging to `tenant` (round-robin over `tenants`). Pure:
/// the same inputs always produce the same faults, regardless of worker
/// interleaving. With tenancy disabled (`tenants == 0`) there are no
/// tenant faults.
pub fn tenant_faults(plan: &ChaosPlan, tenants: u64, tenant: u64, session: u64) -> TenantFaults {
    let mut f = TenantFaults::default();
    if tenants == 0 {
        return f;
    }
    for ev in &plan.events {
        let (t, from, until, forced) = match *ev {
            ChaosEvent::TenantKeyRotation { tenant, from_session, until_session } => {
                (tenant, from_session, until_session, false)
            }
            ChaosEvent::TenantKeyCompromise { tenant, from_session, until_session } => {
                (tenant, from_session, until_session, true)
            }
            _ => continue,
        };
        if t != tenant {
            continue;
        }
        let fires_at = rotation_session(tenants, tenant, from);
        if fires_at >= until {
            // The window closes before the tenant ever runs a session
            // inside it: the rotation never fires.
            continue;
        }
        if session >= fires_at {
            f.epoch += 1;
        }
        if session == fires_at {
            f.rotates = true;
            f.compromised |= forced;
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_out_of_range_nodes() {
        let mut plan = ChaosPlan::empty();
        plan.events =
            vec![ChaosEvent::NodeCrash { node: 7, at: SimDuration::ZERO, from_session: 0 }];
        assert_eq!(plan.validate(4), Err(ChaosPlanError::BadNode { node: 7, pool_len: 4 }));
        assert_eq!(plan.validate(8), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_percent_and_empty_windows() {
        let mut plan = ChaosPlan::empty();
        plan.events = vec![ChaosEvent::PacketLoss { pct: 101 }];
        assert_eq!(plan.validate(1), Err(ChaosPlanError::BadPercent { pct: 101 }));
        plan.events = vec![ChaosEvent::LinkFlap {
            from: SimDuration::from_millis(5),
            until: SimDuration::from_millis(5),
        }];
        assert_eq!(plan.validate(1), Err(ChaosPlanError::EmptyWindow));
        plan.events = vec![ChaosEvent::Partition { node: 0, from_session: 3, until_session: 3 }];
        assert_eq!(plan.validate(1), Err(ChaosPlanError::EmptyWindow));
        plan.events.clear();
        plan.trip_after = 0;
        assert_eq!(plan.validate(1), Err(ChaosPlanError::BadBreakerConfig));
    }

    #[test]
    fn canned_plans_validate_against_default_pool() {
        for name in ChaosPlan::canned_names() {
            let plan = ChaosPlan::canned(name).unwrap();
            plan.validate(4).unwrap_or_else(|e| panic!("canned plan {name} invalid: {e}"));
        }
        assert!(ChaosPlan::canned("nope").is_none());
    }

    #[test]
    fn crash_interval_respects_recovery_order() {
        let mut plan = ChaosPlan::empty();
        plan.events = vec![
            ChaosEvent::NodeCrash { node: 1, at: SimDuration::from_millis(9), from_session: 4 },
            ChaosEvent::NodeRecover { node: 1, from_session: 10 },
            ChaosEvent::NodeRecover { node: 0, from_session: 1 },
        ];
        assert_eq!(plan.crash_interval(1), Some((4, 10, SimDuration::from_millis(9))));
        assert_eq!(plan.crash_interval(0), None);
    }

    #[test]
    fn session_faults_projects_both_axes() {
        let mut plan = ChaosPlan::empty();
        plan.events = vec![
            ChaosEvent::NodeCrash { node: 0, at: SimDuration::from_millis(50), from_session: 2 },
            ChaosEvent::NodeRecover { node: 0, from_session: 5 },
            ChaosEvent::PacketLoss { pct: 60 },
            ChaosEvent::PacketLoss { pct: 70 },
            ChaosEvent::Partition { node: 1, from_session: 0, until_session: 3 },
            ChaosEvent::SyncTimeout {
                node: 0,
                from: SimDuration::from_millis(1),
                until: SimDuration::from_millis(2),
            },
        ];
        // Session axis: before / inside / after the crash interval.
        assert_eq!(session_faults(&plan, 0, 1, 9).crash, None);
        assert_eq!(session_faults(&plan, 0, 2, 9).crash, Some(SimDuration::from_millis(50)));
        assert_eq!(session_faults(&plan, 0, 5, 9).crash, None);
        // Other nodes never see the crash.
        assert_eq!(session_faults(&plan, 1, 2, 9).crash, None);
        // Percentages cap at 100; global events reach every node.
        assert_eq!(session_faults(&plan, 1, 0, 9).loss_pct, 100);
        // Partition respects its session window and node.
        assert!(session_faults(&plan, 1, 2, 9).partitioned);
        assert!(!session_faults(&plan, 1, 3, 9).partitioned);
        assert!(!session_faults(&plan, 0, 2, 9).partitioned);
        // Sync windows land only on their node.
        assert_eq!(session_faults(&plan, 0, 0, 9).sync_windows.len(), 1);
        assert!(session_faults(&plan, 1, 0, 9).sync_windows.is_empty());
    }

    #[test]
    fn vault_faults_project_onto_their_node_and_window() {
        let mut plan = ChaosPlan::empty();
        plan.events = vec![
            ChaosEvent::VaultCrash {
                node: 0,
                kind: VaultCrashKind::TornTail,
                from_session: 2,
                until_session: 4,
            },
            ChaosEvent::ReplicaLag { node: 1, lsns: 3, from_session: 0, until_session: 2 },
            ChaosEvent::ReplicaLag { node: 1, lsns: 5, from_session: 1, until_session: 2 },
        ];
        assert_eq!(session_faults(&plan, 0, 1, 9).vault_crash, None);
        assert_eq!(session_faults(&plan, 0, 2, 9).vault_crash, Some(VaultCrashKind::TornTail));
        assert_eq!(session_faults(&plan, 0, 4, 9).vault_crash, None);
        assert_eq!(session_faults(&plan, 1, 2, 9).vault_crash, None, "wrong node");
        // Overlapping lags take the max; outside the window they vanish.
        assert_eq!(session_faults(&plan, 1, 0, 9).replica_lag, 3);
        assert_eq!(session_faults(&plan, 1, 1, 9).replica_lag, 5);
        assert_eq!(session_faults(&plan, 1, 2, 9).replica_lag, 0);
        assert_eq!(session_faults(&plan, 0, 1, 9).replica_lag, 0, "wrong node");
    }

    #[test]
    fn validate_rejects_bad_vault_events() {
        let mut plan = ChaosPlan::empty();
        plan.events = vec![ChaosEvent::VaultCrash {
            node: 9,
            kind: VaultCrashKind::MidCommit,
            from_session: 0,
            until_session: 1,
        }];
        assert_eq!(plan.validate(4), Err(ChaosPlanError::BadNode { node: 9, pool_len: 4 }));
        plan.events = vec![ChaosEvent::VaultCrash {
            node: 0,
            kind: VaultCrashKind::MidCommit,
            from_session: 3,
            until_session: 3,
        }];
        assert_eq!(plan.validate(4), Err(ChaosPlanError::EmptyWindow));
        plan.events =
            vec![ChaosEvent::ReplicaLag { node: 0, lsns: 0, from_session: 0, until_session: 1 }];
        assert_eq!(plan.validate(4), Err(ChaosPlanError::ZeroLag));
    }

    #[test]
    fn hostile_guest_projects_by_session_window_and_alternates_kinds() {
        let plan = ChaosPlan::canned("hostile-guest").unwrap();
        plan.validate(4).unwrap();
        // Full-width windows: every session is hostile, cycling kinds,
        // on every node it might be placed on.
        for node in 0..4 {
            assert_eq!(
                session_faults(&plan, node, 0, 9).hostile_guest,
                Some(HostileGuestKind::Spin)
            );
        }
        assert_eq!(session_faults(&plan, 0, 1, 9).hostile_guest, Some(HostileGuestKind::HeapBomb));
        assert_eq!(
            session_faults(&plan, 0, 2, 9).hostile_guest,
            Some(HostileGuestKind::DeepRecursion)
        );
        assert_eq!(session_faults(&plan, 0, 3, 9).hostile_guest, Some(HostileGuestKind::SyncFlood));
        assert_eq!(session_faults(&plan, 0, 4, 9).hostile_guest, Some(HostileGuestKind::Spin));
        // A bounded window leaves later sessions well behaved.
        let mut bounded = ChaosPlan::empty();
        bounded.events = vec![ChaosEvent::HostileGuest {
            kind: HostileGuestKind::HeapBomb,
            from_session: 2,
            until_session: 4,
        }];
        assert_eq!(session_faults(&bounded, 0, 1, 9).hostile_guest, None);
        assert_eq!(
            session_faults(&bounded, 0, 3, 9).hostile_guest,
            Some(HostileGuestKind::HeapBomb)
        );
        assert_eq!(session_faults(&bounded, 0, 4, 9).hostile_guest, None);
        // An empty window is a plan bug.
        bounded.events = vec![ChaosEvent::HostileGuest {
            kind: HostileGuestKind::Spin,
            from_session: 3,
            until_session: 3,
        }];
        assert_eq!(bounded.validate(4), Err(ChaosPlanError::EmptyWindow));
    }

    #[test]
    fn tenant_rotation_fires_at_the_tenants_first_session_in_window() {
        let plan = ChaosPlan::canned("tenant-rotation").unwrap();
        plan.validate(4).unwrap();
        // Tenant 0 (sessions 0, 2, 4, ...): rotation from session 4
        // lands exactly on session 4.
        assert_eq!(tenant_faults(&plan, 2, 0, 2), TenantFaults::default());
        assert_eq!(
            tenant_faults(&plan, 2, 0, 4),
            TenantFaults { epoch: 1, rotates: true, compromised: false }
        );
        assert_eq!(
            tenant_faults(&plan, 2, 0, 6),
            TenantFaults { epoch: 1, rotates: false, compromised: false },
            "later sessions hold the new epoch without re-paying"
        );
        // Tenant 1 (sessions 1, 3, 5, 7, ...): the compromise from
        // session 6 fires at tenant 1's next session, 7, and is forced.
        assert_eq!(tenant_faults(&plan, 2, 1, 5).epoch, 0);
        assert_eq!(
            tenant_faults(&plan, 2, 1, 7),
            TenantFaults { epoch: 1, rotates: true, compromised: true }
        );
        assert_eq!(tenant_faults(&plan, 2, 1, 9).epoch, 1);
    }

    #[test]
    fn tenant_faults_are_scoped_and_pure() {
        let plan = ChaosPlan::canned("tenant-rotation").unwrap();
        // Tenancy disabled: no faults at all.
        assert_eq!(tenant_faults(&plan, 0, 0, 4), TenantFaults::default());
        // A window that closes before the tenant's first session inside
        // it never fires.
        let mut narrow = ChaosPlan::empty();
        narrow.events =
            vec![ChaosEvent::TenantKeyRotation { tenant: 1, from_session: 4, until_session: 5 }];
        assert_eq!(tenant_faults(&narrow, 2, 1, 5), TenantFaults::default());
        assert_eq!(tenant_faults(&narrow, 2, 1, 7), TenantFaults::default());
        // Purity.
        assert_eq!(tenant_faults(&plan, 2, 0, 4), tenant_faults(&plan, 2, 0, 4));
        // Empty windows are plan bugs for both tenant event kinds.
        let mut bad = ChaosPlan::empty();
        bad.events =
            vec![ChaosEvent::TenantKeyRotation { tenant: 0, from_session: 3, until_session: 3 }];
        assert_eq!(bad.validate(4), Err(ChaosPlanError::EmptyWindow));
        bad.events =
            vec![ChaosEvent::TenantKeyCompromise { tenant: 0, from_session: 3, until_session: 2 }];
        assert_eq!(bad.validate(4), Err(ChaosPlanError::EmptyWindow));
    }

    #[test]
    fn topology_faults_project_and_validate() {
        let mut plan = ChaosPlan::empty();
        plan.events = vec![
            ChaosEvent::RouterCrash {
                from: SimDuration::from_millis(10),
                until: SimDuration::from_millis(20),
            },
            ChaosEvent::NatTableFlush { at: SimDuration::from_millis(30) },
            ChaosEvent::DnsOutage {
                from: SimDuration::ZERO,
                until: SimDuration::from_millis(5),
                from_session: 0,
                until_session: u64::MAX,
            },
            ChaosEvent::HandoffStorm {
                count: 3,
                every: SimDuration::from_millis(100),
                blackout: SimDuration::from_millis(40),
            },
        ];
        plan.validate(4).unwrap();
        let f = session_faults(&plan, 0, 0, 9);
        assert_eq!(
            f.router_outages,
            vec![(SimDuration::from_millis(10), SimDuration::from_millis(20))]
        );
        assert_eq!(f.nat_flushes, vec![SimDuration::from_millis(30)]);
        assert_eq!(f.dns_outages, vec![(SimDuration::ZERO, SimDuration::from_millis(5))]);
        // Handoffs land at every*i and alternate 3G / Wi-Fi.
        assert_eq!(f.handoffs.len(), 3);
        assert_eq!(
            f.handoffs[0],
            HandoffSpec {
                at: SimDuration::from_millis(100),
                blackout: SimDuration::from_millis(40),
                to_3g: true,
            }
        );
        assert!(!f.handoffs[1].to_3g);
        assert_eq!(f.handoffs[2].at, SimDuration::from_millis(300));
        // Global faults hit every node identically.
        assert_eq!(session_faults(&plan, 3, 7, 9).handoffs, f.handoffs);

        // Empty windows and degenerate storms are plan bugs.
        let mut bad = ChaosPlan::empty();
        bad.events = vec![ChaosEvent::RouterCrash {
            from: SimDuration::from_millis(5),
            until: SimDuration::from_millis(5),
        }];
        assert_eq!(bad.validate(1), Err(ChaosPlanError::EmptyWindow));
        bad.events = vec![ChaosEvent::DnsOutage {
            from: SimDuration::from_millis(5),
            until: SimDuration::from_millis(4),
            from_session: 0,
            until_session: u64::MAX,
        }];
        assert_eq!(bad.validate(1), Err(ChaosPlanError::EmptyWindow));
        bad.events = vec![ChaosEvent::HandoffStorm {
            count: 0,
            every: SimDuration::from_millis(1),
            blackout: SimDuration::ZERO,
        }];
        assert_eq!(bad.validate(1), Err(ChaosPlanError::BadHandoffStorm));
        bad.events = vec![ChaosEvent::HandoffStorm {
            count: 1,
            every: SimDuration::ZERO,
            blackout: SimDuration::ZERO,
        }];
        assert_eq!(bad.validate(1), Err(ChaosPlanError::BadHandoffStorm));
    }

    #[test]
    fn membership_events_validate_nodes_windows_and_periods() {
        let mut plan = ChaosPlan::empty();
        // Node indices are checked for the node-scoped families.
        plan.events = vec![ChaosEvent::NodeDrain { node: 9, from_session: 0, until_session: 4 }];
        assert_eq!(plan.validate(4), Err(ChaosPlanError::BadNode { node: 9, pool_len: 4 }));
        plan.events = vec![ChaosEvent::RejoinFlap {
            node: 5,
            period_sessions: 2,
            from_session: 0,
            until_session: 8,
        }];
        assert_eq!(plan.validate(4), Err(ChaosPlanError::BadNode { node: 5, pool_len: 4 }));
        // Session windows must be non-empty.
        plan.events = vec![ChaosEvent::NodeDrain { node: 0, from_session: 3, until_session: 3 }];
        assert_eq!(plan.validate(4), Err(ChaosPlanError::EmptyWindow));
        plan.events =
            vec![ChaosEvent::RegionOutage { region: 0, from_session: 5, until_session: 4 }];
        assert_eq!(plan.validate(4), Err(ChaosPlanError::EmptyWindow));
        plan.events = vec![ChaosEvent::RejoinFlap {
            node: 0,
            period_sessions: 2,
            from_session: 6,
            until_session: 6,
        }];
        assert_eq!(plan.validate(4), Err(ChaosPlanError::EmptyWindow));
        // Degenerate schedules are plan bugs.
        plan.events = vec![ChaosEvent::RollingUpgrade { wave_sessions: 0, from_session: 0 }];
        assert_eq!(plan.validate(4), Err(ChaosPlanError::BadMembership));
        plan.events = vec![ChaosEvent::RejoinFlap {
            node: 0,
            period_sessions: 0,
            from_session: 0,
            until_session: 8,
        }];
        assert_eq!(plan.validate(4), Err(ChaosPlanError::BadMembership));
        // Well-formed membership events pass (the region index itself is
        // checked at membership-schedule build, where the region count
        // is known).
        plan.events = vec![
            ChaosEvent::NodeDrain { node: 0, from_session: 0, until_session: 4 },
            ChaosEvent::RegionOutage { region: 7, from_session: 4, until_session: 8 },
            ChaosEvent::RollingUpgrade { wave_sessions: 3, from_session: 2 },
            ChaosEvent::RejoinFlap {
                node: 1,
                period_sessions: 2,
                from_session: 0,
                until_session: 8,
            },
        ];
        assert_eq!(plan.validate(4), Ok(()));
    }

    #[test]
    fn dice_seed_varies_by_every_input() {
        let plan = ChaosPlan::empty();
        let base = session_faults(&plan, 0, 0, 1).dice_seed;
        assert_ne!(session_faults(&plan, 1, 0, 1).dice_seed, base);
        assert_ne!(session_faults(&plan, 0, 0, 2).dice_seed, base);
        let mut other = ChaosPlan::empty();
        other.seed ^= 1;
        assert_ne!(session_faults(&other, 0, 0, 1).dice_seed, base);
        // But it is a pure function.
        assert_eq!(session_faults(&plan, 0, 0, 1).dice_seed, base);
    }
}
