//! Per-node circuit breakers on the fleet's session-id axis.
//!
//! A breaker replaces the raw down/degraded health flip: after
//! `trip_after` consecutive failures the node is Open (placements skip it
//! without paying a session attempt), and while Open every `probe_every`-th
//! placement becomes a HalfOpen probe — one real attempt that recloses the
//! breaker on success or re-opens it on failure.
//!
//! Fleet sessions run concurrently on worker threads, so a live shared
//! breaker would make placement depend on scheduling. Instead,
//! [`BreakerSchedule::build`] replays the breaker deterministically over
//! the session-id axis (a session's attempt against a node fails iff the
//! plan crashes that node for that session id), producing a pure
//! `(node, session) -> state` table every worker reads identically.

use crate::plan::ChaosPlan;

/// The three breaker states.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    #[default]
    Closed,
    /// Requests are skipped without an attempt (fast failover).
    Open,
    /// One probe request is allowed through to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable snake_case name for trace events and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// The breaker state machine for one node.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    trip_after: u64,
    probe_every: u64,
    state: BreakerState,
    consecutive_failures: u64,
    open_requests: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `trip_after` consecutive failures
    /// and probing every `probe_every`-th request while open. Zeros are
    /// clamped to one.
    pub fn new(trip_after: u64, probe_every: u64) -> Self {
        CircuitBreaker {
            trip_after: trip_after.max(1),
            probe_every: probe_every.max(1),
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_requests: 0,
        }
    }

    /// Called for each placement considering this node; advances the probe
    /// schedule and returns the state the request observes.
    pub fn before_request(&mut self) -> BreakerState {
        if self.state == BreakerState::Open {
            self.open_requests += 1;
            if self.open_requests >= self.probe_every {
                self.state = BreakerState::HalfOpen;
                self.open_requests = 0;
            }
        }
        self.state
    }

    /// Records a successful attempt: the breaker (re)closes.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a failed attempt: Closed trips after `trip_after` in a row,
    /// a HalfOpen probe re-opens immediately.
    pub fn record_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.trip_after {
                    self.state = BreakerState::Open;
                    self.open_requests = 0;
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.open_requests = 0;
            }
            BreakerState::Open => {}
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }
}

/// The deterministic `(node, session) -> state` table for one fleet run.
#[derive(Clone, Debug)]
pub struct BreakerSchedule {
    /// `states[node][session]` = state that session's placement observes.
    states: Vec<Vec<BreakerState>>,
}

impl BreakerSchedule {
    /// Replays each node's breaker over sessions `0..sessions`: the
    /// attempt for session `s` fails iff `plan` has the node crashed for
    /// that session id. (Open placements record nothing — no attempt ran.)
    pub fn build(plan: &ChaosPlan, pool_len: usize, sessions: u64) -> BreakerSchedule {
        let mut states = Vec::with_capacity(pool_len);
        for node in 0..pool_len {
            let crash = plan.crash_interval(node);
            let mut br = CircuitBreaker::new(plan.trip_after, plan.probe_every);
            let mut per_session = Vec::with_capacity(sessions as usize);
            for s in 0..sessions {
                let view = br.before_request();
                per_session.push(view);
                if view != BreakerState::Open {
                    let down = crash.is_some_and(|(from, until, _)| s >= from && s < until);
                    if down {
                        br.record_failure();
                    } else {
                        br.record_success();
                    }
                }
            }
            states.push(per_session);
        }
        BreakerSchedule { states }
    }

    /// The state session `session`'s placement observes for `node`.
    /// Out-of-range lookups read as Closed (no breaker information).
    pub fn view(&self, node: usize, session: u64) -> BreakerState {
        self.states
            .get(node)
            .and_then(|v| v.get(session as usize))
            .copied()
            .unwrap_or(BreakerState::Closed)
    }

    /// Sessions `node` spent in each state: `(closed, open, half_open)`.
    /// The fleet's session-id axis is its availability timeline, so these
    /// are the "breaker time-in-state" numbers the report publishes.
    pub fn time_in_state(&self, node: usize) -> (u64, u64, u64) {
        let (mut c, mut o, mut h) = (0, 0, 0);
        for s in self.states.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
            match s {
                BreakerState::Closed => c += 1,
                BreakerState::Open => o += 1,
                BreakerState::HalfOpen => h += 1,
            }
        }
        (c, o, h)
    }

    /// The node's state transitions as `(session, from, to)` — what the
    /// trace layer emits as `breaker_transition` events.
    pub fn transitions(&self, node: usize) -> Vec<(u64, BreakerState, BreakerState)> {
        let states = self.states.get(node).map(|v| v.as_slice()).unwrap_or(&[]);
        let mut out = Vec::new();
        let mut prev = BreakerState::Closed;
        for (s, &cur) in states.iter().enumerate() {
            if cur != prev {
                out.push((s as u64, prev, cur));
                prev = cur;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChaosEvent;
    use tinman_sim::SimDuration;

    #[test]
    fn breaker_trips_probes_and_recloses() {
        let mut br = CircuitBreaker::new(2, 3);
        assert_eq!(br.before_request(), BreakerState::Closed);
        br.record_failure();
        assert_eq!(br.state(), BreakerState::Closed, "one failure is not enough");
        br.record_failure();
        assert_eq!(br.state(), BreakerState::Open, "trips after trip_after");
        // Two fast skips, then the third request is a probe.
        assert_eq!(br.before_request(), BreakerState::Open);
        assert_eq!(br.before_request(), BreakerState::Open);
        assert_eq!(br.before_request(), BreakerState::HalfOpen);
        br.record_failure();
        assert_eq!(br.state(), BreakerState::Open, "failed probe re-opens");
        assert_eq!(br.before_request(), BreakerState::Open);
        assert_eq!(br.before_request(), BreakerState::Open);
        assert_eq!(br.before_request(), BreakerState::HalfOpen);
        br.record_success();
        assert_eq!(br.state(), BreakerState::Closed, "successful probe recloses");
    }

    #[test]
    fn zero_config_is_clamped_not_divided_by() {
        let mut br = CircuitBreaker::new(0, 0);
        br.record_failure();
        assert_eq!(br.state(), BreakerState::Open);
        assert_eq!(br.before_request(), BreakerState::HalfOpen);
    }

    fn crash_recover_plan() -> ChaosPlan {
        let mut plan = ChaosPlan::empty();
        plan.trip_after = 2;
        plan.probe_every = 3;
        plan.events = vec![
            ChaosEvent::NodeCrash { node: 0, at: SimDuration::ZERO, from_session: 0 },
            ChaosEvent::NodeRecover { node: 0, from_session: 6 },
        ];
        plan
    }

    #[test]
    fn schedule_replays_trip_skip_probe_reclose() {
        let sched = BreakerSchedule::build(&crash_recover_plan(), 2, 12);
        use BreakerState::{Closed, HalfOpen, Open};
        // Sessions 0,1 attempt and fail (trip_after=2) -> Open from 2.
        // Probes every 3rd open request: 2,3 skip, 4 probes (fails, node
        // still down until 6), 5,6 skip, 7 probes (succeeds, recovered at
        // 6) -> Closed from 8 on.
        let got: Vec<_> = (0..12).map(|s| sched.view(0, s)).collect();
        assert_eq!(
            got,
            vec![
                Closed, Closed, Open, Open, HalfOpen, Open, Open, HalfOpen, Closed, Closed, Closed,
                Closed
            ]
        );
        // The healthy node never leaves Closed.
        assert!((0..12).all(|s| sched.view(1, s) == Closed));
        assert_eq!(sched.time_in_state(0), (6, 4, 2));
        assert_eq!(sched.time_in_state(1), (12, 0, 0));
        assert_eq!(
            sched.transitions(0),
            vec![
                (2, Closed, Open),
                (4, Open, HalfOpen),
                (5, HalfOpen, Open),
                (7, Open, HalfOpen),
                (8, HalfOpen, Closed)
            ]
        );
        assert!(sched.transitions(1).is_empty());
    }

    #[test]
    fn schedule_is_pure() {
        let plan = crash_recover_plan();
        let a = BreakerSchedule::build(&plan, 3, 40);
        let b = BreakerSchedule::build(&plan, 3, 40);
        for node in 0..3 {
            assert_eq!(a.time_in_state(node), b.time_in_state(node));
            assert_eq!(a.transitions(node), b.transitions(node));
        }
    }

    #[test]
    fn out_of_range_views_read_closed() {
        let sched = BreakerSchedule::build(&ChaosPlan::empty(), 1, 2);
        assert_eq!(sched.view(5, 0), BreakerState::Closed);
        assert_eq!(sched.view(0, 99), BreakerState::Closed);
        assert_eq!(sched.time_in_state(9), (0, 0, 0));
    }
}
