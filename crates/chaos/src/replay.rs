//! Exactly-once delivery accounting across session replays.
//!
//! A session attempt is a deterministic simulation: the k-th payload
//! replacement it performs toward the origin server is byte-identical on
//! every replay of the same session. The ledger exploits that: deliveries
//! are numbered by their position in the session's send order, and a
//! replay that re-performs deliveries `0..n` after a predecessor already
//! delivered `0..m` has `min(n, m)` duplicates the origin server
//! suppresses (it keys on `(session, seq)`) and `n - m` new deliveries.
//! At-least-once retries plus origin-side dedup compose to exactly-once.

/// Per-session delivery ledger.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeliveryLedger {
    /// Highest delivery count any attempt reached (= unique deliveries).
    high: u64,
    /// Total re-deliveries suppressed across all attempts.
    duplicates: u64,
}

impl DeliveryLedger {
    /// A fresh ledger (nothing delivered).
    pub fn new() -> Self {
        DeliveryLedger::default()
    }

    /// Records one attempt that performed deliveries `0..delivered`.
    /// Returns `(new, suppressed)`: deliveries the origin saw for the
    /// first time, and re-sends it deduplicated.
    pub fn record_attempt(&mut self, delivered: u64) -> (u64, u64) {
        let new = delivered.saturating_sub(self.high);
        let suppressed = delivered.min(self.high);
        self.high = self.high.max(delivered);
        self.duplicates += suppressed;
        (new, suppressed)
    }

    /// Unique deliveries the origin server accepted.
    pub fn unique(&self) -> u64 {
        self.high
    }

    /// Re-deliveries the origin server suppressed.
    pub fn suppressed(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_clean_attempt_has_no_duplicates() {
        let mut ledger = DeliveryLedger::new();
        assert_eq!(ledger.record_attempt(3), (3, 0));
        assert_eq!(ledger.unique(), 3);
        assert_eq!(ledger.suppressed(), 0);
    }

    #[test]
    fn crash_before_delivery_then_replay_is_exactly_once() {
        let mut ledger = DeliveryLedger::new();
        // First attempt dies before any payload replacement.
        assert_eq!(ledger.record_attempt(0), (0, 0));
        // The replay delivers once.
        assert_eq!(ledger.record_attempt(1), (1, 0));
        assert_eq!(ledger.unique(), 1);
        assert_eq!(ledger.suppressed(), 0);
    }

    #[test]
    fn crash_after_delivery_then_replay_suppresses_the_resend() {
        let mut ledger = DeliveryLedger::new();
        // First attempt delivered, then crashed before completing.
        assert_eq!(ledger.record_attempt(1), (1, 0));
        // The replay re-performs the same delivery (same seq) and the
        // origin drops it: still exactly one unique delivery.
        assert_eq!(ledger.record_attempt(1), (0, 1));
        assert_eq!(ledger.unique(), 1);
        assert_eq!(ledger.suppressed(), 1);
    }

    #[test]
    fn multi_delivery_sessions_dedup_the_replayed_prefix() {
        let mut ledger = DeliveryLedger::new();
        assert_eq!(ledger.record_attempt(2), (2, 0));
        assert_eq!(ledger.record_attempt(5), (3, 2));
        assert_eq!(ledger.record_attempt(4), (0, 4), "shorter replay is all duplicates");
        assert_eq!(ledger.unique(), 5);
        assert_eq!(ledger.suppressed(), 6);
    }
}
