//! Trace sinks: where records go, and the cheap handle that emits them.
//!
//! The default sink is a no-op whose `emit` does nothing and whose
//! `is_enabled` is `false`, so instrumented hot paths cost one branch
//! when tracing is off — and, critically, never read the wall clock, so
//! determinism tests stay byte-identical with the default sink.
//!
//! The ring-buffer sink is bounded: when full it evicts the oldest
//! record and counts the drop, so a long fleet run can never exhaust
//! memory through its own observability.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use tinman_sim::{SimClock, SimTime};

use crate::event::TraceEvent;

/// Chrome-style phase of a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// A point event (`ph: "i"`).
    Instant,
    /// A span opening (`ph: "B"`); spans nest stack-wise per track.
    Begin,
    /// A span closing (`ph: "E"`).
    End,
}

/// One recorded occurrence, stamped with **both** clocks: the simulated
/// instant (what the evaluation reasons about) and wall nanoseconds since
/// the sink was created (what the host actually did, e.g. worker-thread
/// interleaving). Only the simulated stamp is deterministic.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Monotone sequence number assigned by the sink (gap-free unless
    /// records were dropped).
    pub seq: u64,
    /// Logical track (Chrome `tid`): 0 for a standalone runtime, the
    /// session id inside a fleet.
    pub track: u64,
    /// Simulated time of the event, nanoseconds since simulation start.
    pub sim_ns: u64,
    /// Wall-clock nanoseconds since the sink was created.
    pub wall_ns: u64,
    /// Instant, span begin, or span end.
    pub phase: TracePhase,
    /// The typed payload.
    pub event: TraceEvent,
}

/// Where trace records go. Implementations must be thread-safe: a fleet's
/// worker threads share one sink.
pub trait TraceSink: Send + Sync {
    /// Records one occurrence. `sim_ns` is the simulated stamp; the sink
    /// supplies the wall stamp (a no-op sink never reads any clock).
    fn record(&self, phase: TracePhase, track: u64, sim_ns: u64, event: TraceEvent);
}

/// The disabled sink: does nothing, costs nothing.
struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _phase: TracePhase, _track: u64, _sim_ns: u64, _event: TraceEvent) {}
}

struct Ring {
    records: VecDeque<TraceRecord>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded in-memory event log. When the buffer fills, the **oldest**
/// record is evicted and counted in [`RingBufferSink::dropped`] — recent
/// history survives, which is what post-mortems want.
pub struct RingBufferSink {
    capacity: usize,
    start: Instant,
    inner: Mutex<Ring>,
}

impl RingBufferSink {
    /// A sink holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Arc<RingBufferSink> {
        Arc::new(RingBufferSink {
            capacity: capacity.max(1),
            start: Instant::now(),
            inner: Mutex::new(Ring { records: VecDeque::new(), next_seq: 0, dropped: 0 }),
        })
    }

    /// A copy of the records currently buffered, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.inner.lock().records.iter().cloned().collect()
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True if nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().records.is_empty()
    }

    /// Records evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, phase: TracePhase, track: u64, sim_ns: u64, event: TraceEvent) {
        let wall_ns = self.start.elapsed().as_nanos() as u64;
        let mut ring = self.inner.lock();
        if ring.records.len() == self.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.records.push_back(TraceRecord { seq, track, sim_ns, wall_ns, phase, event });
    }
}

/// The cheap, clonable emitter the whole stack carries. Defaults to the
/// no-op sink; [`TraceHandle::is_enabled`] lets hot paths skip building
/// event payloads entirely when tracing is off.
#[derive(Clone)]
pub struct TraceHandle {
    enabled: bool,
    sink: Arc<dyn TraceSink>,
}

impl Default for TraceHandle {
    fn default() -> Self {
        TraceHandle::noop()
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceHandle(enabled={})", self.enabled)
    }
}

impl TraceHandle {
    /// The disabled handle (the default everywhere).
    pub fn noop() -> TraceHandle {
        TraceHandle { enabled: false, sink: Arc::new(NoopSink) }
    }

    /// A handle over a custom sink.
    pub fn new(sink: Arc<dyn TraceSink>) -> TraceHandle {
        TraceHandle { enabled: true, sink }
    }

    /// A handle plus its ring-buffer sink (the usual enabled pairing).
    pub fn ring(capacity: usize) -> (TraceHandle, Arc<RingBufferSink>) {
        let sink = RingBufferSink::new(capacity);
        (TraceHandle::new(sink.clone()), sink)
    }

    /// False for the no-op handle. Guard expensive payload construction:
    /// `if trace.is_enabled() { trace.emit(...) }`.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an instant event on track 0.
    pub fn emit(&self, sim: SimTime, event: TraceEvent) {
        self.emit_on(0, sim, event);
    }

    /// Records an instant event on a specific track.
    pub fn emit_on(&self, track: u64, sim: SimTime, event: TraceEvent) {
        if self.enabled {
            self.sink.record(TracePhase::Instant, track, sim.as_nanos(), event);
        }
    }

    /// Opens a span. Pair with [`TraceHandle::span_end`] (same track;
    /// spans nest stack-wise), or use [`TraceHandle::span_guard`].
    pub fn span_start(&self, track: u64, sim: SimTime, name: &str) {
        if self.enabled {
            self.sink.record(
                TracePhase::Begin,
                track,
                sim.as_nanos(),
                TraceEvent::Span { name: name.to_owned() },
            );
        }
    }

    /// Closes the innermost open span on `track`.
    pub fn span_end(&self, track: u64, sim: SimTime, name: &str) {
        if self.enabled {
            self.sink.record(
                TracePhase::End,
                track,
                sim.as_nanos(),
                TraceEvent::Span { name: name.to_owned() },
            );
        }
    }

    /// Opens a span and returns a guard that closes it (stamping the
    /// simulated clock at drop time) on every exit path, including `?`.
    pub fn span_guard(&self, track: u64, clock: &SimClock, name: &str) -> SpanGuard {
        self.span_start(track, clock.now(), name);
        SpanGuard { trace: self.clone(), clock: clock.clone(), track, name: name.to_owned() }
    }
}

/// RAII span: emits the matching [`TracePhase::End`] record when dropped,
/// reading the simulated clock at that moment. Not `Send` (it holds a
/// `SimClock`); use explicit `span_start`/`span_end` across threads.
pub struct SpanGuard {
    trace: TraceHandle,
    clock: SimClock,
    track: u64,
    name: String,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.trace.span_end(self.track, self.clock.now(), &self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinman_sim::SimDuration;

    #[test]
    fn noop_handle_is_disabled_and_silent() {
        let h = TraceHandle::default();
        assert!(!h.is_enabled());
        h.emit(SimTime::ZERO, TraceEvent::NetInject { bytes: 1 });
        // Nothing to observe — the point is it cannot panic or allocate a log.
    }

    #[test]
    fn ring_buffer_records_and_bounds() {
        let (h, sink) = TraceHandle::ring(3);
        assert!(h.is_enabled());
        for i in 0..7u64 {
            h.emit(SimTime::ZERO, TraceEvent::NetRedirect { bytes: i });
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 4);
        let recs = sink.snapshot();
        // Oldest evicted: the survivors are the last three, in order.
        assert_eq!(recs[0].event, TraceEvent::NetRedirect { bytes: 4 });
        assert_eq!(recs[2].event, TraceEvent::NetRedirect { bytes: 6 });
        assert!(recs.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn records_carry_both_clocks() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_millis(5));
        let (h, sink) = TraceHandle::ring(8);
        h.emit(clock.now(), TraceEvent::TcpPayloadReplace { bytes: 64 });
        let rec = &sink.snapshot()[0];
        assert_eq!(rec.sim_ns, 5_000_000);
        // Wall stamp exists and is plausibly tiny; it is not deterministic.
        assert!(rec.wall_ns < 60_000_000_000);
    }

    #[test]
    fn span_guard_balances_on_early_exit() {
        let clock = SimClock::new();
        let (h, sink) = TraceHandle::ring(8);
        let run = |fail: bool| -> Result<(), ()> {
            let _g = h.span_guard(0, &clock, "work");
            if fail {
                return Err(());
            }
            Ok(())
        };
        run(true).unwrap_err();
        run(false).unwrap();
        let recs = sink.snapshot();
        let begins = recs.iter().filter(|r| r.phase == TracePhase::Begin).count();
        let ends = recs.iter().filter(|r| r.phase == TracePhase::End).count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
    }
}
