//! The counter/histogram registry.
//!
//! Reports (`FleetReport` / `RunReport`) read aggregate numbers from
//! here instead of hand-threading counters through every layer. Counters are commutative sums and histograms are
//! sorted before quantiles, so registry-derived numbers are independent
//! of worker interleaving — safe to include in deterministic output.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::Value;

struct Inner {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Vec<u64>>>,
}

impl Default for Inner {
    fn default() -> Self {
        Inner { counters: Mutex::new(BTreeMap::new()), histograms: Mutex::new(BTreeMap::new()) }
    }
}

/// Nearest-rank summary of one histogram's samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramStats {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean (truncating).
    pub mean: u64,
    /// Median, nearest-rank.
    pub p50: u64,
    /// 95th percentile, nearest-rank.
    pub p95: u64,
    /// 99th percentile, nearest-rank.
    pub p99: u64,
}

/// A shared, thread-safe registry of named counters and histograms.
/// Clones share state (`Arc` inside); the default registry is empty.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MetricsRegistry({} counters, {} histograms)",
            self.inner.counters.lock().len(),
            self.inner.histograms.lock().len()
        )
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn add(&self, name: &str, delta: u64) {
        *self.inner.counters.lock().entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments the counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// The counter's current value (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Records one sample into the histogram `name`.
    pub fn observe(&self, name: &str, sample: u64) {
        self.inner.histograms.lock().entry(name.to_owned()).or_default().push(sample);
    }

    /// Summarizes the histogram `name`; `None` if it has no samples.
    /// Samples are sorted first, so the summary is independent of the
    /// order threads recorded them in.
    pub fn histogram_stats(&self, name: &str) -> Option<HistogramStats> {
        let hists = self.inner.histograms.lock();
        let samples = hists.get(name).filter(|s| !s.is_empty())?;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let nearest = |q: u64| sorted[((q * n).div_ceil(100).max(1) - 1) as usize];
        Some(HistogramStats {
            count: n,
            min: sorted[0],
            max: sorted[n as usize - 1],
            mean: sorted.iter().sum::<u64>() / n,
            p50: nearest(50),
            p95: nearest(95),
            p99: nearest(99),
        })
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.counters.lock().is_empty() && self.inner.histograms.lock().is_empty()
    }

    /// The whole registry as JSON: counters verbatim, histograms
    /// summarized. Keys are sorted (BTreeMap), so two registries with the
    /// same contents serialize to identical bytes.
    pub fn snapshot_value(&self) -> Value {
        let counters: Vec<(String, Value)> =
            self.inner.counters.lock().iter().map(|(k, v)| (k.clone(), Value::U64(*v))).collect();
        let histograms: Vec<(String, Value)> = {
            let names: Vec<String> = self.inner.histograms.lock().keys().cloned().collect();
            names
                .into_iter()
                .filter_map(|name| {
                    let s = self.histogram_stats(&name)?;
                    Some((
                        name,
                        Value::Map(vec![
                            ("count".to_owned(), Value::U64(s.count)),
                            ("min".to_owned(), Value::U64(s.min)),
                            ("max".to_owned(), Value::U64(s.max)),
                            ("mean".to_owned(), Value::U64(s.mean)),
                            ("p50".to_owned(), Value::U64(s.p50)),
                            ("p95".to_owned(), Value::U64(s.p95)),
                            ("p99".to_owned(), Value::U64(s.p99)),
                        ]),
                    ))
                })
                .collect()
        };
        Value::Map(vec![
            ("counters".to_owned(), Value::Map(counters)),
            ("histograms".to_owned(), Value::Map(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_across_clones() {
        let reg = MetricsRegistry::new();
        let other = reg.clone();
        reg.incr("a");
        other.add("a", 4);
        assert_eq!(reg.get("a"), 5);
        assert_eq!(reg.get("missing"), 0);
    }

    #[test]
    fn histogram_summary_is_order_independent() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        for v in [30u64, 10, 20] {
            a.observe("lat", v);
        }
        for v in [10u64, 20, 30] {
            b.observe("lat", v);
        }
        assert_eq!(a.histogram_stats("lat"), b.histogram_stats("lat"));
        let s = a.histogram_stats("lat").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert_eq!(s.mean, 20);
        assert_eq!(s.p50, 20);
        assert_eq!(s.p99, 30);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let reg = MetricsRegistry::new();
        assert!(reg.histogram_stats("nope").is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn snapshot_is_deterministic_json() {
        let reg = MetricsRegistry::new();
        reg.add("z", 1);
        reg.add("a", 2);
        reg.observe("h", 5);
        let one = serde_json::to_string(&reg.snapshot_value()).unwrap();
        let two = serde_json::to_string(&reg.snapshot_value()).unwrap();
        assert_eq!(one, two);
        assert!(one.find("\"a\"").unwrap() < one.find("\"z\"").unwrap(), "keys sorted");
    }
}
