//! Exporters: Chrome `trace_event` JSON (loads in `chrome://tracing` and
//! Perfetto) and JSON-lines.
//!
//! The Chrome format is the JSON-object flavor: `{"traceEvents": [...]}`
//! with `B`/`E`/`i` phases. `ts` is **simulated** microseconds (the
//! timeline the evaluation reasons about); the wall stamp travels in
//! `args.wall_ns` so host-side interleaving stays inspectable.

use serde_json::Value;

use crate::sink::{TracePhase, TraceRecord};

fn phase_str(phase: TracePhase) -> &'static str {
    match phase {
        TracePhase::Instant => "i",
        TracePhase::Begin => "B",
        TracePhase::End => "E",
    }
}

fn record_value(rec: &TraceRecord) -> Value {
    let mut args = rec.event.args();
    args.push(("seq".to_owned(), Value::U64(rec.seq)));
    args.push(("sim_ns".to_owned(), Value::U64(rec.sim_ns)));
    args.push(("wall_ns".to_owned(), Value::U64(rec.wall_ns)));
    let mut map: Vec<(String, Value)> = vec![
        ("name".to_owned(), Value::Str(rec.event.name().to_owned())),
        ("cat".to_owned(), Value::Str("tinman".to_owned())),
        ("ph".to_owned(), Value::Str(phase_str(rec.phase).to_owned())),
        // Fractional microseconds keep sub-µs event ordering visible.
        ("ts".to_owned(), Value::F64(rec.sim_ns as f64 / 1_000.0)),
        ("pid".to_owned(), Value::U64(1)),
        ("tid".to_owned(), Value::U64(rec.track)),
    ];
    if rec.phase == TracePhase::Instant {
        // Thread-scoped instant, the narrowest marker Perfetto draws.
        map.push(("s".to_owned(), Value::Str("t".to_owned())));
    }
    map.push(("args".to_owned(), Value::Map(args)));
    Value::Map(map)
}

/// The records as a Chrome `trace_event` document ([`Value`] form).
pub fn chrome_trace_value(records: &[TraceRecord]) -> Value {
    Value::Map(vec![
        ("traceEvents".to_owned(), Value::Seq(records.iter().map(record_value).collect())),
        ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
        (
            "otherData".to_owned(),
            Value::Map(vec![(
                "clock".to_owned(),
                Value::Str("ts is simulated time; wall time is in args.wall_ns".to_owned()),
            )]),
        ),
    ])
}

/// The records as Chrome `trace_event` JSON text — save to a file and
/// open in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    serde_json::to_string_pretty(&chrome_trace_value(records)).unwrap_or_else(|_| "{}".to_owned())
}

/// The records as JSON-lines: one compact object per record, in order —
/// the grep/jq-friendly form.
pub fn json_lines(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        let mut map: Vec<(String, Value)> = vec![
            ("seq".to_owned(), Value::U64(rec.seq)),
            ("track".to_owned(), Value::U64(rec.track)),
            ("sim_ns".to_owned(), Value::U64(rec.sim_ns)),
            ("wall_ns".to_owned(), Value::U64(rec.wall_ns)),
            ("phase".to_owned(), Value::Str(phase_str(rec.phase).to_owned())),
            ("event".to_owned(), Value::Str(rec.event.name().to_owned())),
            ("args".to_owned(), Value::Map(rec.event.args())),
        ];
        let line = serde_json::to_string(&Value::Map(std::mem::take(&mut map)))
            .unwrap_or_else(|_| "{}".to_owned());
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::sink::TraceHandle;
    use tinman_sim::{SimClock, SimDuration};

    fn sample_records() -> Vec<TraceRecord> {
        let clock = SimClock::new();
        let (h, sink) = TraceHandle::ring(16);
        h.span_start(0, clock.now(), "run_app");
        clock.advance(SimDuration::from_micros(3));
        h.emit(
            clock.now(),
            TraceEvent::OffloadTrigger { labels: vec![0], func: "main".to_owned(), pc: 7 },
        );
        clock.advance(SimDuration::from_micros(2));
        h.span_end(0, clock.now(), "run_app");
        sink.snapshot()
    }

    #[test]
    fn chrome_trace_round_trips_and_has_required_keys() {
        let json = chrome_trace_json(&sample_records());
        let doc: Value = serde_json::from_str(&json).expect("exporter emits valid JSON");
        let map = doc.as_map().expect("object document");
        let events = map
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_seq())
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        for ev in events {
            let fields = ev.as_map().expect("event object");
            for key in ["name", "ph", "ts", "pid", "tid", "args"] {
                assert!(fields.iter().any(|(k, _)| k == key), "missing {key}");
            }
        }
    }

    #[test]
    fn chrome_phases_and_sim_microseconds() {
        let doc = chrome_trace_value(&sample_records());
        let events = doc.as_map().unwrap()[0].1.as_seq().unwrap();
        let ph = |i: usize| match &events[i].as_map().unwrap()[2].1 {
            Value::Str(s) => s.clone(),
            other => panic!("ph not a string: {other:?}"),
        };
        assert_eq!(ph(0), "B");
        assert_eq!(ph(1), "i");
        assert_eq!(ph(2), "E");
        match &events[1].as_map().unwrap()[3].1 {
            Value::F64(ts) => assert!((*ts - 3.0).abs() < 1e-9, "ts is sim microseconds"),
            other => panic!("ts not a number: {other:?}"),
        }
    }

    #[test]
    fn json_lines_parse_one_per_record() {
        let recs = sample_records();
        let text = json_lines(&recs);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), recs.len());
        for line in lines {
            let v: Value = serde_json::from_str(line).expect("each line is JSON");
            assert!(v.as_map().is_some());
        }
    }
}
