//! The typed event taxonomy.
//!
//! Every policy- or measurement-relevant thing that happens in a TinMan
//! run has a variant here: the paper's evaluation (§6) is built entirely
//! from these occurrences, and a flow-enforcement system needs an audit
//! trail of each one. Events carry structured payloads rather than
//! preformatted strings so exporters and tests can match on fields.

use serde_json::Value;

/// One policy- or measurement-relevant occurrence in a TinMan run.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// The client touched a tainted placeholder and must offload (§3.1).
    OffloadTrigger {
        /// The taint labels (cor classes) on the touched value.
        labels: Vec<u8>,
        /// The function whose frame triggered.
        func: String,
        /// Program counter at the trigger.
        pc: u64,
    },
    /// One DSM synchronization, either direction (§3.1, Table 3).
    DsmSync {
        /// Why the sync happened (`SyncCause` name).
        cause: &'static str,
        /// True for the initial full-heap sync, false for dirty syncs.
        init: bool,
        /// Serialized packet bytes on the wire.
        bytes: u64,
    },
    /// The trusted node rebuilt the client's TLS session from exported
    /// state — SSL session injection (§3.2, Figure 8 step 2).
    SslInjection {
        /// Destination domain of the cor-bearing send.
        domain: String,
        /// Serialized size of the exported session state.
        state_bytes: u64,
    },
    /// The node swapped a diverted segment's placeholder payload for the
    /// sealed cor — TCP payload replacement (§3.3, Figure 8 step 4).
    TcpPayloadReplace {
        /// Payload bytes replaced (old and new are equal length).
        bytes: u64,
    },
    /// Execution returned from the trusted node to the client.
    MigrateBack {
        /// Why (`SyncCause` name: taint idle or non-offloadable native).
        cause: &'static str,
    },
    /// The egress filter diverted a marked segment to the trusted node.
    NetRedirect {
        /// Wire bytes of the diverted segment.
        bytes: u64,
    },
    /// The trusted node re-injected a reframed segment as the client.
    NetInject {
        /// Wire bytes of the injected segment.
        bytes: u64,
    },
    /// The fleet scheduler placed a session on its primary shard.
    FleetPlacement {
        /// Session id.
        session: u64,
        /// Primary shard index.
        node: u64,
    },
    /// A session left a shard (down or erroring) for the next replica.
    FleetFailover {
        /// Session id.
        session: u64,
        /// The shard being abandoned.
        node: u64,
        /// 1-based attempt number that failed.
        attempt: u32,
    },
    /// Simulated retry backoff charged to a session.
    FleetBackoff {
        /// Session id.
        session: u64,
        /// 0-based retry attempt.
        attempt: u32,
        /// Simulated delay charged, nanoseconds.
        delay_ns: u64,
    },
    /// The node pool clamped a requested node count to keep shards at
    /// least four labels wide.
    PoolClamp {
        /// Nodes the config asked for.
        requested: u64,
        /// Nodes the pool actually built.
        effective: u64,
    },
    /// The chaos layer armed a fault for a session attempt.
    ChaosInject {
        /// Fault kind: `"crash"`, `"partition"`, `"sync_timeout"`,
        /// `"packet_loss"`, `"packet_corrupt"`, `"packet_delay"`,
        /// `"link_flap"`, `"vault_mid_commit"`, `"vault_torn_tail"`,
        /// `"vault_compaction"`, `"replica_lag"`, `"router_crash"`,
        /// `"nat_table_flush"`, `"dns_outage"`, or `"handoff_storm"`.
        kind: &'static str,
        /// Target node index.
        node: u64,
        /// Session id the fault applies to.
        session: u64,
    },
    /// A node's circuit breaker changed state on the session-id axis.
    BreakerTransition {
        /// Node index.
        node: u64,
        /// First session id observing the new state.
        session: u64,
        /// Previous state name (`closed`/`open`/`half_open`).
        from: &'static str,
        /// New state name.
        to: &'static str,
    },
    /// A crashed session resumed on a replica from its DSM checkpoint.
    SessionReplay {
        /// Session id.
        session: u64,
        /// Replica node index the replay runs on.
        node: u64,
        /// 1-based attempt number of the replay.
        attempt: u32,
        /// Checkpoint credit: session time already covered by completed
        /// syncs, nanoseconds.
        resume_ns: u64,
    },
    /// A session exhausted its retry or deadline budget and degraded to a
    /// placeholder-only failure (the fail-closed guarantee).
    FailClosed {
        /// Session id.
        session: u64,
        /// Why: `"attempts_exhausted"`, `"deadline"`, `"stale_replica"`
        /// (a lagging vault replica could not catch up within the
        /// deadline budget), `"policy_denied"` (the tenant
        /// declassification policy refused the session's flow),
        /// `"unattested"` (no attested node was available to hold
        /// tenant plaintext), `"revoked_key"` (a compromise-forced
        /// key rotation could not complete within the deadline and the
        /// session refused to serve under the suspect epoch), or
        /// `"no_region"` (after a live migration, no attested,
        /// caught-up, policy-admissible target node existed inside the
        /// deadline — the checkpointed guest was discarded and the
        /// source heap scrubbed).
        reason: &'static str,
    },
    /// A live migration: a draining or dying node checkpointed its
    /// in-flight guest at a DSM sync point and a peer node resumed it.
    Migration {
        /// Session id that migrated.
        session: u64,
        /// Source node index (the drained/dying node).
        from_node: u64,
        /// Target node index that resumed the checkpoint.
        to_node: u64,
        /// Serialized checkpoint size shipped through the replica
        /// channel, bytes.
        bytes: u64,
        /// Checkpoint credit at resume: session time already covered,
        /// nanoseconds.
        resume_ns: u64,
    },
    /// A node's membership state changed on the session-id axis
    /// (`serving`/`draining`/`evacuated`/`decommissioned`/`down`/
    /// `catching_up`).
    MembershipTransition {
        /// Node index.
        node: u64,
        /// First session id observing the new state.
        session: u64,
        /// Previous state name.
        from: &'static str,
        /// New state name.
        to: &'static str,
    },
    /// The origin-server dedup suppressed re-sent payload replacements
    /// from a replayed session.
    DeliveryDedup {
        /// Session id.
        session: u64,
        /// Re-deliveries suppressed on this attempt.
        duplicates: u64,
    },
    /// A session's durability audit recovered the node's cor vault after
    /// an injected (or clean-shutdown) crash.
    VaultRecovery {
        /// Session id whose audit ran the recovery.
        session: u64,
        /// Node index whose vault recovered.
        node: u64,
        /// Highest LSN the recovered store reached.
        applied_lsn: u64,
        /// True if a torn final write was truncated away.
        torn_repaired: bool,
        /// Duplicated appends skipped by the idempotent apply.
        duplicates: u64,
    },
    /// Cor-aware failover caught a lagging replica up before letting it
    /// serve (anti-entropy charged against the session's deadline).
    VaultCatchUp {
        /// Session id that paid for the catch-up.
        session: u64,
        /// Node index whose replica was behind.
        node: u64,
        /// LSNs replayed to close the gap.
        lsns: u64,
        /// Simulated catch-up cost charged, nanoseconds.
        cost_ns: u64,
    },
    /// The guard killed a guest that exhausted a session budget; its node
    /// heap was scrubbed and the session failed closed.
    GuestKilled {
        /// Session id.
        session: u64,
        /// Node index the guest was running on.
        node: u64,
        /// Which budget was exhausted (`KillReason` name).
        reason: &'static str,
    },
    /// Fleet admission shed a session before placement because the target
    /// node's in-flight budget reservations exceeded its capacity.
    SessionShed {
        /// Session id.
        session: u64,
        /// The overloaded node index.
        node: u64,
        /// Why: currently always `"overloaded"`.
        reason: &'static str,
    },
    /// The tenant declassification policy engine decided a session's
    /// flow (emitted for denials, and for allows when tracing them is
    /// cheap enough to matter).
    TenantPolicyDecision {
        /// Session id.
        session: u64,
        /// Raw tenant number the session belongs to.
        tenant: u64,
        /// True when the flow proceeds.
        allowed: bool,
        /// Stable verdict reason (`DeclassVerdict::reason` string).
        reason: &'static str,
    },
    /// The attestation gate refused to place tenant plaintext on a node
    /// that could not prove it runs the full four-class taint engine.
    AttestationRefused {
        /// Session id.
        session: u64,
        /// Raw tenant number whose plaintext was withheld.
        tenant: u64,
        /// The unattested node index.
        node: u64,
    },
    /// A tenant's key hierarchy rotated to a new epoch; the session
    /// paid the re-encryption cost before serving.
    TenantKeyRotation {
        /// Session id that paid for the rotation.
        session: u64,
        /// Raw tenant number whose keys rotated.
        tenant: u64,
        /// The new epoch sessions seal under from here on.
        epoch: u64,
        /// True when the rotation was forced by a suspected compromise.
        forced: bool,
    },
    /// The block tier compiled an app image for node-side execution
    /// (once per warm image; subsequent segments reuse the cache).
    TierCompile {
        /// Functions decoded.
        functions: u64,
        /// Basic blocks formed.
        blocks: u64,
        /// Ops in the final IR after the pass pipeline.
        ops: u64,
        /// Constant-folding rewrites applied.
        folded: u64,
        /// Dead stores eliminated.
        eliminated: u64,
        /// Superinstructions fused.
        fused: u64,
    },
    /// One node segment ran under the block tier; counters are the
    /// segment's deltas (not cumulative).
    TierSegment {
        /// Blocks executed natively.
        block_runs: u64,
        /// Instructions retired through the fast path.
        fast_insns: u64,
        /// Instructions retired by deoptimized stepping.
        stepped_insns: u64,
        /// Block-entry precondition failures.
        deopts: u64,
    },
    /// A mobility handoff was applied mid-session: the radio switched
    /// link profiles, the air went dark for the blackout, and (when
    /// `rebind` is set) the host's NAT bindings were flushed with
    /// transparent re-allocation allowed.
    Handoff {
        /// The link profile after the switch (`"wifi"`, `"3g"`, ...).
        link: &'static str,
        /// Radio blackout duration in simulated nanoseconds.
        blackout_ns: u64,
        /// True when the handoff flushed-and-rebound NAT state.
        rebind: bool,
    },
    /// A segment's source address was rewritten through a NAT gateway's
    /// connection-tracking table on its way to the untrusted wire.
    NatRewrite {
        /// The public source port the segment now carries.
        port: u16,
    },
    /// A DNS resolution failed closed inside a resolver outage window.
    DnsFault {
        /// The domain that could not be resolved.
        domain: String,
    },
    /// A named span; appears with [`crate::TracePhase::Begin`] and
    /// [`crate::TracePhase::End`] records (Chrome `B`/`E` semantics:
    /// spans nest per track, stack-wise).
    Span {
        /// Span name, e.g. `"run_app"` or `"offload"`.
        name: String,
    },
}

impl TraceEvent {
    /// Stable snake_case name, used as the exported event name.
    pub fn name(&self) -> &str {
        match self {
            TraceEvent::OffloadTrigger { .. } => "offload_trigger",
            TraceEvent::DsmSync { .. } => "dsm_sync",
            TraceEvent::SslInjection { .. } => "ssl_injection",
            TraceEvent::TcpPayloadReplace { .. } => "tcp_payload_replace",
            TraceEvent::MigrateBack { .. } => "migrate_back",
            TraceEvent::NetRedirect { .. } => "net_redirect",
            TraceEvent::NetInject { .. } => "net_inject",
            TraceEvent::FleetPlacement { .. } => "fleet_placement",
            TraceEvent::FleetFailover { .. } => "fleet_failover",
            TraceEvent::FleetBackoff { .. } => "fleet_backoff",
            TraceEvent::PoolClamp { .. } => "pool_clamp",
            TraceEvent::ChaosInject { .. } => "chaos_inject",
            TraceEvent::BreakerTransition { .. } => "breaker_transition",
            TraceEvent::SessionReplay { .. } => "session_replay",
            TraceEvent::FailClosed { .. } => "fail_closed",
            TraceEvent::Migration { .. } => "migration",
            TraceEvent::MembershipTransition { .. } => "membership_transition",
            TraceEvent::DeliveryDedup { .. } => "delivery_dedup",
            TraceEvent::VaultRecovery { .. } => "vault_recovery",
            TraceEvent::VaultCatchUp { .. } => "vault_catch_up",
            TraceEvent::GuestKilled { .. } => "guest_killed",
            TraceEvent::SessionShed { .. } => "session_shed",
            TraceEvent::TenantPolicyDecision { .. } => "tenant_policy_decision",
            TraceEvent::AttestationRefused { .. } => "attestation_refused",
            TraceEvent::TenantKeyRotation { .. } => "tenant_key_rotation",
            TraceEvent::TierCompile { .. } => "tier_compile",
            TraceEvent::TierSegment { .. } => "tier_segment",
            TraceEvent::Handoff { .. } => "handoff",
            TraceEvent::NatRewrite { .. } => "nat_rewrite",
            TraceEvent::DnsFault { .. } => "dns_fault",
            TraceEvent::Span { name } => name,
        }
    }

    /// The structured payload as insertion-ordered JSON map entries
    /// (exporters put these under `args`).
    pub fn args(&self) -> Vec<(String, Value)> {
        let s = |v: &str| Value::Str(v.to_owned());
        match self {
            TraceEvent::OffloadTrigger { labels, func, pc } => vec![
                (
                    "labels".to_owned(),
                    Value::Seq(labels.iter().map(|&l| Value::U64(l as u64)).collect()),
                ),
                ("func".to_owned(), s(func)),
                ("pc".to_owned(), Value::U64(*pc)),
            ],
            TraceEvent::DsmSync { cause, init, bytes } => vec![
                ("cause".to_owned(), s(cause)),
                ("init".to_owned(), Value::Bool(*init)),
                ("bytes".to_owned(), Value::U64(*bytes)),
            ],
            TraceEvent::SslInjection { domain, state_bytes } => vec![
                ("domain".to_owned(), s(domain)),
                ("state_bytes".to_owned(), Value::U64(*state_bytes)),
            ],
            TraceEvent::TcpPayloadReplace { bytes } => {
                vec![("bytes".to_owned(), Value::U64(*bytes))]
            }
            TraceEvent::MigrateBack { cause } => vec![("cause".to_owned(), s(cause))],
            TraceEvent::NetRedirect { bytes } => vec![("bytes".to_owned(), Value::U64(*bytes))],
            TraceEvent::NetInject { bytes } => vec![("bytes".to_owned(), Value::U64(*bytes))],
            TraceEvent::FleetPlacement { session, node } => vec![
                ("session".to_owned(), Value::U64(*session)),
                ("node".to_owned(), Value::U64(*node)),
            ],
            TraceEvent::FleetFailover { session, node, attempt } => vec![
                ("session".to_owned(), Value::U64(*session)),
                ("node".to_owned(), Value::U64(*node)),
                ("attempt".to_owned(), Value::U64(*attempt as u64)),
            ],
            TraceEvent::FleetBackoff { session, attempt, delay_ns } => vec![
                ("session".to_owned(), Value::U64(*session)),
                ("attempt".to_owned(), Value::U64(*attempt as u64)),
                ("delay_ns".to_owned(), Value::U64(*delay_ns)),
            ],
            TraceEvent::PoolClamp { requested, effective } => vec![
                ("requested".to_owned(), Value::U64(*requested)),
                ("effective".to_owned(), Value::U64(*effective)),
            ],
            TraceEvent::ChaosInject { kind, node, session } => vec![
                ("kind".to_owned(), s(kind)),
                ("node".to_owned(), Value::U64(*node)),
                ("session".to_owned(), Value::U64(*session)),
            ],
            TraceEvent::BreakerTransition { node, session, from, to } => vec![
                ("node".to_owned(), Value::U64(*node)),
                ("session".to_owned(), Value::U64(*session)),
                ("from".to_owned(), s(from)),
                ("to".to_owned(), s(to)),
            ],
            TraceEvent::SessionReplay { session, node, attempt, resume_ns } => vec![
                ("session".to_owned(), Value::U64(*session)),
                ("node".to_owned(), Value::U64(*node)),
                ("attempt".to_owned(), Value::U64(*attempt as u64)),
                ("resume_ns".to_owned(), Value::U64(*resume_ns)),
            ],
            TraceEvent::FailClosed { session, reason } => {
                vec![("session".to_owned(), Value::U64(*session)), ("reason".to_owned(), s(reason))]
            }
            TraceEvent::Migration { session, from_node, to_node, bytes, resume_ns } => vec![
                ("session".to_owned(), Value::U64(*session)),
                ("from_node".to_owned(), Value::U64(*from_node)),
                ("to_node".to_owned(), Value::U64(*to_node)),
                ("bytes".to_owned(), Value::U64(*bytes)),
                ("resume_ns".to_owned(), Value::U64(*resume_ns)),
            ],
            TraceEvent::MembershipTransition { node, session, from, to } => vec![
                ("node".to_owned(), Value::U64(*node)),
                ("session".to_owned(), Value::U64(*session)),
                ("from".to_owned(), s(from)),
                ("to".to_owned(), s(to)),
            ],
            TraceEvent::DeliveryDedup { session, duplicates } => vec![
                ("session".to_owned(), Value::U64(*session)),
                ("duplicates".to_owned(), Value::U64(*duplicates)),
            ],
            TraceEvent::VaultRecovery { session, node, applied_lsn, torn_repaired, duplicates } => {
                vec![
                    ("session".to_owned(), Value::U64(*session)),
                    ("node".to_owned(), Value::U64(*node)),
                    ("applied_lsn".to_owned(), Value::U64(*applied_lsn)),
                    ("torn_repaired".to_owned(), Value::Bool(*torn_repaired)),
                    ("duplicates".to_owned(), Value::U64(*duplicates)),
                ]
            }
            TraceEvent::VaultCatchUp { session, node, lsns, cost_ns } => vec![
                ("session".to_owned(), Value::U64(*session)),
                ("node".to_owned(), Value::U64(*node)),
                ("lsns".to_owned(), Value::U64(*lsns)),
                ("cost_ns".to_owned(), Value::U64(*cost_ns)),
            ],
            TraceEvent::GuestKilled { session, node, reason } => vec![
                ("session".to_owned(), Value::U64(*session)),
                ("node".to_owned(), Value::U64(*node)),
                ("reason".to_owned(), s(reason)),
            ],
            TraceEvent::SessionShed { session, node, reason } => vec![
                ("session".to_owned(), Value::U64(*session)),
                ("node".to_owned(), Value::U64(*node)),
                ("reason".to_owned(), s(reason)),
            ],
            TraceEvent::TenantPolicyDecision { session, tenant, allowed, reason } => vec![
                ("session".to_owned(), Value::U64(*session)),
                ("tenant".to_owned(), Value::U64(*tenant)),
                ("allowed".to_owned(), Value::Bool(*allowed)),
                ("reason".to_owned(), s(reason)),
            ],
            TraceEvent::AttestationRefused { session, tenant, node } => vec![
                ("session".to_owned(), Value::U64(*session)),
                ("tenant".to_owned(), Value::U64(*tenant)),
                ("node".to_owned(), Value::U64(*node)),
            ],
            TraceEvent::TenantKeyRotation { session, tenant, epoch, forced } => vec![
                ("session".to_owned(), Value::U64(*session)),
                ("tenant".to_owned(), Value::U64(*tenant)),
                ("epoch".to_owned(), Value::U64(*epoch)),
                ("forced".to_owned(), Value::Bool(*forced)),
            ],
            TraceEvent::TierCompile { functions, blocks, ops, folded, eliminated, fused } => vec![
                ("functions".to_owned(), Value::U64(*functions)),
                ("blocks".to_owned(), Value::U64(*blocks)),
                ("ops".to_owned(), Value::U64(*ops)),
                ("folded".to_owned(), Value::U64(*folded)),
                ("eliminated".to_owned(), Value::U64(*eliminated)),
                ("fused".to_owned(), Value::U64(*fused)),
            ],
            TraceEvent::TierSegment { block_runs, fast_insns, stepped_insns, deopts } => vec![
                ("block_runs".to_owned(), Value::U64(*block_runs)),
                ("fast_insns".to_owned(), Value::U64(*fast_insns)),
                ("stepped_insns".to_owned(), Value::U64(*stepped_insns)),
                ("deopts".to_owned(), Value::U64(*deopts)),
            ],
            TraceEvent::Handoff { link, blackout_ns, rebind } => vec![
                ("link".to_owned(), s(link)),
                ("blackout_ns".to_owned(), Value::U64(*blackout_ns)),
                ("rebind".to_owned(), Value::Bool(*rebind)),
            ],
            TraceEvent::NatRewrite { port } => {
                vec![("port".to_owned(), Value::U64(u64::from(*port)))]
            }
            TraceEvent::DnsFault { domain } => vec![("domain".to_owned(), s(domain))],
            TraceEvent::Span { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        let e = TraceEvent::DsmSync { cause: "offload_trigger", init: true, bytes: 9 };
        assert_eq!(e.name(), "dsm_sync");
        let sp = TraceEvent::Span { name: "offload".to_owned() };
        assert_eq!(sp.name(), "offload");
        let m =
            TraceEvent::Migration { session: 1, from_node: 0, to_node: 2, bytes: 64, resume_ns: 7 };
        assert_eq!(m.name(), "migration");
        let t = TraceEvent::MembershipTransition {
            node: 0,
            session: 4,
            from: "serving",
            to: "draining",
        };
        assert_eq!(t.name(), "membership_transition");
    }

    #[test]
    fn args_carry_typed_fields() {
        let e = TraceEvent::FleetBackoff { session: 3, attempt: 1, delay_ns: 500 };
        let args = e.args();
        assert_eq!(args[0], ("session".to_owned(), Value::U64(3)));
        assert_eq!(args[2], ("delay_ns".to_owned(), Value::U64(500)));
        let m =
            TraceEvent::Migration { session: 1, from_node: 0, to_node: 2, bytes: 64, resume_ns: 7 };
        let margs = m.args();
        assert_eq!(margs[1], ("from_node".to_owned(), Value::U64(0)));
        assert_eq!(margs[2], ("to_node".to_owned(), Value::U64(2)));
        assert_eq!(margs[4], ("resume_ns".to_owned(), Value::U64(7)));
    }
}
