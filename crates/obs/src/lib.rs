#![warn(missing_docs)]
//! **tinman-obs** — structured tracing and metrics for the whole stack.
//!
//! TinMan's evaluation is built entirely from runtime measurements
//! (offload counts, DSM sync causes, per-phase latency), and a
//! flow-enforcement system needs an audit trail of every policy-relevant
//! event. This crate provides both without touching the simulation:
//!
//! - [`TraceEvent`] — the typed event taxonomy (offload triggers with
//!   taint labels, DSM syncs with cause, SSL injection, TCP payload
//!   replacement, migrate-back, fleet placement/failover/backoff).
//! - [`TraceHandle`] / [`TraceSink`] — the emitter the stack carries and
//!   the destinations: a no-op sink (the default — one branch on the hot
//!   path, never reads any clock, so determinism tests stay
//!   byte-identical) and a bounded [`RingBufferSink`].
//! - Dual clocks: every [`TraceRecord`] is stamped with simulated **and**
//!   wall time. Simulated time is the deterministic evaluation timeline;
//!   wall time shows what the host (worker threads, admission stalls)
//!   actually did.
//! - Spans: [`TraceHandle::span_start`]/[`TraceHandle::span_end`] nest
//!   stack-wise per track, Chrome `B`/`E` style; [`SpanGuard`] closes on
//!   every exit path.
//! - Exporters: [`chrome_trace_json`] (loads in `chrome://tracing` /
//!   Perfetto) and [`json_lines`].
//! - [`MetricsRegistry`] — named counters and histograms that reports
//!   read from instead of hand-threaded counters; sums commute and
//!   histograms sort before summarizing, so registry-derived numbers are
//!   deterministic under any worker interleaving.

pub mod event;
pub mod export;
pub mod metrics;
pub mod sink;

pub use event::TraceEvent;
pub use export::{chrome_trace_json, chrome_trace_value, json_lines};
pub use metrics::{HistogramStats, MetricsRegistry};
pub use sink::{RingBufferSink, SpanGuard, TraceHandle, TracePhase, TraceRecord, TraceSink};
