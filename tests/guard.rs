//! Guard acceptance: per-session resource governance and hostile-guest
//! hardening, end to end through the public facade.
//!
//! The contract under test: a guest engineered to exhaust any one budget
//! (fuel, heap, call depth, DSM syncs, deadline) dies with a typed
//! [`KillReason`] — deterministically, at the same simulated instant on
//! every run — its node heap is scrubbed of every cor byte before the
//! error surfaces, and the fleet around it keeps serving benign sessions
//! and reporting byte-identical simulated aggregates at any worker
//! count.

use std::collections::HashMap;

use tinman::chaos::{ChaosEvent, ChaosPlan, HostileGuestKind};
use tinman::core::{Mode, RuntimeError};
use tinman::fleet::{
    build_hostile_world, expected_kill, fleet_policy, run_fleet_chaos, FleetConfig, FleetObs,
    FleetReport, LinkKind, SessionSpec, WorkloadKind,
};
use tinman::guard::KillReason;
use tinman::obs::TraceHandle;
use tinman::sim::{LinkProfile, SimDuration, SimTime};

const ALL_KINDS: [HostileGuestKind; 4] = [
    HostileGuestKind::Spin,
    HostileGuestKind::HeapBomb,
    HostileGuestKind::DeepRecursion,
    HostileGuestKind::SyncFlood,
];

fn spec(id: u64) -> SessionSpec {
    SessionSpec {
        id,
        workload: WorkloadKind::Login(0),
        link: LinkKind::Wifi,
        seed: 1000 + id,
        tenant: 0,
    }
}

/// Runs one hostile guest to its kill and returns the error, the sim
/// instant it landed at, and the world (for residue inspection).
fn run_hostile(kind: HostileGuestKind) -> (RuntimeError, SimDuration, tinman::fleet::SessionWorld) {
    let s = spec(kind as u64);
    let mut world =
        build_hostile_world(&s, kind, (0, 16), LinkProfile::wifi(), &TraceHandle::noop())
            .expect("hostile world builds");
    let err = world
        .rt
        .run_app(&world.app, Mode::TinMan, &HashMap::new())
        .expect_err("a hostile guest must never complete");
    let at = world.rt.clock().now().since(SimTime::ZERO);
    (err, at, world)
}

fn config(sessions: usize, workers: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(sessions, workers);
    cfg.nodes = 4;
    cfg
}

fn simulated(report: &FleetReport) -> String {
    serde_json::to_string(&report.simulated_value()).unwrap()
}

/// Every hostile kind dies against exactly the budget it attacks, at the
/// same simulated instant on every run, and the node heap it ran on is
/// scrubbed of the session's cor before the kill surfaces.
#[test]
fn every_hostile_kind_is_killed_deterministically_and_scrubbed() {
    for kind in ALL_KINDS {
        let (err, at, world) = run_hostile(kind);
        match err {
            RuntimeError::GuestKilled { reason } => {
                assert_eq!(reason, expected_kill(kind), "{kind:?} dies against its own budget");
            }
            other => panic!("{kind:?}: expected a guest kill, got {other:?}"),
        }
        let secret = &world.secrets[0];
        assert!(
            world.rt.scan_node_residue(secret).is_empty(),
            "{kind:?}: zero cor bytes may survive the kill on the node heap"
        );
        // Determinism: a second run dies identically, at the same instant.
        let (err2, at2, _world2) = run_hostile(kind);
        assert_eq!(format!("{err:?}"), format!("{err2:?}"), "{kind:?} kill is deterministic");
        assert_eq!(at, at2, "{kind:?} kill lands at the same simulated instant");
    }
}

/// The wall/sim deadline is a budget like any other: a guest that would
/// be well-behaved still dies (typed, scrubbed) when its deadline is set
/// below what the session needs.
#[test]
fn deadline_watchdog_kills_an_overdue_guest() {
    let s = spec(7);
    let mut world = build_hostile_world(
        &s,
        HostileGuestKind::Spin,
        (0, 16),
        LinkProfile::wifi(),
        &TraceHandle::noop(),
    )
    .expect("hostile world builds");
    // Re-arm with an impossible deadline; it must trip before the (much
    // larger) fuel budget does.
    let mut policy = fleet_policy();
    policy.deadline = Some(SimDuration::from_nanos(1));
    world.rt.set_guard(policy);
    match world.rt.run_app(&world.app, Mode::TinMan, &HashMap::new()) {
        Err(RuntimeError::GuestKilled { reason }) => assert_eq!(reason, KillReason::Deadline),
        other => panic!("expected a deadline kill, got {other:?}"),
    }
    assert!(world.rt.scan_node_residue(&world.secrets[0]).is_empty());
}

/// A node that killed a hostile guest keeps serving: sessions outside
/// the hostile window complete normally on the same pool, and the
/// aggregate books every session as exactly one of ok / killed / shed.
#[test]
fn nodes_serve_benign_sessions_after_kills() {
    let cfg = config(12, 4);
    let mut plan = ChaosPlan::empty();
    // Sessions [0, 4) run a heap bomb; the other eight are scripted.
    plan.events.push(ChaosEvent::HostileGuest {
        kind: HostileGuestKind::HeapBomb,
        from_session: 0,
        until_session: 4,
    });
    let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("fleet runs");

    assert!(report.guest_kills > 0, "the hostile window produced kills");
    assert!(report.ok > 0, "benign sessions after the kills still complete");
    assert_eq!(
        report.ok + report.guest_kills + report.shed_sessions,
        report.sessions as u64,
        "every session is exactly one of ok / killed / shed"
    );
    assert_eq!(report.residue_violations, 0, "kills leave no cor residue anywhere");
    assert_eq!(
        report.budget_exhaustions.iter().sum::<u64>(),
        report.guest_kills,
        "every kill is attributed to exactly one budget"
    );
}

/// The headline determinism bar: an all-hostile fleet run — kills,
/// sheds, scrubs and all — serializes to byte-identical simulated
/// aggregates at any worker count.
#[test]
fn hostile_reports_are_byte_identical_across_worker_counts() {
    let plan = ChaosPlan::canned("hostile-guest").expect("canned plan");
    let base = simulated(&run_fleet_chaos(&config(8, 1), &plan, &FleetObs::default()).unwrap());
    for workers in [4, 8] {
        let other =
            simulated(&run_fleet_chaos(&config(8, workers), &plan, &FleetObs::default()).unwrap());
        assert_eq!(base, other, "workers={workers} diverged from workers=1");
    }

    // And the blob carries the guard columns the bench prints.
    assert!(base.contains("\"guest_kills\""));
    assert!(base.contains("\"budget_exhaustions\""));
}
