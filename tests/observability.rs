//! Observability guarantees: a traced login run emits the paper's event
//! sequence in causal order, tracing never perturbs the simulated
//! result, and the Chrome trace export is well-formed JSON.

use std::collections::HashMap;

use tinman::apps::logins::{build_login_app, LoginAppSpec};
use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::CorStore;
use tinman::core::runtime::{Mode, RunReport, TinmanConfig, TinmanRuntime};
use tinman::fleet::{run_fleet, run_fleet_obs, FaultPlan, FleetConfig, FleetObs};
use tinman::obs::{chrome_trace_json, TraceHandle, TraceRecord};
use tinman::sim::{LinkProfile, SimDuration};
use tinman::vm::Value;

const PASSWORD: &str = "hunter2-sUp3r-s3cret";

fn inputs() -> HashMap<String, String> {
    HashMap::from([("username".to_owned(), "alice".to_owned())])
}

/// Runs one Table-3 login through the full stack with the given trace
/// handle and returns its report.
fn traced_login(trace: &TraceHandle) -> RunReport {
    let spec = &LoginAppSpec::table3()[0];
    let mut store = CorStore::new(99);
    store.register(PASSWORD, spec.cor_description, &[spec.domain]).expect("label space");
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    rt.set_trace(trace.clone(), 0);
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: PASSWORD.to_owned(),
            hash_login: spec.hash_login,
            think: SimDuration::from_millis(120),
            page_bytes: 64_000,
        },
    );
    let app = build_login_app(spec);
    let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("login runs");
    assert_eq!(report.result, Value::Int(1), "login succeeds");
    report
}

fn first_index(records: &[TraceRecord], name: &str) -> usize {
    records
        .iter()
        .position(|r| r.event.name() == name)
        .unwrap_or_else(|| panic!("no `{name}` event in the trace"))
}

#[test]
fn login_emits_the_paper_event_sequence() {
    let (trace, sink) = TraceHandle::ring(4096);
    traced_login(&trace);
    let records = sink.snapshot();
    assert!(!records.is_empty(), "a traced login produces events");

    // The §3 pipeline, in causal order: taint trigger → execution
    // offload (DSM syncs) → SSL session injection → TCP payload
    // replacement → migrate-back.
    let trigger = first_index(&records, "offload_trigger");
    let sync = first_index(&records, "dsm_sync");
    let injection = first_index(&records, "ssl_injection");
    let replace = first_index(&records, "tcp_payload_replace");
    let back = first_index(&records, "migrate_back");
    assert!(trigger < sync, "taint trigger precedes the first DSM sync");
    assert!(sync < injection, "state migrates before the SSL session is injected");
    assert!(injection < replace, "injection precedes payload replacement");
    assert!(replace < back, "execution migrates back only after the real bytes go out");

    // The trigger names the offloaded function and carries taint labels.
    match &records[trigger].event {
        tinman::obs::TraceEvent::OffloadTrigger { labels, func, .. } => {
            assert!(!labels.is_empty(), "the trigger carries the tainted labels");
            assert!(!func.is_empty(), "the trigger names the offloaded function");
        }
        other => panic!("expected OffloadTrigger, got {other:?}"),
    }

    // Dual-clock stamping: simulated time is monotone over the single
    // track, and every record also carries a wall-clock stamp.
    assert!(
        records.windows(2).all(|w| w[0].sim_ns <= w[1].sim_ns),
        "simulated timestamps are monotone within one session"
    );
    assert!(records.iter().all(|r| r.wall_ns > 0), "wall stamps present");

    // The run is wrapped in a span pair.
    use tinman::obs::TracePhase;
    assert!(records.iter().any(|r| r.phase == TracePhase::Begin));
    assert!(records.iter().any(|r| r.phase == TracePhase::End));
}

#[test]
fn tracing_does_not_perturb_the_simulated_run() {
    let silent = traced_login(&TraceHandle::noop());
    let (trace, sink) = TraceHandle::ring(4096);
    let traced = traced_login(&trace);
    assert!(!sink.snapshot().is_empty());

    assert_eq!(silent.latency, traced.latency);
    assert_eq!(silent.offloads, traced.offloads);
    assert_eq!(silent.node_methods, traced.node_methods);
    assert_eq!(silent.client_methods, traced.client_methods);
    assert_eq!(silent.dsm.sync_count, traced.dsm.sync_count);
    assert_eq!(silent.traffic.tx_bytes, traced.traffic.tx_bytes);
    assert_eq!(silent.traffic.rx_bytes, traced.traffic.rx_bytes);
    assert_eq!(silent.energy.as_microjoules(), traced.energy.as_microjoules());
}

#[test]
fn tracing_does_not_perturb_the_fleet_aggregate() {
    let mut cfg = FleetConfig::new(8, 2);
    cfg.nodes = 2;
    cfg.faults = FaultPlan { down_nodes: vec![0], slow_nodes: vec![] };

    let silent = run_fleet(&cfg).expect("fleet runs");
    let (trace, sink) = TraceHandle::ring(1 << 16);
    let obs = FleetObs { trace, ..FleetObs::default() };
    let traced = run_fleet_obs(&cfg, &obs).expect("fleet runs");

    assert!(!sink.snapshot().is_empty());
    assert_eq!(
        serde_json::to_string(&silent.simulated_value()).unwrap(),
        serde_json::to_string(&traced.simulated_value()).unwrap(),
        "tracing must not perturb the simulated aggregate"
    );
}

#[test]
fn hostile_run_emits_guard_counters_and_events() {
    use tinman::chaos::ChaosPlan;
    use tinman::fleet::run_fleet_chaos;

    let mut cfg = FleetConfig::new(8, 2);
    cfg.nodes = 4;
    let plan = ChaosPlan::canned("hostile-guest").expect("canned plan");
    let (trace, sink) = TraceHandle::ring(1 << 16);
    let obs = FleetObs { trace, ..FleetObs::default() };
    let report = run_fleet_chaos(&cfg, &plan, &obs).expect("fleet runs");
    assert!(report.guest_kills > 0 && report.shed_sessions > 0, "the plan exercises both paths");

    // Counters mirror the report exactly, including the per-budget
    // breakdown.
    assert_eq!(obs.metrics.get("guard.kills"), report.guest_kills);
    assert_eq!(obs.metrics.get("guard.sheds"), report.shed_sessions);
    let breakdown: u64 = [
        "guard.fuel_exhausted",
        "guard.heap_exhausted",
        "guard.depth_exhausted",
        "guard.dsm_exhausted",
        "guard.deadline_exhausted",
    ]
    .iter()
    .map(|n| obs.metrics.get(n))
    .sum();
    assert_eq!(breakdown, report.guest_kills, "every kill lands in exactly one budget counter");

    // One trace event per kill and per shed, each naming its reason.
    let records = sink.snapshot();
    let kills: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.event {
            tinman::obs::TraceEvent::GuestKilled { reason, .. } => Some(*reason),
            _ => None,
        })
        .collect();
    let sheds = records
        .iter()
        .filter(|r| {
            matches!(&r.event, tinman::obs::TraceEvent::SessionShed { reason, .. }
                if *reason == "overloaded")
        })
        .count();
    assert_eq!(kills.len() as u64, report.guest_kills);
    assert_eq!(sheds as u64, report.shed_sessions);
    assert!(kills.iter().all(|r| !r.is_empty()), "each kill event names its budget");
}

#[test]
fn tracing_does_not_perturb_the_hostile_aggregate() {
    use tinman::chaos::ChaosPlan;
    use tinman::fleet::run_fleet_chaos;

    let mut cfg = FleetConfig::new(8, 2);
    cfg.nodes = 4;
    let plan = ChaosPlan::canned("hostile-guest").expect("canned plan");

    let silent = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("fleet runs");
    let (trace, sink) = TraceHandle::ring(1 << 16);
    let obs = FleetObs { trace, ..FleetObs::default() };
    let traced = run_fleet_chaos(&cfg, &plan, &obs).expect("fleet runs");

    assert!(!sink.snapshot().is_empty());
    assert_eq!(
        serde_json::to_string(&silent.simulated_value()).unwrap(),
        serde_json::to_string(&traced.simulated_value()).unwrap(),
        "guard instrumentation must be invisible to the simulated aggregate"
    );
}

#[test]
fn chrome_trace_export_is_valid_json_with_one_track_per_session() {
    let mut cfg = FleetConfig::new(4, 2);
    cfg.nodes = 2;
    let (trace, sink) = TraceHandle::ring(1 << 16);
    let obs = FleetObs { trace, ..FleetObs::default() };
    run_fleet_obs(&cfg, &obs).expect("fleet runs");

    let records = sink.snapshot();
    let json = chrome_trace_json(&records);
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("export parses");
    let events = match &parsed {
        serde_json::Value::Map(map) => match map.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, serde_json::Value::Seq(events))) => events,
            other => panic!("traceEvents must be an array, got {other:?}"),
        },
        other => panic!("expected a top-level object, got {other:?}"),
    };
    assert_eq!(events.len(), records.len());

    // One Chrome track (tid) per device session.
    let mut tracks: Vec<u64> = records.iter().map(|r| r.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    assert_eq!(tracks, vec![0, 1, 2, 3], "each session owns its track");

    // Every event carries the phase/timestamp fields the viewer needs.
    for ev in events {
        let map = match ev {
            serde_json::Value::Map(m) => m,
            other => panic!("trace event must be an object, got {other:?}"),
        };
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(map.iter().any(|(k, _)| k == key), "missing `{key}`: {map:?}");
        }
    }
}
