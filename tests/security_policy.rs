//! Security experiments: the §3.4 bindings, §5.2 phishing defense, and the
//! §5 attacker scenarios, end to end through the full stack.

use std::collections::HashMap;

use tinman::apps::logins::{build_login_app, LoginAppSpec};
use tinman::apps::malicious::{build_exfiltration_app, build_phishing_app, build_residue_probe};
use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::{CorStore, PolicyDecision, PolicyRule};
use tinman::core::error::RuntimeError;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::sim::{LinkProfile, SimDuration};
use tinman::vm::Value;

const PASSWORD: &str = "hunter2-sUp3r-s3cret";

fn inputs() -> HashMap<String, String> {
    HashMap::from([("username".to_owned(), "alice".to_owned())])
}

/// World with the legitimate PayPal server plus an attacker-controlled
/// server, and the password cor whitelisted for paypal.com only.
fn setup() -> TinmanRuntime {
    let spec = LoginAppSpec::paypal();
    let mut store = CorStore::new(7);
    store.register(PASSWORD, spec.cor_description, &["paypal.com"]).unwrap();
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls.clone(),
        AuthServerSpec {
            domain: "paypal.com",
            user: "alice",
            password: PASSWORD.to_owned(),
            hash_login: false,
            think: SimDuration::from_millis(100),
            page_bytes: 32_000,
        },
    );
    // The attacker's collection endpoint accepts anything.
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: "evil.com",
            user: "whatever",
            password: "irrelevant".into(),
            hash_login: false,
            think: SimDuration::from_millis(10),
            page_bytes: 0,
        },
    );
    rt
}

#[test]
fn phishing_app_is_rejected_by_the_app_binding() {
    let mut rt = setup();
    let legit = build_login_app(&LoginAppSpec::paypal());
    // Bind the cor to the legitimate app's image hash.
    let cor = rt.node.store.ids()[0];
    rt.node
        .policy
        .set_rule(cor, PolicyRule { bound_app_hash: Some(legit.hash()), ..Default::default() });

    // The legitimate app logs in fine under the binding.
    let report = rt.run_app(&legit, Mode::TinMan, &inputs()).expect("legit app runs");
    assert_eq!(report.result, Value::Int(1));

    // The phishing app (different hash, same flow) is denied.
    let phish = build_phishing_app("paypal.com", "PayPal password");
    let err = rt.run_app(&phish, Mode::TinMan, &inputs()).unwrap_err();
    assert!(
        matches!(err, RuntimeError::PolicyDenied(PolicyDecision::DeniedAppMismatch)),
        "got {err:?}"
    );
    // The denial is on the audit log.
    assert!(rt
        .node
        .audit
        .abnormal()
        .iter()
        .any(|e| e.decision == PolicyDecision::DeniedAppMismatch));
    // And the password never reached the attacker or the device.
    assert!(rt.scan_residue(PASSWORD).is_clean());
}

#[test]
fn exfiltration_to_unlisted_domain_is_denied() {
    let mut rt = setup();
    let exfil = build_exfiltration_app("evil.com", "PayPal password");
    let err = rt.run_app(&exfil, Mode::TinMan, &inputs()).unwrap_err();
    match err {
        RuntimeError::PolicyDenied(PolicyDecision::DeniedDomain { domain }) => {
            assert_eq!(domain, "evil.com");
        }
        other => panic!("expected domain denial, got {other:?}"),
    }
    assert!(rt.scan_residue(PASSWORD).is_clean());
    // Audit captured the attempt with the target domain.
    let abnormal = rt.node.audit.abnormal();
    assert!(!abnormal.is_empty());
    assert_eq!(abnormal[0].domain.as_deref(), Some("evil.com"));
}

#[test]
fn auth_endpoint_narrowing_blocks_in_domain_misuse() {
    // §3.4's comment-post attack: the send targets the right domain but
    // not the dedicated authentication endpoint.
    let mut rt = setup();
    // www.paypal.com is a *content* host inside the whitelisted domain.
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: "www.paypal.com",
            user: "whatever",
            password: "irrelevant".into(),
            hash_login: false,
            think: SimDuration::from_millis(10),
            page_bytes: 0,
        },
    );
    let cor = rt.node.store.ids()[0];
    rt.node.policy.set_rule(
        cor,
        PolicyRule {
            domain_whitelist: vec!["paypal.com".into()],
            auth_endpoints: vec!["paypal.com".into()],
            ..Default::default()
        },
    );
    let misuse = build_exfiltration_app("www.paypal.com", "PayPal password");
    let err = rt.run_app(&misuse, Mode::TinMan, &inputs()).unwrap_err();
    assert!(
        matches!(err, RuntimeError::PolicyDenied(PolicyDecision::DeniedNotAuthEndpoint { .. })),
        "got {err:?}"
    );
}

#[test]
fn stolen_device_revocation_blocks_all_cor_access() {
    let mut rt = setup();
    let app = build_login_app(&LoginAppSpec::paypal());
    // Before revocation: works.
    assert_eq!(rt.run_app(&app, Mode::TinMan, &inputs()).unwrap().result, Value::Int(1));
    // The user reports the phone stolen.
    rt.node.policy.revoke_device("phone-1");
    let err = rt.run_app(&app, Mode::TinMan, &inputs()).unwrap_err();
    assert!(matches!(err, RuntimeError::PolicyDenied(PolicyDecision::DeniedRevoked)));
    // Un-revoking restores access.
    rt.node.policy.unrevoke_device("phone-1");
    assert_eq!(rt.run_app(&app, Mode::TinMan, &inputs()).unwrap().result, Value::Int(1));
}

#[test]
fn known_malware_is_refused_before_running() {
    let mut rt = setup();
    let app = build_login_app(&LoginAppSpec::paypal());
    rt.node.policy.malware_db_mut().add(app.hash());
    let err = rt.run_app(&app, Mode::TinMan, &inputs()).unwrap_err();
    assert!(matches!(err, RuntimeError::MalwareRejected { .. }));
}

#[test]
fn rate_limit_applies_across_logins() {
    let mut rt = setup();
    let app = build_login_app(&LoginAppSpec::paypal());
    let cor = rt.node.store.ids()[0];
    rt.node.policy.set_rule(cor, PolicyRule { max_uses_per_day: Some(2), ..Default::default() });
    assert!(rt.run_app(&app, Mode::TinMan, &inputs()).is_ok());
    assert!(rt.run_app(&app, Mode::TinMan, &inputs()).is_ok());
    let err = rt.run_app(&app, Mode::TinMan, &inputs()).unwrap_err();
    assert!(matches!(err, RuntimeError::PolicyDenied(PolicyDecision::DeniedRateLimit)));
}

#[test]
fn audit_log_records_allowed_accesses_too() {
    let mut rt = setup();
    let app = build_login_app(&LoginAppSpec::paypal());
    rt.run_app(&app, Mode::TinMan, &inputs()).unwrap();
    let entries = rt.node.audit.entries();
    assert!(!entries.is_empty());
    assert!(entries.iter().all(|e| e.decision.is_allowed()));
    assert!(entries.iter().any(|e| e.domain.as_deref() == Some("paypal.com")));
    // JSONL export works and contains no plaintext.
    let jsonl = rt.node.audit.export_jsonl();
    assert!(!jsonl.contains(PASSWORD));
}

#[test]
fn residue_scanner_is_demonstrably_sensitive() {
    // A scanner that reports "clean" is only meaningful if it can find a
    // marker that IS present.
    let mut rt = setup();
    let probe = build_residue_probe("CANARY-0xDEADBEEF");
    let report = rt.run_app(&probe, Mode::TinMan, &inputs()).unwrap();
    assert_eq!(report.result, Value::Int(1));
    let found = rt.scan_residue("CANARY-0xDEADBEEF");
    assert!(found.len() >= 3, "heap + disk + log expected, got {:?}", found.hits);
}

#[test]
fn placeholder_differs_from_cor_but_matches_length() {
    let rt = setup();
    let cor = rt.node.store.ids()[0];
    let ph = rt.node.store.placeholder(cor).unwrap();
    assert_eq!(ph.len(), PASSWORD.len(), "§5.1: length is the one unprotected property");
    assert_ne!(ph, PASSWORD);
}
