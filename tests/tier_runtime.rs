//! End-to-end tier equivalence: a full TinMan login run with the node
//! executing under the block tier must produce the same report, the same
//! DSM traffic, and the same clean residue scan as the interpreter run —
//! the runtime-level face of the `tinman-vm` tier contract.

use std::collections::HashMap;

use tinman::apps::logins::{build_login_app, LoginAppSpec};
use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::CorStore;
use tinman::core::runtime::{Mode, RunReport, TinmanConfig, TinmanRuntime};
use tinman::sim::{LinkProfile, SimDuration};
use tinman::vm::{ExecTier, Value};

const PASSWORD: &str = "hunter2-sUp3r-s3cret";

fn run_login(tier: ExecTier) -> (RunReport, TinmanRuntime) {
    let spec = LoginAppSpec::paypal();
    let app = build_login_app(&spec);
    let mut store = CorStore::new(99);
    store.register(PASSWORD, spec.cor_description, &[spec.domain]).expect("label space");
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    rt.set_node_tier(tier);
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: PASSWORD.to_owned(),
            hash_login: spec.hash_login,
            think: SimDuration::from_millis(120),
            page_bytes: 64_000,
        },
    );
    let inputs = HashMap::from([("username".to_owned(), "alice".to_owned())]);
    let report = rt.run_app(&app, Mode::TinMan, &inputs).expect("login runs");
    (report, rt)
}

#[test]
fn block_tier_login_matches_the_interpreter_run_exactly() {
    let (base, base_rt) = run_login(ExecTier::Interpret);
    let (tier, tier_rt) = run_login(ExecTier::Blocks);

    assert_eq!(base.result, Value::Int(1));
    assert_eq!(tier.result, base.result, "result value");
    assert_eq!(tier.latency, base.latency, "simulated end-to-end latency");
    assert_eq!(tier.offloads, base.offloads, "offload count");
    assert_eq!(tier.client_methods, base.client_methods, "client methods");
    assert_eq!(tier.node_methods, base.node_methods, "node methods");
    assert_eq!(tier.dsm, base.dsm, "DSM stats (sync count, init/dirty bytes)");

    // The interpreter run never touches the tier machinery; the block run
    // must actually have executed node code through it.
    assert_eq!(base_rt.tier_telemetry(), Default::default());
    let t = tier_rt.tier_telemetry();
    assert!(t.fast_insns + t.stepped_insns > 0, "node segments must run tiered: {t:?}");
    assert_eq!(tier_rt.metrics().get("tier.compiles"), 1, "one warm compile");

    // Same security outcome: zero plaintext residue on the device.
    assert!(base_rt.scan_residue(PASSWORD).is_clean());
    assert!(tier_rt.scan_residue(PASSWORD).is_clean());
}
