//! Chaos acceptance: deterministic fault injection with fail-closed
//! session recovery, end to end through the public facade.
//!
//! The headline scenario mirrors the subsystem's contract: crash the
//! primary mid-session under packet loss and a radio flap, and the fleet
//! must finish every session via replica replay, deliver each TCP payload
//! replacement exactly once at the origin server, leave zero cor bytes on
//! any device host, and produce byte-identical reports across runs,
//! worker counts, and tracing.

use tinman::chaos::{ChaosEvent, ChaosPlan};
use tinman::fleet::{run_fleet_chaos, FleetConfig, FleetObs, FleetReport};
use tinman::obs::{TraceEvent, TraceHandle};
use tinman::sim::SimDuration;

fn config(sessions: usize, workers: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(sessions, workers);
    cfg.nodes = 4;
    cfg
}

fn run(cfg: &FleetConfig, plan: &ChaosPlan) -> FleetReport {
    run_fleet_chaos(cfg, plan, &FleetObs::default()).expect("chaos fleet runs")
}

fn simulated(report: &FleetReport) -> String {
    serde_json::to_string(&report.simulated_value()).unwrap()
}

#[test]
fn crash_primary_recovers_every_session_exactly_once() {
    let cfg = config(12, 4);
    let plan = ChaosPlan::canned("crash-primary").unwrap();
    let report = run(&cfg, &plan);

    assert_eq!(report.ok, 12, "every session completes despite the crashed primary");
    assert_eq!(report.fail_closed, 0);
    assert!(report.replays >= 1, "a crashed session resumed on a replica");
    assert!(report.success_after_retry >= 1);
    assert!(
        report.duplicate_deliveries >= 1,
        "the replay re-sent an already-delivered payload and the origin deduped it"
    );
    assert_eq!(report.residue_violations, 0, "no cor bytes on any device host");
    assert!(report.vault_recoveries > 0, "every attempt is durability-audited");
    assert_eq!(report.wal_device_leaks, 0, "WAL plaintext never reaches a device surface");

    // Exactly-once: the origin server accepted the same unique delivery
    // count a fault-free run produces — replays added duplicates, never
    // double-sends.
    let baseline = run(&cfg, &ChaosPlan::empty());
    assert_eq!(report.deliveries, baseline.deliveries);
    assert_eq!(baseline.duplicate_deliveries, 0);
}

#[test]
fn same_seed_same_plan_is_byte_identical_across_runs_and_workers() {
    let plan = ChaosPlan::canned("crash-primary").unwrap();
    let a = simulated(&run(&config(10, 1), &plan));
    let b = simulated(&run(&config(10, 1), &plan));
    assert_eq!(a, b, "two same-seed runs must serialize identically");
    let c = simulated(&run(&config(10, 4), &plan));
    assert_eq!(a, c, "worker count must not leak into the simulated report");
}

#[test]
fn tracing_does_not_change_the_simulated_report() {
    let cfg = config(8, 2);
    let plan = ChaosPlan::canned("crash-primary").unwrap();
    let silent = run(&cfg, &plan);

    let (trace, sink) = TraceHandle::ring(1 << 16);
    let obs = FleetObs { trace, ..FleetObs::default() };
    let traced = run_fleet_chaos(&cfg, &plan, &obs).expect("chaos fleet runs");

    assert_eq!(simulated(&silent), simulated(&traced));

    let records = sink.snapshot();
    let count = |name: &str| records.iter().filter(|r| r.event.name() == name).count();
    assert!(count("chaos_inject") > 0, "armed faults are traced");
    assert!(count("breaker_transition") > 0, "node 0's breaker tripped");
    assert_eq!(count("session_replay"), traced.replays as usize);
    assert_eq!(count("delivery_dedup") > 0, traced.duplicate_deliveries > 0);
}

#[test]
fn full_partition_fails_closed_and_leaks_nothing() {
    let cfg = config(6, 2);
    let plan = ChaosPlan::canned("partition").unwrap();

    let (trace, sink) = TraceHandle::ring(1 << 16);
    let obs = FleetObs { trace, ..FleetObs::default() };
    let report = run_fleet_chaos(&cfg, &plan, &obs).expect("chaos fleet runs");

    assert_eq!(report.ok, 0);
    assert_eq!(report.fail_closed, report.sessions, "every session degrades fail-closed");
    assert_eq!(report.residue_violations, 0, "degraded sessions never leak cor bytes");
    assert_eq!(report.wal_device_leaks, 0);
    assert!(report.outcomes.iter().all(|o| o.fail_closed && !o.success && o.node.is_none()));

    let records = sink.snapshot();
    let fails = records.iter().filter(|r| r.event.name() == "fail_closed").count() as u64;
    assert_eq!(fails, report.sessions, "each degradation is audited");
}

#[test]
fn breaker_cycle_shows_up_in_the_report() {
    let mut cfg = config(24, 2);
    cfg.nodes = 4;
    let plan = ChaosPlan::canned("recovery").unwrap();
    let report = run(&cfg, &plan);

    let node0 = &report.per_node[0];
    assert!(node0.breaker_open > 0, "the crash tripped node 0's breaker");
    assert!(node0.breaker_half_open > 0, "probe placements happened while open");
    assert_eq!(
        node0.breaker_closed + node0.breaker_open + node0.breaker_half_open,
        report.sessions,
        "time-in-state covers the whole session axis"
    );
    for n in &report.per_node[1..] {
        assert_eq!(n.breaker_open, 0, "healthy nodes never trip");
        assert_eq!(n.breaker_closed, report.sessions);
    }
    assert_eq!(report.ok, report.sessions, "replicas absorb the crashed node's sessions");
}

#[test]
fn exhausted_deadline_budget_fails_closed() {
    let mut cfg = config(8, 2);
    cfg.nodes = 2;
    let mut plan = ChaosPlan::empty();
    // Crash both nodes for every session and give no budget to retry:
    // the first failed attempt blows the deadline and the session must
    // degrade instead of walking more replicas.
    plan.deadline = SimDuration::ZERO;
    plan.events = vec![
        ChaosEvent::NodeCrash { node: 0, at: SimDuration::ZERO, from_session: 0 },
        ChaosEvent::NodeCrash { node: 1, at: SimDuration::ZERO, from_session: 0 },
    ];
    let report = run(&cfg, &plan);
    assert_eq!(report.ok, 0);
    assert_eq!(report.fail_closed, report.sessions);
    assert!(
        report.outcomes.iter().all(|o| o.attempts <= 1),
        "a blown deadline stops the replica walk immediately"
    );
    assert_eq!(report.residue_violations, 0);
}

#[test]
fn vault_crash_plan_loses_no_cor_and_leaks_nothing_deviceward() {
    let cfg = config(16, 2);
    let plan = ChaosPlan::canned("vault-crash").unwrap();
    let report = run(&cfg, &plan);

    assert_eq!(report.ok, report.sessions, "crashed WALs recover; sessions still complete");
    assert_eq!(report.lost_cors, 0, "every committed cor survives every crash schedule");
    assert_eq!(report.stale_serves, 0, "no session is ever served from a stale replica");
    assert_eq!(report.wal_device_leaks, 0, "WAL bytes never reach the device side");
    assert_eq!(report.residue_violations, 0);
    assert!(report.vault_recoveries >= report.sessions, "every attempt recovered a vault");
    assert!(report.torn_tail_repairs > 0, "torn tails actually happened and were repaired");
    assert!(report.wal_plaintexts > 0, "node-side WALs hold plaintext — the scan bites");
    assert!(report.vault_catchup_lsns > 0, "lagging replicas anti-entropy caught up");
}

#[test]
fn vault_crash_simulated_blob_is_worker_invariant() {
    let plan = ChaosPlan::canned("vault-crash").unwrap();
    let a = simulated(&run(&config(12, 1), &plan));
    let b = simulated(&run(&config(12, 4), &plan));
    let c = simulated(&run(&config(12, 8), &plan));
    assert_eq!(a, b, "vault columns must not depend on worker interleaving");
    assert_eq!(a, c);
}

#[test]
fn replica_lag_catch_up_is_charged_not_free() {
    let cfg = config(8, 2);
    let mut plan = ChaosPlan::empty();
    plan.events = (0..4)
        .map(|node| ChaosEvent::ReplicaLag {
            node,
            lsns: 4,
            from_session: 0,
            until_session: u64::MAX,
        })
        .collect();
    let lagged = run(&cfg, &plan);
    let clean = run(&cfg, &ChaosPlan::empty());

    assert_eq!(lagged.ok, lagged.sessions, "catch-up within budget still serves everyone");
    assert!(lagged.vault_catchup_lsns > 0);
    assert_eq!(lagged.stale_serves, 0);
    assert_eq!(lagged.lost_cors, 0);
    assert!(
        lagged.latency.mean > clean.latency.mean,
        "anti-entropy costs simulated time: {:?} vs {:?}",
        lagged.latency.mean,
        clean.latency.mean
    );
    // Catch-up changes timing only, never the session's logical work.
    assert_eq!(lagged.offloads, clean.offloads);
    assert_eq!(lagged.deliveries, clean.deliveries);
}

#[test]
fn stale_replica_with_no_budget_fails_closed() {
    let mut cfg = config(6, 2);
    cfg.nodes = 2;
    let mut plan = ChaosPlan::empty();
    // Every replica lags and there is no deadline budget to catch up:
    // cor-aware failover must refuse to serve rather than serve stale.
    plan.deadline = SimDuration::ZERO;
    plan.events = (0..2)
        .map(|node| ChaosEvent::ReplicaLag {
            node,
            lsns: 8,
            from_session: 0,
            until_session: u64::MAX,
        })
        .collect();

    let (trace, sink) = TraceHandle::ring(1 << 16);
    let obs = FleetObs { trace, ..FleetObs::default() };
    let report = run_fleet_chaos(&cfg, &plan, &obs).expect("chaos fleet runs");

    assert_eq!(report.ok, 0);
    assert_eq!(report.fail_closed, report.sessions);
    assert_eq!(report.stale_serves, 0, "refusal, not stale service");
    assert_eq!(report.residue_violations, 0);
    assert_eq!(report.wal_device_leaks, 0);

    let records = sink.snapshot();
    let stale = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::FailClosed { reason: "stale_replica", .. }))
        .count() as u64;
    assert_eq!(stale, report.sessions, "each refusal names the stale replica as its reason");
}

#[test]
fn tenant_key_rotation_mid_session_completes_with_resealed_vaults() {
    // The canned tenant-rotation plan rotates tenant 0's keys from
    // session 4 and force-rotates (compromises) tenant 1's from session
    // 6; with two tenants those fire at sessions 4 and 7. Under the
    // default deadline both re-seals are affordable: the sessions pay
    // the rotation cost, complete, and everything at rest stays
    // ciphertext under the *new* epoch.
    let mut cfg = config(12, 2);
    cfg.tenants = 2;
    let plan = ChaosPlan::canned("tenant-rotation").unwrap();

    let (trace, sink) = TraceHandle::ring(1 << 16);
    let obs = FleetObs { trace, ..FleetObs::default() };
    let report = run_fleet_chaos(&cfg, &plan, &obs).expect("chaos fleet runs");

    assert_eq!(report.ok, report.sessions, "affordable rotations never cost a session");
    assert_eq!(report.tenant_key_rotations, 2, "one rotation per tenant fired");
    assert_eq!(report.wal_plaintexts, 0, "sealed vaults stay ciphertext through rotation");
    assert_eq!(report.cross_tenant_residue, 0);
    assert_eq!(report.lost_cors, 0, "re-sealed records still recover exactly");

    let records = sink.snapshot();
    let rotations =
        records.iter().filter(|r| matches!(r.event, TraceEvent::TenantKeyRotation { .. })).count()
            as u64;
    assert_eq!(rotations, report.tenant_key_rotations, "every paid rotation is traced");
    let forced = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::TenantKeyRotation { forced: true, .. }))
        .count();
    assert_eq!(forced, 1, "tenant 1's rotation was a key compromise");
    // Rotated sessions cost more than their unrotated twins: the
    // re-seal is charged, not free.
    let unrotated = run(&cfg, &ChaosPlan::empty());
    assert!(report.latency.mean > unrotated.latency.mean);
    assert_eq!(report.offloads, unrotated.offloads, "rotation changes timing, not work");
}

#[test]
fn unaffordable_rotation_of_a_compromised_key_fails_closed_as_revoked() {
    // Same plan, zero deadline budget: neither re-seal is affordable.
    // Tenant 0's scheduled rotation degrades as a plain deadline miss;
    // tenant 1's *forced* rotation means the old epoch is revoked — the
    // session must fail closed with reason `revoked_key` rather than
    // ever serve under the compromised key.
    let mut cfg = config(10, 2);
    cfg.tenants = 2;
    let mut plan = ChaosPlan::canned("tenant-rotation").unwrap();
    plan.deadline = SimDuration::ZERO;

    let (trace, sink) = TraceHandle::ring(1 << 16);
    let obs = FleetObs { trace, ..FleetObs::default() };
    let report = run_fleet_chaos(&cfg, &plan, &obs).expect("chaos fleet runs");

    assert_eq!(report.tenant_key_rotations, 0, "no re-seal fit the budget");
    assert_eq!(report.fail_closed, 2, "both rotation sessions degrade");
    assert_eq!(report.ok, report.sessions - 2, "only the rotation sessions are affected");
    assert_eq!(report.wal_plaintexts, 0);
    assert_eq!(report.cross_tenant_residue, 0);
    assert_eq!(report.residue_violations, 0, "fail-closed sessions leak nothing");

    let records = sink.snapshot();
    let revoked: Vec<u64> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::FailClosed { session, reason: "revoked_key" } => Some(session),
            _ => None,
        })
        .collect();
    assert_eq!(revoked, vec![7], "tenant 1's compromised session refuses the revoked key");
    for out in &report.outcomes {
        assert!(
            out.success || out.fail_closed,
            "a session never serves under a revoked key: it completes re-sealed or degrades"
        );
    }
}

#[test]
fn wire_noise_slows_sessions_but_never_breaks_them() {
    let cfg = config(8, 2);
    let noisy = run(&cfg, &ChaosPlan::canned("wire-noise").unwrap());
    let clean = run(&cfg, &ChaosPlan::empty());
    assert_eq!(noisy.ok, noisy.sessions, "loss and corruption retransmit, not fail");
    assert_eq!(noisy.fail_closed, 0);
    assert_eq!(noisy.residue_violations, 0);
    assert_eq!(noisy.wal_device_leaks, 0);
    assert_eq!(noisy.lost_cors, 0);
    assert!(
        noisy.latency.mean > clean.latency.mean,
        "retransmissions and delay must cost simulated time: {:?} vs {:?}",
        noisy.latency.mean,
        clean.latency.mean
    );
    // Wire noise slows the session but never changes its logical work.
    assert_eq!(noisy.offloads, clean.offloads);
    assert_eq!(noisy.dsm_syncs, clean.dsm_syncs);
    assert_eq!(noisy.deliveries, clean.deliveries);
}
