//! Failure injection: what the runtime does when pieces misbehave.
//!
//! DESIGN.md commits to exercising dropped segments, refused handshakes,
//! malformed records, policy denials mid-flow, and corrupted migration
//! state — the paths a production system must fail *cleanly* on.

use std::collections::HashMap;

use tinman::apps::logins::{build_login_app, LoginAppSpec};
use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::CorStore;
use tinman::core::error::RuntimeError;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::net::{Addr, FilterAction, NetWorld, Segment, ServerApp, ServerReply};
use tinman::sim::{LinkProfile, SimClock, SimDuration};
use tinman::tls::{ContentType, Record};
use tinman::vm::Value;

const PASSWORD: &str = "hunter2-sUp3r-s3cret";

fn inputs() -> HashMap<String, String> {
    HashMap::from([("username".to_owned(), "alice".to_owned())])
}

fn world(spec: &LoginAppSpec) -> TinmanRuntime {
    let mut store = CorStore::new(99);
    store.register(PASSWORD, spec.cor_description, &[spec.domain]).unwrap();
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: PASSWORD.to_owned(),
            hash_login: false,
            think: SimDuration::from_millis(20),
            page_bytes: 0,
        },
    );
    rt
}

#[test]
fn missing_dns_entry_fails_cleanly() {
    // No server installed at all: net.connect fails inside the app.
    let spec = LoginAppSpec::github();
    let app = build_login_app(&spec);
    let mut store = CorStore::new(99);
    store.register(PASSWORD, spec.cor_description, &[spec.domain]).unwrap();
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let err = rt.run_app(&app, Mode::TinMan, &inputs()).unwrap_err();
    assert!(matches!(err, RuntimeError::Vm(tinman::vm::VmError::NativeError { .. })));
    // Nothing leaked before the failure.
    assert!(rt.scan_residue(PASSWORD).is_clean());
}

#[test]
fn connection_refused_fails_cleanly() {
    // Host exists but nothing listens on 443.
    let spec = LoginAppSpec::github();
    let app = build_login_app(&spec);
    let mut store = CorStore::new(99);
    store.register(PASSWORD, spec.cor_description, &[spec.domain]).unwrap();
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    rt.world.add_host(spec.domain, LinkProfile::ethernet());
    let err = rt.run_app(&app, Mode::TinMan, &inputs()).unwrap_err();
    assert!(matches!(err, RuntimeError::Vm(tinman::vm::VmError::NativeError { .. })));
}

#[test]
fn missing_scripted_input_is_reported() {
    let spec = LoginAppSpec::github();
    let app = build_login_app(&spec);
    let mut rt = world(&spec);
    let empty: HashMap<String, String> = HashMap::new();
    let err = rt.run_app(&app, Mode::TinMan, &empty).unwrap_err();
    match err {
        RuntimeError::Vm(tinman::vm::VmError::NativeError { message, .. }) => {
            assert!(message.contains("username"), "{message}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn server_that_garbles_records_fails_the_login_not_the_runtime() {
    // A server that answers the handshake, then replies with corrupt
    // records: the client's record layer rejects them, the app sees an
    // empty/failed response, and the run completes with result 0.
    type PlainHandler = fn(Addr, &str) -> (String, SimDuration);

    struct Garbler {
        inner: tinman::core::server::HttpsServerApp<PlainHandler>,
        after_handshake: bool,
    }
    impl ServerApp for Garbler {
        fn on_connect(&mut self, peer: Addr) {
            self.inner.on_connect(peer);
        }
        fn on_data(&mut self, peer: Addr, data: &[u8]) -> ServerReply {
            if !self.after_handshake {
                self.after_handshake = true;
                return self.inner.on_data(peer, data); // let TLS establish
            }
            // From now on: syntactically valid records with garbage bodies.
            let rec = Record {
                content_type: ContentType::ApplicationData,
                version: 0x33,
                body: vec![0xFF; 64],
            };
            ServerReply { data: rec.to_bytes(), think: SimDuration::ZERO, close: false }
        }
    }
    fn noop(_: Addr, _: &str) -> (String, SimDuration) {
        (String::new(), SimDuration::ZERO)
    }

    let spec = LoginAppSpec::github();
    let app = build_login_app(&spec);
    let mut store = CorStore::new(99);
    store.register(PASSWORD, spec.cor_description, &[spec.domain]).unwrap();
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    let host = rt.world.add_host(spec.domain, LinkProfile::ethernet());
    rt.world.install_server(
        Addr::new(host, 443),
        Box::new(Garbler {
            inner: tinman::core::server::HttpsServerApp::new(tls, noop),
            after_handshake: false,
        }),
    );
    let result = rt.run_app(&app, Mode::TinMan, &inputs());
    // Either a clean app-level failure (result 0) or a surfaced record
    // error — never a panic, never residue.
    match result {
        Ok(report) => assert_eq!(report.result, Value::Int(0)),
        Err(RuntimeError::Vm(tinman::vm::VmError::NativeError { .. })) => {}
        other => panic!("unexpected: {other:?}"),
    }
    assert!(rt.scan_residue(PASSWORD).is_clean());
}

#[test]
fn dropping_the_marked_packet_surfaces_a_clean_error() {
    // An egress filter that DROPS marked packets instead of redirecting
    // them (a broken iptables rule): the node waits for a diverted packet
    // that never comes, and reports it.
    let spec = LoginAppSpec::github();
    let app = build_login_app(&spec);
    let mut rt = world(&spec);
    let phone = rt.phone_host();
    rt.world.set_egress_filter(
        phone,
        Box::new(|seg: &Segment| {
            if seg.payload.first() == Some(&tinman::tls::TINMAN_MARK) {
                FilterAction::Drop
            } else {
                FilterAction::Pass
            }
        }),
    );
    let err = rt.run_app(&app, Mode::TinMan, &inputs()).unwrap_err();
    match err {
        RuntimeError::Vm(tinman::vm::VmError::NativeError { message, .. }) => {
            assert!(message.contains("diverted"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    assert!(rt.scan_residue(PASSWORD).is_clean());
}

#[test]
fn disabling_the_filter_lets_only_the_placeholder_escape() {
    // Worst-case misconfiguration: no egress filter at all. The marked
    // record goes straight to the site — but it carries only the
    // PLACEHOLDER, so the secret still does not leak; the login simply
    // fails (the server ignores/garbles the unexpected record type or
    // rejects the wrong password).
    let spec = LoginAppSpec::github();
    let app = build_login_app(&spec);
    let mut rt = world(&spec);
    let phone = rt.phone_host();
    rt.world.clear_egress_filter(phone);
    let result = rt.run_app(&app, Mode::TinMan, &inputs());
    match result {
        Ok(report) => assert_eq!(report.result, Value::Int(0), "login must fail"),
        Err(RuntimeError::Vm(_)) => {}
        other => panic!("unexpected: {other:?}"),
    }
    assert!(rt.scan_residue(PASSWORD).is_clean(), "even now, no plaintext on the device");
}

#[test]
fn injecting_a_corrupted_flow_is_rejected_by_the_world() {
    let clock = SimClock::new();
    let mut w = NetWorld::new(clock);
    let a = w.add_host("a", LinkProfile::wifi());
    let b = w.add_host("b", LinkProfile::ethernet());
    let bogus = Segment {
        src: Addr::new(a, 5),
        dst: Addr::new(b, 443),
        seq: 0,
        ack: 0,
        flags: tinman::net::tcp::TcpFlags::ACK,
        payload: vec![1, 2, 3],
    };
    assert!(w.inject(a, bogus).is_err(), "no matching flow");
}

#[test]
fn fuel_exhaustion_is_surfaced_not_hung() {
    // An app that loops forever: the runtime's fuel budget converts the
    // hang into an error.
    use tinman::vm::{Insn, ProgramBuilder};
    let mut p = ProgramBuilder::new("spinner");
    let main = p.define("main", 0, 2, |b, _| {
        let top = b.label();
        b.bind(top);
        b.const_i(1).op(Insn::Pop);
        b.jump(top);
    });
    let app = p.build(main);
    let spec = LoginAppSpec::github();
    let mut rt = world(&spec);
    let err = rt.run_app(&app, Mode::TinMan, &inputs()).unwrap_err();
    assert!(matches!(err, RuntimeError::FuelExhausted));
}

// ---------------------------------------------------------------------------
// Property: under ANY chaos plan, every session either completes or fails
// closed — and the whole run is a deterministic function of its seeds.

mod chaos_properties {
    use proptest::prelude::*;
    use tinman::chaos::{ChaosEvent, ChaosPlan};
    use tinman::fleet::{run_fleet_chaos, FleetConfig, FleetObs};
    use tinman::sim::SimDuration;

    /// Assembles a valid-by-construction plan from raw dice. Windows get a
    /// nonzero length and node indices stay inside the two-node pool, so
    /// every generated plan passes validation and actually runs.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        seed: u64,
        trip_after: u64,
        probe_every: u64,
        crash: Option<(usize, u64, u64)>,
        recover_from: Option<u64>,
        loss_pct: u8,
        corrupt_pct: u8,
        delay_ms: u64,
        flap: Option<(u64, u64)>,
        partition: Option<(usize, u64, u64)>,
        sync: Option<(usize, u64, u64)>,
    ) -> ChaosPlan {
        let mut plan = ChaosPlan::empty();
        plan.seed = seed;
        plan.trip_after = trip_after;
        plan.probe_every = probe_every;
        if let Some((node, at_ms, from_session)) = crash {
            plan.events.push(ChaosEvent::NodeCrash {
                node,
                at: SimDuration::from_millis(at_ms),
                from_session,
            });
            if let Some(from_session) = recover_from {
                plan.events.push(ChaosEvent::NodeRecover { node, from_session });
            }
        }
        if loss_pct > 0 {
            plan.events.push(ChaosEvent::PacketLoss { pct: loss_pct });
        }
        if corrupt_pct > 0 {
            plan.events.push(ChaosEvent::PacketCorrupt { pct: corrupt_pct });
        }
        if delay_ms > 0 {
            plan.events.push(ChaosEvent::PacketDelay { delay: SimDuration::from_millis(delay_ms) });
        }
        if let Some((from_ms, len_ms)) = flap {
            plan.events.push(ChaosEvent::LinkFlap {
                from: SimDuration::from_millis(from_ms),
                until: SimDuration::from_millis(from_ms + len_ms),
            });
        }
        if let Some((node, from_session, len)) = partition {
            plan.events.push(ChaosEvent::Partition {
                node,
                from_session,
                until_session: from_session + len,
            });
        }
        if let Some((node, from_ms, len_ms)) = sync {
            plan.events.push(ChaosEvent::SyncTimeout {
                node,
                from: SimDuration::from_millis(from_ms),
                until: SimDuration::from_millis(from_ms + len_ms),
            });
        }
        plan
    }

    proptest! {
        // Every case runs a whole 3-session fleet twice; 16 cases keeps the
        // property inside the debug-build test budget.
        #![cases(16)]
        #[test]
        fn arbitrary_plans_fail_closed_and_deterministically(
            seed in any::<u64>(),
            trip_after in 1u64..4,
            probe_every in 1u64..4,
            with_crash in any::<bool>(),
            crash_node in 0usize..2,
            crash_at_ms in 0u64..2000,
            crash_from in 0u64..3,
            with_recover in any::<bool>(),
            recover_from in 0u64..4,
            loss_pct in 0u8..35,
            corrupt_pct in 0u8..15,
            delay_ms in 0u64..40,
            with_flap in any::<bool>(),
            flap_from_ms in 0u64..1500,
            flap_len_ms in 1u64..400,
            with_partition in any::<bool>(),
            part_node in 0usize..2,
            part_from in 0u64..3,
            part_len in 1u64..4,
            with_sync in any::<bool>(),
            sync_node in 0usize..2,
            sync_from_ms in 0u64..1500,
            sync_len_ms in 1u64..500,
        ) {
            let plan = assemble(
                seed,
                trip_after,
                probe_every,
                with_crash.then_some((crash_node, crash_at_ms, crash_from)),
                with_recover.then_some(recover_from),
                loss_pct,
                corrupt_pct,
                delay_ms,
                with_flap.then_some((flap_from_ms, flap_len_ms)),
                with_partition.then_some((part_node, part_from, part_len)),
                with_sync.then_some((sync_node, sync_from_ms, sync_len_ms)),
            );
            let mut cfg = FleetConfig::new(3, 2);
            cfg.nodes = 2;
            prop_assert!(plan.validate(cfg.nodes).is_ok());

            let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default())
                .expect("valid plan runs");
            // Fail-closed invariant: no third state between success and an
            // audited placeholder-only failure, and never any residue.
            for o in &report.outcomes {
                prop_assert!(
                    o.success || o.fail_closed,
                    "session {} neither completed nor failed closed",
                    o.id
                );
                prop_assert!(!(o.success && o.fail_closed));
            }
            prop_assert_eq!(report.ok + report.fail_closed, report.sessions);
            prop_assert_eq!(report.residue_violations, 0);

            // Determinism: the same seeds replay byte-for-byte.
            let again = run_fleet_chaos(&cfg, &plan, &FleetObs::default())
                .expect("valid plan runs");
            prop_assert_eq!(
                serde_json::to_string(&report.simulated_value()).unwrap(),
                serde_json::to_string(&again.simulated_value()).unwrap()
            );
        }
    }
}

#[test]
fn faulted_machine_does_not_resume() {
    use tinman::taint::TaintEngine;
    use tinman::vm::{interp, ExecConfig, Insn, Machine, ProgramBuilder, VmError};
    let mut p = ProgramBuilder::new("fault");
    let main = p.define("main", 0, 1, |b, _| {
        b.const_i(1).const_i(0).op(Insn::Div).op(Insn::Halt);
    });
    let img = p.build(main);
    let mut m = Machine::new();
    let mut host = interp::NullHost;
    let mut engine = TaintEngine::none();
    let first = interp::run(&mut m, &img, &mut host, &mut engine, ExecConfig::client());
    assert!(first.is_err());
    let second = interp::run(&mut m, &img, &mut host, &mut engine, ExecConfig::client());
    assert!(matches!(second, Err(VmError::NotRunnable { .. })));
}
