//! Migration transparency: offloading must be semantically invisible.
//!
//! The strongest property of COMET-style offloading is that a program
//! computes the same result whether or not execution migrated mid-way.
//! These tests run the same computations (a) entirely on one machine and
//! (b) interrupted by forced migrations at many different points, and
//! require identical results.

use tinman::dsm::{DsmEngine, PassthroughMaterializer, SyncCause};
use tinman::taint::TaintEngine;
use tinman::vm::machine::LockSite;
use tinman::vm::{interp, ExecConfig, ExecEvent, Insn, Machine, ProgramBuilder, Value};

/// A computation with heap state, calls, strings, and arrays — enough
/// surface for a migration to corrupt if anything is mis-shipped.
fn build_workload(seed: i64) -> tinman::vm::AppImage {
    let mut p = ProgramBuilder::new("mig");
    let cls = p.class("Acc", &["total", "buf"]);
    let s_chunk = p.string("chunk-");

    let step = p.define("step", 2, 4, |b, _| {
        // locals: 0=acc, 1=i, 2=buf, 3=idx
        // acc.total = (acc.total * 31 + i) mod 1e9+7
        b.load(0);
        b.load(0).op(Insn::GetField(0)).const_i(31).op(Insn::Mul);
        b.load(1).op(Insn::Add);
        b.const_i(1_000_000_007).op(Insn::Rem);
        b.op(Insn::PutField(0));
        // buf[i % len] = buf[i % len] + seed
        b.load(0).op(Insn::GetField(1)).store(2);
        b.load(1).load(2).op(Insn::ArrLen).op(Insn::Rem).store(3);
        b.load(2).load(3); // [arr, idx]
        b.load(2).load(3).op(Insn::ArrLoad).const_i(seed).op(Insn::Add); // [arr, idx, value]
        b.op(Insn::ArrStore);
        b.op(Insn::RetVoid);
    });

    let main = p.define("main", 0, 5, |b, _| {
        b.op(Insn::New(cls)).store(0);
        b.load(0).const_i(seed).op(Insn::PutField(0));
        b.const_i(8).op(Insn::NewArr).store(3);
        b.load(0).load(3).op(Insn::PutField(1));
        b.const_i(60).store(2);
        b.for_loop(1, 2, |b| {
            b.load(0).load(1).op(Insn::Call(step)).op(Insn::Pop);
            // string churn so the heap keeps growing
            b.op(Insn::ConstS(s_chunk)).load(1).op(Insn::StrFromInt).op(Insn::StrConcat);
            b.op(Insn::Pop);
        });
        // Result: total + buf[3]
        b.load(0).op(Insn::GetField(0));
        b.load(0).op(Insn::GetField(1)).const_i(3).op(Insn::ArrLoad);
        b.op(Insn::Add);
        b.op(Insn::Halt);
    });
    p.build(main)
}

/// Runs to completion on a single machine.
fn run_straight(image: &tinman::vm::AppImage) -> Value {
    let mut m = Machine::new();
    let mut host = interp::NullHost;
    let mut engine = TaintEngine::none();
    match interp::run(&mut m, image, &mut host, &mut engine, ExecConfig::client()).unwrap() {
        ExecEvent::Halted(v) => v,
        other => panic!("{other:?}"),
    }
}

/// Runs with a forced migration between two machines every `quantum`
/// instructions, alternating endpoints like real offloading does.
fn run_with_migrations(image: &tinman::vm::AppImage, quantum: u64) -> (Value, u64) {
    let mut a = Machine::new(); // "client"
    let mut b = Machine::new(); // "node"
    let mut host = interp::NullHost;
    let mut engine_a = TaintEngine::asymmetric();
    let mut engine_b = TaintEngine::full();
    let mut dsm = DsmEngine::new();
    let mut on_a = true;
    let mut migrations = 0u64;

    loop {
        let (machine, engine, site) = if on_a {
            (&mut a, &mut engine_a, LockSite::Client)
        } else {
            (&mut b, &mut engine_b, LockSite::TrustedNode)
        };
        let config = ExecConfig { site, ..ExecConfig::client().with_fuel(quantum) };
        match interp::run(machine, image, &mut host, engine, config).unwrap() {
            ExecEvent::Halted(v) => return (v, migrations),
            ExecEvent::OutOfFuel => {
                // Quantum expired: migrate to the other endpoint.
                let (src, dst, from) = if on_a {
                    (&mut a, &mut b, LockSite::Client)
                } else {
                    (&mut b, &mut a, LockSite::TrustedNode)
                };
                dsm.migrate(
                    src,
                    dst,
                    from,
                    SyncCause::OffloadTrigger,
                    &mut PassthroughMaterializer,
                    &mut PassthroughMaterializer,
                )
                .unwrap();
                dst.status = tinman::vm::MachineStatus::Runnable;
                migrations += 1;
                on_a = !on_a;
            }
            other => panic!("{other:?}"),
        }
        assert!(migrations < 10_000, "must terminate");
    }
}

#[test]
fn result_is_identical_across_migration_schedules() {
    let image = build_workload(17);
    let expected = run_straight(&image);
    for quantum in [23u64, 57, 101, 333, 1000, 5000] {
        let (v, migrations) = run_with_migrations(&image, quantum);
        assert_eq!(v, expected, "quantum {quantum} ({migrations} migrations)");
        if quantum < 200 {
            assert!(migrations > 2, "small quanta must actually migrate");
        }
    }
}

#[test]
fn different_seeds_different_results_same_transparency() {
    for seed in [1, 99, -5, 123456] {
        let image = build_workload(seed);
        let expected = run_straight(&image);
        let (v, _) = run_with_migrations(&image, 77);
        assert_eq!(v, expected, "seed {seed}");
    }
}

#[test]
fn heaps_converge_after_final_migration() {
    let image = build_workload(3);
    let mut a = Machine::new();
    let mut b = Machine::new();
    let mut host = interp::NullHost;
    let mut engine = TaintEngine::none();
    let mut dsm = DsmEngine::new();

    // Run halfway on A, migrate, finish on B, migrate back.
    let ev =
        interp::run(&mut a, &image, &mut host, &mut engine, ExecConfig::client().with_fuel(500))
            .unwrap();
    assert!(matches!(ev, ExecEvent::OutOfFuel));
    dsm.migrate(
        &mut a,
        &mut b,
        LockSite::Client,
        SyncCause::OffloadTrigger,
        &mut PassthroughMaterializer,
        &mut PassthroughMaterializer,
    )
    .unwrap();
    b.status = tinman::vm::MachineStatus::Runnable;
    let ev = interp::run(
        &mut b,
        &image,
        &mut host,
        &mut engine,
        ExecConfig::trusted_node(u64::MAX, u64::MAX),
    )
    .unwrap();
    let result = match ev {
        ExecEvent::Halted(v) => v,
        other => panic!("{other:?}"),
    };
    dsm.migrate(
        &mut b,
        &mut a,
        LockSite::TrustedNode,
        SyncCause::TaintIdle,
        &mut PassthroughMaterializer,
        &mut PassthroughMaterializer,
    )
    .unwrap();

    // Heaps are element-wise identical (no taint in this workload).
    assert_eq!(a.heap.len(), b.heap.len());
    for (id, obj) in b.heap.iter() {
        assert_eq!(&a.heap.get(id).unwrap().kind, &obj.kind, "{id:?}");
    }
    assert_eq!(result, run_straight(&image));
}
