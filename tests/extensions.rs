//! Tests for the paper's optional/discussion features implemented beyond
//! the core mechanisms: selective tainting (§3.5), generated passwords
//! (§5.4), and the authentication-token attack window (§5.4).

use std::collections::HashMap;

use tinman::apps::logins::{build_login_app, LoginAppSpec};
use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::CorStore;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::sim::{LinkProfile, SimDuration};
use tinman::vm::Value;

const PASSWORD: &str = "hunter2-sUp3r-s3cret";

fn inputs() -> HashMap<String, String> {
    HashMap::from([("username".to_owned(), "alice".to_owned())])
}

fn world(spec: &LoginAppSpec, config: TinmanConfig) -> TinmanRuntime {
    let mut store = CorStore::new(99);
    store.register(PASSWORD, spec.cor_description, &[spec.domain]).unwrap();
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), config);
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: PASSWORD.to_owned(),
            hash_login: false,
            think: SimDuration::from_millis(50),
            page_bytes: 0,
        },
    );
    rt
}

#[test]
fn selective_tainting_critical_app_is_protected() {
    // §3.5: only listed apps run with tainting. The listed app behaves as
    // usual: tainted placeholder, offload, successful login, clean device.
    let spec = LoginAppSpec::github();
    let app = build_login_app(&spec);
    let config = TinmanConfig { critical_apps: Some(vec![app.hash()]), ..TinmanConfig::default() };
    let mut rt = world(&spec, config);
    let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("critical app runs");
    assert_eq!(report.result, Value::Int(1));
    assert!(report.offloads >= 1);
    assert!(rt.scan_residue(PASSWORD).is_clean());
}

#[test]
fn selective_tainting_untracked_app_pays_nothing_and_protects_nothing() {
    // An app NOT in the critical list runs untracked: zero
    // taint-instrumentation cycles — and if it selects a cor anyway, the
    // placeholder goes out verbatim and the site rejects it. That failure
    // mode is the documented cost of turning tracking off.
    let spec = LoginAppSpec::github();
    let app = build_login_app(&spec);
    let config = TinmanConfig {
        critical_apps: Some(vec![[0u8; 32]]), // some other app
        ..TinmanConfig::default()
    };
    let mut rt = world(&spec, config);
    let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("untracked app runs");
    assert_eq!(report.result, Value::Int(0), "placeholder sent verbatim; site rejects");
    assert_eq!(report.offloads, 0, "nothing triggers without tracking");
    assert_eq!(
        rt.client.machine.stats.taint_cycles, 0,
        "zero instrumentation cost for non-critical apps"
    );
}

#[test]
fn generated_password_logs_in_without_anyone_typing_it() {
    // §5.4 "Generate New Password": the node mints the secret; the user
    // (and the device) never see it. We provision the site with the
    // generated plaintext — as the "create account" flow would — and then
    // log in through TinMan.
    let spec = LoginAppSpec::github();
    let mut store = CorStore::new(123);
    let id =
        store.generate_password(24, spec.cor_description, &[spec.domain]).expect("label space");
    let generated = store.plaintext(id).unwrap().to_owned();

    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: generated.clone(),
            hash_login: false,
            think: SimDuration::from_millis(50),
            page_bytes: 0,
        },
    );
    let app = build_login_app(&spec);
    let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("login runs");
    assert_eq!(report.result, Value::Int(1));
    assert!(rt.scan_residue(&generated).is_clean(), "the generated secret never hit the phone");
}

#[test]
fn auth_token_window_exists_but_cor_stays_protected() {
    // §5.4 "attack time window": a session token the server returns is NOT
    // a cor — it is visible to the app, it lands on the device, and a
    // thief could reuse it until it expires. TinMan's claim is narrower
    // and holds: the password itself is never exposed, so the token
    // window cannot become password theft (no reuse across sites).
    let spec = LoginAppSpec::github();
    let app = build_login_app(&spec);
    let mut rt = world(&spec, TinmanConfig::default());
    let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("login runs");
    assert_eq!(report.result, Value::Int(1));

    // The token is on the device (by design: the app must use it).
    let token_residue = rt.scan_residue("token=tk");
    assert!(!token_residue.is_clean(), "the session token is ordinary app data");
    // The password is not.
    assert!(rt.scan_residue(PASSWORD).is_clean());
}

#[test]
fn full_taint_mode_runs_taint_free_workloads_with_higher_cost() {
    // Mode::FullTaint exists for the Figure 13 comparison: on an app that
    // never touches cor it completes with strictly more instrumentation
    // cycles than TinMan's asymmetric client.
    use tinman::apps::malicious::build_residue_probe;
    let probe = build_residue_probe("MARKER-XYZ");
    let spec = LoginAppSpec::github();

    let mut rt = world(&spec, TinmanConfig::default());
    rt.run_app(&probe, Mode::TinMan, &inputs()).expect("asym run");
    let asym_cycles = rt.client.machine.stats.taint_cycles;

    let mut rt = world(&spec, TinmanConfig::default());
    rt.run_app(&probe, Mode::FullTaint, &inputs()).expect("full run");
    let full_cycles = rt.client.machine.stats.taint_cycles;

    assert!(full_cycles > asym_cycles, "full {full_cycles} must exceed asymmetric {asym_cycles}");
}

#[test]
fn anomaly_detection_flags_the_phishing_attempt() {
    // End-to-end: after a legitimate login and a denied phishing attempt,
    // the node-side analysis produces exactly the warnings a user should
    // see — a denial plus the novel app hash.
    use tinman::apps::malicious::build_phishing_app;
    use tinman::cor::{analyze, AnomalyConfig, PolicyRule, Warning};

    let spec = LoginAppSpec::github();
    let app = build_login_app(&spec);
    let mut rt = world(&spec, TinmanConfig::default());
    let cor = rt.node.store.ids()[0];
    rt.node
        .policy
        .set_rule(cor, PolicyRule { bound_app_hash: Some(app.hash()), ..Default::default() });

    rt.run_app(&app, Mode::TinMan, &inputs()).expect("legit login");
    let phish = build_phishing_app(spec.domain, spec.cor_description);
    let _ = rt.run_app(&phish, Mode::TinMan, &inputs()); // denied

    let warnings = analyze(&rt.node.audit, &AnomalyConfig::default());
    assert!(warnings.iter().any(|w| matches!(w, Warning::Denied { .. })), "{warnings:?}");
    assert!(warnings.iter().any(|w| matches!(w, Warning::NovelApp { .. })), "{warnings:?}");
}

#[test]
fn node_state_survives_a_restart() {
    // Persist the node's store + policy mid-session, rebuild the runtime
    // from the snapshots, and log in again.
    use tinman::cor::PolicyRule;

    let spec = LoginAppSpec::github();
    let app = build_login_app(&spec);
    let mut rt = world(&spec, TinmanConfig::default());
    let cor = rt.node.store.ids()[0];
    rt.node
        .policy
        .set_rule(cor, PolicyRule { bound_app_hash: Some(app.hash()), ..Default::default() });
    rt.run_app(&app, Mode::TinMan, &inputs()).expect("first login");

    // "Restart": serialize, rebuild, restore.
    let store_json = rt.node.store.to_json().expect("store serializes");
    let policy_snapshot = rt.node.policy.to_snapshot();
    let restored_store = CorStore::from_json(&store_json, 4242).expect("store restores");
    let mut rt2 = TinmanRuntime::new(restored_store, LinkProfile::wifi(), TinmanConfig::default());
    rt2.node.policy = tinman::cor::PolicyEngine::from_snapshot(policy_snapshot);
    let tls = rt2.server_tls_config();
    install_auth_server(
        &mut rt2.world,
        tls,
        AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: PASSWORD.to_owned(),
            hash_login: false,
            think: SimDuration::from_millis(50),
            page_bytes: 0,
        },
    );
    let report = rt2.run_app(&app, Mode::TinMan, &inputs()).expect("post-restart login");
    assert_eq!(report.result, Value::Int(1));
    assert!(rt2.scan_residue(PASSWORD).is_clean());
}
