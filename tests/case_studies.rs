//! The paper's §4 case studies, end to end: BankDroid (hash-of-password
//! login, the hash becoming a derived cor) and the browser checkout
//! (credit-card cor with the §4.2 policy rules).

use std::collections::HashMap;

use tinman::apps::bankdroid::{build_bankdroid, SAMPLE_TRANSACTIONS};
use tinman::apps::browser::build_browser_checkout;
use tinman::apps::servers::install_payment_server;
use tinman::cor::{CorStore, PolicyDecision, PolicyRule};
use tinman::core::error::RuntimeError;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::net::{Addr, ServerApp, ServerReply};
use tinman::sim::{LinkProfile, SimDuration};
use tinman::vm::Value;

const BANK_PASSWORD: &str = "correct-horse-battery";
const CARD_NUMBER: &str = "4111111111111111";
const CARD_CVV: &str = "847";

fn inputs() -> HashMap<String, String> {
    HashMap::from([
        ("username".to_owned(), "alice".to_owned()),
        ("amount".to_owned(), "99.95".to_owned()),
    ])
}

type BankHandler = Box<dyn FnMut(Addr, &str) -> (String, SimDuration)>;

/// A bank that expects `sha256(password)` and serves transactions after a
/// successful login (stateful across requests on one connection).
struct BankServer {
    tls: tinman::core::server::HttpsServerApp<BankHandler>,
}

impl BankServer {
    fn new(tls_config: tinman::tls::TlsConfig, password: &str) -> Self {
        use sha2::{Digest, Sha256};
        let hash: String =
            Sha256::digest(password.as_bytes()).iter().map(|b| format!("{b:02x}")).collect();
        let authed =
            std::rc::Rc::new(std::cell::RefCell::new(std::collections::HashSet::<Addr>::new()));
        let a2 = authed;
        let eu = "alice".to_owned();
        let eh = hash;
        let handler: BankHandler = Box::new(move |peer, request| {
            if request.starts_with("GET /transactions") {
                if a2.borrow().contains(&peer) {
                    (SAMPLE_TRANSACTIONS.to_owned(), SimDuration::from_millis(60))
                } else {
                    ("401 UNAUTHENTICATED".to_owned(), SimDuration::from_millis(10))
                }
            } else {
                let user = request.split('&').find_map(|kv| kv.strip_prefix("user=")).unwrap_or("");
                let pass = request.split('&').find_map(|kv| kv.strip_prefix("pass=")).unwrap_or("");
                if user == eu && pass == eh {
                    a2.borrow_mut().insert(peer);
                    ("200 OK welcome".to_owned(), SimDuration::from_millis(150))
                } else {
                    ("403 FORBIDDEN".to_owned(), SimDuration::from_millis(20))
                }
            }
        });
        BankServer { tls: tinman::core::server::HttpsServerApp::new(tls_config, handler) }
    }
}

impl ServerApp for BankServer {
    fn on_connect(&mut self, peer: Addr) {
        self.tls.on_connect(peer);
    }
    fn on_data(&mut self, peer: Addr, data: &[u8]) -> ServerReply {
        self.tls.on_data(peer, data)
    }
    fn on_close(&mut self, peer: Addr) {
        self.tls.on_close(peer);
    }
}

fn bank_runtime() -> TinmanRuntime {
    let mut store = CorStore::new(31);
    store.register(BANK_PASSWORD, "Citibank password", &["citibank.com"]).unwrap();
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    let host = rt.world.add_host("citibank.com", LinkProfile::ethernet());
    rt.world.install_server(Addr::new(host, 443), Box::new(BankServer::new(tls, BANK_PASSWORD)));
    rt
}

#[test]
fn bankdroid_hash_login_works_and_hash_is_a_derived_cor() {
    let app = build_bankdroid("citibank.com", "Citibank password");
    let mut rt = bank_runtime();
    let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("bankdroid runs");
    assert_eq!(report.result, Value::Int(1), "bank accepted sha256(password)");

    // Neither the password nor its hash may exist on the device.
    use sha2::{Digest, Sha256};
    let hash_hex: String =
        Sha256::digest(BANK_PASSWORD.as_bytes()).iter().map(|b| format!("{b:02x}")).collect();
    assert!(rt.scan_residue(BANK_PASSWORD).is_clean(), "password residue");
    assert!(rt.scan_residue(&hash_hex).is_clean(), "hash residue (it is a derived cor)");

    // The node's store now holds derived cors (the hash, the request body).
    assert!(rt.node.store.len() >= 3, "original + derived cors, got {}", rt.node.store.len());

    // The transactions ARE on the device — they are ordinary private data
    // (§5.4), displayed and cached in plaintext.
    assert!(!rt.scan_residue("salary").is_clean(), "transactions are not cor");
}

#[test]
fn bankdroid_with_wrong_password_cor_fails_cleanly() {
    let app = build_bankdroid("citibank.com", "Citibank password");
    let mut store = CorStore::new(31);
    store.register("wrong-password-entirely", "Citibank password", &["citibank.com"]).unwrap();
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    let host = rt.world.add_host("citibank.com", LinkProfile::ethernet());
    rt.world.install_server(Addr::new(host, 443), Box::new(BankServer::new(tls, BANK_PASSWORD)));
    let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("run completes");
    assert_eq!(report.result, Value::Int(0), "server rejects the wrong hash");
}

fn shop_runtime() -> TinmanRuntime {
    let mut store = CorStore::new(77);
    store.register(CARD_NUMBER, "Visa card number", &["shop.com"]).unwrap();
    store.register(CARD_CVV, "Visa security code", &["shop.com"]).unwrap();
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), TinmanConfig::default());
    let tls = rt.server_tls_config();
    install_payment_server(
        &mut rt.world,
        tls,
        "shop.com",
        CARD_NUMBER,
        CARD_CVV,
        SimDuration::from_millis(200),
    );
    rt
}

#[test]
fn browser_checkout_pays_without_card_data_on_device() {
    let app = build_browser_checkout("shop.com", "Visa card number", "Visa security code");
    let mut rt = shop_runtime();
    let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("checkout runs");
    assert_eq!(report.result, Value::Int(1), "payment accepted");
    assert!(rt.scan_residue(CARD_NUMBER).is_clean(), "card number residue");
    assert!(rt.scan_residue(CARD_CVV).is_clean(), "cvv residue");
    // The amount is NOT a cor and was typed normally.
    assert!(report.offloads >= 1);
}

#[test]
fn card_time_window_rule_applies_to_checkout() {
    // §4.2 rule 2: access allowed 10:00-22:00 only. The simulation starts
    // at hour 0, so the send is outside the window.
    let app = build_browser_checkout("shop.com", "Visa card number", "Visa security code");
    let mut rt = shop_runtime();
    for cor in rt.node.store.ids() {
        rt.node
            .policy
            .set_rule(cor, PolicyRule { time_window_hours: Some((10, 22)), ..Default::default() });
    }
    let err = rt.run_app(&app, Mode::TinMan, &inputs()).unwrap_err();
    assert!(matches!(err, RuntimeError::PolicyDenied(PolicyDecision::DeniedTimeWindow)));
}

#[test]
fn card_rate_limit_rule_applies_to_checkout() {
    // §4.2 rule 3: at most N uses per day.
    let app = build_browser_checkout("shop.com", "Visa card number", "Visa security code");
    let mut rt = shop_runtime();
    for cor in rt.node.store.ids() {
        rt.node
            .policy
            .set_rule(cor, PolicyRule { max_uses_per_day: Some(1), ..Default::default() });
    }
    assert!(rt.run_app(&app, Mode::TinMan, &inputs()).is_ok());
    let err = rt.run_app(&app, Mode::TinMan, &inputs()).unwrap_err();
    assert!(matches!(err, RuntimeError::PolicyDenied(PolicyDecision::DeniedRateLimit)));
}

#[test]
fn every_checkout_is_audited() {
    let app = build_browser_checkout("shop.com", "Visa card number", "Visa security code");
    let mut rt = shop_runtime();
    rt.run_app(&app, Mode::TinMan, &inputs()).unwrap();
    // §4.2 rule 4: all access operations logged.
    assert!(!rt.node.audit.is_empty());
    assert!(rt.node.audit.entries().iter().any(|e| e.domain.as_deref() == Some("shop.com")));
}
