//! Multiple trusted nodes (§5.3): "a user can deploy different trusted
//! nodes for different passwords to avoid putting all eggs in one basket.
//! Further, deploying passwords on multiple sites can also tolerate
//! various kinds of service failure."

use std::collections::HashMap;

use tinman::apps::logins::{build_login_app, LoginAppSpec};
use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::{CorStore, PolicyDecision};
use tinman::core::error::RuntimeError;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::sim::{LinkProfile, SimDuration};
use tinman::vm::Value;

const WORK_PASSWORD: &str = "employer-vault-secret";
const PERSONAL_PASSWORD: &str = "personal-social-secret";

fn inputs() -> HashMap<String, String> {
    HashMap::from([("username".to_owned(), "alice".to_owned())])
}

/// Two trusted nodes: the employer's (labels 0..32, holds the work
/// password for github.com) and a personal one (labels 32..64, holds the
/// personal password for askfm.com). Both sites installed.
fn setup() -> TinmanRuntime {
    // Employer node: the primary.
    let mut work_store = CorStore::with_label_range(11, 0, 32).unwrap();
    work_store.register(WORK_PASSWORD, "GitHub password", &["github.com"]).unwrap();
    let mut rt = TinmanRuntime::new(work_store, LinkProfile::wifi(), TinmanConfig::default());

    // Personal node: disjoint label range.
    let mut personal_store = CorStore::with_label_range(22, 32, 64).unwrap();
    personal_store.register(PERSONAL_PASSWORD, "Ask.fm password", &["askfm.com"]).unwrap();
    let idx = rt.add_trusted_node("personal-node", personal_store);
    assert_eq!(idx, 1);

    let tls = rt.server_tls_config();
    for (domain, password) in [("github.com", WORK_PASSWORD), ("askfm.com", PERSONAL_PASSWORD)] {
        install_auth_server(
            &mut rt.world,
            tls.clone(),
            AuthServerSpec {
                domain,
                user: "alice",
                password: password.to_owned(),
                hash_login: false,
                think: SimDuration::from_millis(50),
                page_bytes: 0,
            },
        );
    }
    rt
}

#[test]
fn each_login_routes_to_its_own_node() {
    let mut rt = setup();
    let github = build_login_app(&LoginAppSpec::github());
    let askfm = build_login_app(&LoginAppSpec::askfm());

    // Work login: served by the primary (employer) node.
    let r1 = rt.run_app(&github, Mode::TinMan, &inputs()).expect("github login");
    assert_eq!(r1.result, Value::Int(1));
    assert!(!rt.node.audit.is_empty(), "employer node audited the access");
    assert!(rt.extra_nodes[0].audit.is_empty(), "personal node saw nothing");

    // Personal login: served by the personal node.
    let r2 = rt.run_app(&askfm, Mode::TinMan, &inputs()).expect("askfm login");
    assert_eq!(r2.result, Value::Int(1));
    assert!(!rt.extra_nodes[0].audit.is_empty(), "personal node audited the access");

    // Neither secret ever touched the phone.
    assert!(rt.scan_residue(WORK_PASSWORD).is_clean());
    assert!(rt.scan_residue(PERSONAL_PASSWORD).is_clean());
}

#[test]
fn personal_secrets_never_reach_the_employer_node() {
    // The §5.3 privacy motivation: the employer's node must not learn the
    // personal password, even as a derived cor.
    let mut rt = setup();
    let askfm = build_login_app(&LoginAppSpec::askfm());
    rt.run_app(&askfm, Mode::TinMan, &inputs()).expect("askfm login");

    // All derived cors from the personal login live in the personal
    // node's store, none in the employer's.
    assert_eq!(rt.node.store.len(), 1, "employer store holds only the work password");
    assert!(rt.extra_nodes[0].store.len() > 1, "personal store gained derived cors");
    // And the employer's store has no record whose plaintext embeds the
    // personal password.
    assert!(rt.node.store.find_by_plaintext(PERSONAL_PASSWORD).is_none());
}

#[test]
fn revoking_one_node_leaves_the_other_usable() {
    // Service failure / compromise of one basket: the other keeps working.
    let mut rt = setup();
    let github = build_login_app(&LoginAppSpec::github());
    let askfm = build_login_app(&LoginAppSpec::askfm());

    // The employer revokes the device on ITS node only.
    rt.node.policy.revoke_device("phone-1");

    let err = rt.run_app(&github, Mode::TinMan, &inputs()).unwrap_err();
    assert!(matches!(err, RuntimeError::PolicyDenied(PolicyDecision::DeniedRevoked)));

    let ok = rt.run_app(&askfm, Mode::TinMan, &inputs()).expect("personal login unaffected");
    assert_eq!(ok.result, Value::Int(1));
}

#[test]
fn directory_lists_cors_from_all_nodes() {
    let rt = setup();
    assert!(rt.client.directory.find_by_description("GitHub password").is_some());
    assert!(rt.client.directory.find_by_description("Ask.fm password").is_some());
    // The merged directory still contains no plaintext.
    assert!(!rt.client.directory.contains_text(WORK_PASSWORD));
    assert!(!rt.client.directory.contains_text(PERSONAL_PASSWORD));
}

#[test]
fn warm_caches_are_per_node() {
    let mut rt = setup();
    let github = build_login_app(&LoginAppSpec::github());
    let askfm = build_login_app(&LoginAppSpec::askfm());
    rt.run_app(&github, Mode::TinMan, &inputs()).unwrap();
    assert!(rt.node.is_warm(&github.hash()));
    assert!(!rt.extra_nodes[0].is_warm(&askfm.hash()), "other node still cold");
    rt.run_app(&askfm, Mode::TinMan, &inputs()).unwrap();
    assert!(rt.extra_nodes[0].is_warm(&askfm.hash()));
    assert!(!rt.node.is_warm(&askfm.hash()), "employer node never saw the personal app");
}
