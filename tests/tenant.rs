//! Multi-tenant isolation tests: key-hierarchy properties (proptest)
//! and interleaved two-tenant fleet runs.
//!
//! The invariants here are the tinman-tenant acceptance bars:
//!
//! - key derivation is a pure function of `(master, tenant, epoch)` and
//!   separates on every input;
//! - a blob sealed by tenant A never opens — never even authenticates —
//!   under tenant B's keys, at any epoch, for any purpose;
//! - a two-tenant fleet run, at any worker interleaving, reports zero
//!   cross-tenant residue and zero plaintext at rest, and its simulated
//!   aggregate is byte-identical across worker counts.

use proptest::prelude::*;

use tinman::chaos::ChaosPlan;
use tinman::fleet::{run_fleet_chaos, FleetConfig, FleetObs};
use tinman::tenant::{KeyPurpose, TenantId, TenantKeyring};

proptest! {
    #[test]
    fn key_derivation_is_deterministic(master in any::<u64>(),
                                       tenant in any::<u64>(),
                                       epoch in any::<u32>()) {
        let a = TenantKeyring::derive(master, TenantId::new(tenant), epoch);
        let b = TenantKeyring::derive(master, TenantId::new(tenant), epoch);
        prop_assert_eq!(&a, &b);
        for purpose in KeyPurpose::ALL {
            prop_assert_eq!(a.purpose_key(purpose), b.purpose_key(purpose));
        }
    }

    #[test]
    fn key_hierarchy_separates_on_every_input(master in any::<u64>(),
                                              tenant in any::<u64>(),
                                              epoch in 0u32..u32::MAX) {
        let base = TenantKeyring::derive(master, TenantId::new(tenant), epoch);
        let other_tenant = TenantKeyring::derive(master, TenantId::new(tenant ^ 1), epoch);
        let other_epoch = TenantKeyring::derive(master, TenantId::new(tenant), epoch + 1);
        let other_master = TenantKeyring::derive(master ^ 1, TenantId::new(tenant), epoch);
        for purpose in KeyPurpose::ALL {
            let key = base.purpose_key(purpose);
            prop_assert_ne!(key, other_tenant.purpose_key(purpose));
            prop_assert_ne!(key, other_epoch.purpose_key(purpose));
            prop_assert_ne!(key, other_master.purpose_key(purpose));
        }
    }

    #[test]
    fn tenant_a_blobs_never_authenticate_under_tenant_b(
        master in any::<u64>(),
        tenant_a in 0u64..1 << 32,
        offset in 1u64..1 << 16,
        epoch in any::<u32>(),
        nonce in any::<u64>(),
        plaintext in "[ -~]{0,80}",
    ) {
        let a = TenantKeyring::derive(master, TenantId::new(tenant_a), epoch);
        let b = TenantKeyring::derive(master, TenantId::new(tenant_a + offset), epoch);
        for purpose in KeyPurpose::ALL {
            let blob = a.seal(purpose, nonce, &plaintext);
            prop_assert_eq!(a.open(purpose, &blob).unwrap(), plaintext.clone());
            prop_assert!(a.can_authenticate(purpose, &blob));
            prop_assert!(!b.can_authenticate(purpose, &blob),
                "tenant B must not authenticate tenant A's blob");
            prop_assert!(b.open(purpose, &blob).is_err());
        }
    }
}

fn tenant_cfg(sessions: usize, workers: usize, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::new(sessions, workers);
    cfg.nodes = 3;
    cfg.seed = seed;
    cfg.tenants = 2;
    cfg
}

proptest! {
    // Fleet runs are comparatively expensive; a handful of interleaved
    // cases is plenty to shake scheduling-dependent leaks out.
    #![cases(6)]

    #[test]
    fn interleaved_two_tenant_runs_have_zero_cross_tenant_residue(
        seed in any::<u64>(),
        sessions in 4usize..10,
        workers in 1usize..4,
    ) {
        let cfg = tenant_cfg(sessions, workers, seed);
        let report =
            run_fleet_chaos(&cfg, &ChaosPlan::empty(), &FleetObs::default()).expect("runs");
        prop_assert_eq!(report.cross_tenant_residue, 0,
            "tenant A's vault shard must never decrypt under tenant B's keys");
        prop_assert_eq!(report.wal_plaintexts, 0, "tenant vaults hold ciphertext at rest");
        prop_assert_eq!(report.wal_device_leaks, 0);
        prop_assert_eq!(report.lost_cors, 0, "sealing must not cost durability");
        prop_assert_eq!(report.residue_violations, 0);
    }
}

/// The determinism contract survives tenancy: the simulated aggregate —
/// including the four tenant columns — is byte-identical at 1, 4, and 8
/// workers, with policy denials and rotations in play.
#[test]
fn tenant_fleet_simulated_aggregate_is_byte_identical_across_workers() {
    let plan = ChaosPlan::canned("tenant-rotation").expect("canned plan");
    let run = |workers: usize| {
        let mut cfg = tenant_cfg(18, workers, 0xace0_fba5e);
        cfg.tenant_deny = vec!["shop.com".into()];
        cfg.unattested_nodes = vec![1];
        let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("runs");
        serde_json::to_string(&report.simulated_value()).expect("serializes")
    };
    let one = run(1);
    assert_eq!(one, run(4), "1 vs 4 workers");
    assert_eq!(one, run(8), "1 vs 8 workers");
    assert!(one.contains("\"policy_denials\""), "new columns are part of the contract");
    assert!(one.contains("\"cross_tenant_residue\":0"));
    assert!(one.contains("\"wal_plaintexts\":0"));
}

/// With tenancy off the fleet must serialize exactly as before, modulo
/// the four new (all-zero) columns — tenant 0 keeps historical placement
/// and the audits run unsealed.
#[test]
fn disabled_tenancy_keeps_plaintext_vaults_and_zero_tenant_columns() {
    let mut cfg = FleetConfig::new(8, 2);
    cfg.nodes = 2;
    let report = run_fleet_chaos(&cfg, &ChaosPlan::empty(), &FleetObs::default()).expect("runs");
    assert!(report.wal_plaintexts > 0, "single-tenant vaults hold plaintext by design");
    assert_eq!(report.policy_denials, 0);
    assert_eq!(report.cross_tenant_residue, 0);
    assert_eq!(report.unattested_refusals, 0);
    assert_eq!(report.tenant_key_rotations, 0);
}
