//! Vault acceptance: crash-consistent, replicated cor state through the
//! public facade.
//!
//! The contract under test: committed cor records survive every canned
//! crash schedule — mid-commit duplicates, torn WAL tails, crashes at
//! any point inside compaction — and the recovered store is
//! byte-identical to the crash-free reference. Replication adds the
//! failover side: only a replica whose acknowledged watermark covers a
//! session's writes may serve it immediately.

use tinman::cor::CorStore;
use tinman::vault::{
    catch_up_cost, CompactionCrash, ReplicatedVault, Vault, VaultOp, CATCH_UP_PER_LSN, WAL_FILE,
};

fn base() -> CorStore {
    CorStore::with_label_range(11, 0, 32).unwrap()
}

/// Registers cor `i` into `store` and returns the matching WAL op.
fn put(store: &mut CorStore, i: usize) -> VaultOp {
    let id =
        store.register(&format!("secret-{i}"), &format!("cor {i}"), &["site.example"]).unwrap();
    VaultOp::Put { record: store.get(id).unwrap().clone(), next_id: id.raw() + 1 }
}

/// A vault holding `n` committed records, plus the reference store.
fn committed_vault(n: usize) -> (Vault, CorStore) {
    let mut reference = base();
    let mut vault = Vault::create(&base()).unwrap();
    for i in 0..n {
        let op = put(&mut reference, i);
        vault.append(&op).unwrap();
        vault.commit();
    }
    (vault, reference)
}

#[test]
fn torn_tail_is_truncated_and_the_committed_prefix_replays() {
    let (mut vault, reference) = committed_vault(3);
    // A fourth record is staged but never reaches its barrier; the crash
    // lands a torn prefix of its frame.
    let mut extra = base();
    for i in 0..4 {
        let op = put(&mut extra, i);
        if i == 3 {
            vault.append(&op).unwrap();
        }
    }
    let mut disk = vault.into_disk();
    disk.crash_keeping(WAL_FILE, 5);

    let recovered = Vault::recover(disk, 99).unwrap();
    assert!(recovered.report.torn_tail_repaired, "the partial frame was truncated away");
    assert_eq!(recovered.report.applied_lsn, 3);
    assert_eq!(recovered.store.to_json().unwrap(), reference.to_json().unwrap());
}

#[test]
fn duplicated_appends_replay_idempotently() {
    let (mut vault, reference) = committed_vault(2);
    // A retried shipment re-lands the last committed frame verbatim.
    vault.inject_duplicate_of_last_committed();
    vault.commit();

    let recovered = Vault::recover(vault.into_disk(), 7).unwrap();
    assert!(recovered.report.duplicates > 0, "the duplicate landed and was skipped by LSN");
    assert_eq!(recovered.report.applied_lsn, 2);
    assert_eq!(recovered.store.to_json().unwrap(), reference.to_json().unwrap());
}

#[test]
fn committed_cors_survive_every_compaction_crash_point() {
    for (k, &point) in CompactionCrash::ALL.iter().enumerate() {
        let (vault, reference) = committed_vault(3);
        let disk = vault.compact_crashing_at(&reference, point, 0x1000 + k as u64).unwrap();
        let recovered = Vault::recover(disk, 42).unwrap();
        assert_eq!(
            recovered.store.to_json().unwrap(),
            reference.to_json().unwrap(),
            "{point:?}: compaction must be atomic from the reader's view"
        );
    }
}

#[test]
fn failover_is_gated_on_the_acknowledged_watermark() {
    let mut reference = base();
    let mut rv = ReplicatedVault::new(&base(), 2).unwrap();
    rv.set_lag(1, 3);
    for i in 0..5 {
        let op = put(&mut reference, i);
        rv.append(&op).unwrap();
        rv.commit_and_ship().unwrap();
    }
    assert_eq!(rv.high_water(), 5);
    assert_eq!(rv.watermark(0), 5);
    assert_eq!(rv.watermark(1), 2, "shipping lag holds the watermark back");

    // A session whose writes reached lsn 5 may only fail over to replica
    // 0; replica 1 must anti-entropy catch up first, at a visible cost.
    assert_eq!(rv.covering_replica(5), Some(0));
    let missing = rv.lag_of(1);
    assert_eq!(catch_up_cost(missing), CATCH_UP_PER_LSN * 3);
    assert_eq!(rv.catch_up(1).unwrap(), 3);
    assert_eq!(rv.watermark(1), 5);
    assert_eq!(rv.replica_store_json(1).unwrap(), reference.to_json().unwrap());
}
