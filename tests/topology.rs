//! Acceptance tests for the routed simulated internet: full login flows
//! crossing subnets, a NAT gateway, and a DNS resolver, plus a
//! mid-session Wi-Fi ↔ 3G mobility handoff while the login thread is
//! offloaded. The invariant under test is the ISSUE 8 contract: no
//! rewrite, outage, or address change ever widens the exposure of a
//! confidential cor — the secret is never visible on an untrusted
//! segment, and every disruption ends in transparent recovery or a
//! fail-closed kill with zero residue.

use std::collections::HashMap;

use tinman::apps::logins::{build_login_app, LoginAppSpec};
use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::CorStore;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::net::Handoff;
use tinman::sim::{LinkProfile, SimDuration, SimTime};
use tinman::vm::Value;

const PASSWORD: &str = "hunter2-sUp3r-s3cret";

fn inputs() -> HashMap<String, String> {
    HashMap::from([("username".to_owned(), "alice".to_owned())])
}

/// Builds a routed-topology runtime + auth server for one login spec:
/// phone on subnet 1 behind NAT, trusted node on subnet 2, the server on
/// the public subnet, two routers between them.
fn routed_setup(spec: &LoginAppSpec, config: TinmanConfig) -> (TinmanRuntime, String) {
    let mut store = CorStore::new(99);
    let id = store.register(PASSWORD, spec.cor_description, &[spec.domain]).expect("label space");
    let placeholder = store.placeholder(id).expect("registered").to_owned();
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), config);
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: PASSWORD.to_owned(),
            hash_login: spec.hash_login,
            think: SimDuration::from_millis(120),
            page_bytes: 64_000,
        },
    );
    (rt, placeholder)
}

fn topology_config() -> TinmanConfig {
    TinmanConfig { topology: true, ..TinmanConfig::default() }
}

/// A login whose offloaded thread's TCP payload replacement must
/// traverse the phone-side NAT: the secret plaintext is never visible on
/// any untrusted (post-NAT) segment, while the flow still authenticates
/// with the real credential.
#[test]
fn login_through_nat_never_shows_the_secret_on_the_wire() {
    let spec = LoginAppSpec::paypal();
    let app = build_login_app(&spec);
    let (mut rt, _placeholder) = routed_setup(&spec, topology_config());
    rt.world.set_wire_tap(true);

    let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("login runs");
    assert_eq!(report.result, Value::Int(1), "server accepted the real credential");
    assert!(report.offloads >= 1, "cor access must offload");

    let stats = rt.world.topology_stats();
    assert!(stats.nat_rewrites > 0, "phone traffic traversed the NAT gateway");
    assert!(rt.world.injected_count() > 0, "payload replacement happened");

    let tap = rt.world.take_wire_tap();
    assert!(!tap.is_empty(), "the tap saw post-NAT segments");
    let secret = PASSWORD.as_bytes();
    for seg in &tap {
        assert!(
            seg.payload.windows(secret.len()).all(|w| w != secret),
            "secret plaintext visible on an untrusted segment"
        );
    }

    let residue = rt.scan_residue(PASSWORD);
    assert!(residue.is_clean(), "found residue at {:?}", residue.hits);
}

/// The mobility acceptance scenario: the phone hands off Wi-Fi → 3G
/// (address change + NAT rebind + radio blackout) while the login thread
/// is offloaded; the session completes with the same result, the handoff
/// is re-punched through the NAT, and the device stays residue-free.
#[test]
fn handoff_mid_offload_login_completes_without_residue() {
    let spec = LoginAppSpec::paypal();
    let app = build_login_app(&spec);
    let config = TinmanConfig { topology: true, resync_retries: 3, ..TinmanConfig::default() };

    let run = || {
        let (mut rt, _) = routed_setup(&spec, config.clone());
        rt.world.schedule_handoff(
            rt.phone_host(),
            Handoff {
                at: SimTime::ZERO + SimDuration::from_millis(700),
                link: LinkProfile::three_g(),
                blackout: SimDuration::from_millis(150),
                rebind_nat: true,
                to_subnet: None,
            },
        );
        let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("login survives handoff");
        let stats = rt.world.topology_stats();
        let residue = rt.scan_residue(PASSWORD);
        (report, stats, residue)
    };

    let (report, stats, residue) = run();
    assert_eq!(report.result, Value::Int(1), "login completed across the handoff");
    assert!(report.offloads >= 1, "the thread was offloaded");
    assert_eq!(stats.handoffs, 1, "the handoff fired");
    assert!(stats.nat_rebinds >= 1, "the NAT binding was re-punched");
    assert!(residue.is_clean(), "found residue at {:?}", residue.hits);

    // The run is a pure function of its inputs: a second identical world
    // reproduces the report byte-for-byte (the fleet's worker-count
    // determinism rests on exactly this).
    let (again, stats_again, _) = run();
    assert_eq!(format!("{report:?}"), format!("{again:?}"), "handoff runs are deterministic");
    assert_eq!(stats, stats_again);
}

/// Flat (un-subnetted) worlds are byte-identical to the pre-topology
/// runtime: enabling nothing changes nothing, which is what keeps every
/// historical report stable.
#[test]
fn flat_config_reports_zero_topology_stats() {
    let spec = LoginAppSpec::paypal();
    let app = build_login_app(&spec);
    let (mut rt, _) = routed_setup(&spec, TinmanConfig::default());
    let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("login runs");
    assert_eq!(report.result, Value::Int(1));
    let stats = rt.world.topology_stats();
    assert_eq!(stats.nat_rewrites, 0);
    assert_eq!(stats.handoffs, 0);
    assert_eq!(stats.router_hops, 0);
}
