//! End-to-end login flows through the full TinMan stack.
//!
//! These tests exercise the complete paper pipeline: placeholder selection,
//! taint-triggered offload, DSM migration with cor tokenization, SSL
//! session injection, TCP payload replacement, migrate-back, and the §5.1
//! residue scan — against a strict authentication server that only accepts
//! the *real* credential.

use std::collections::HashMap;

use tinman::apps::logins::{build_login_app, LoginAppSpec};
use tinman::apps::servers::{install_auth_server, AuthServerSpec};
use tinman::cor::CorStore;
use tinman::core::runtime::{Mode, TinmanConfig, TinmanRuntime};
use tinman::sim::{LinkProfile, SimDuration};
use tinman::vm::Value;

const PASSWORD: &str = "hunter2-sUp3r-s3cret";

fn inputs() -> HashMap<String, String> {
    HashMap::from([("username".to_owned(), "alice".to_owned())])
}

/// Builds a runtime + server world for one login spec.
fn setup(spec: &LoginAppSpec, link: LinkProfile) -> TinmanRuntime {
    let mut store = CorStore::new(99);
    store.register(PASSWORD, spec.cor_description, &[spec.domain]).expect("label space");
    let mut rt = TinmanRuntime::new(store, link, TinmanConfig::default());
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: PASSWORD.to_owned(),
            hash_login: spec.hash_login,
            think: SimDuration::from_millis(120),
            page_bytes: 64_000,
        },
    );
    rt
}

#[test]
fn tinman_login_succeeds_and_leaves_no_residue() {
    let spec = LoginAppSpec::paypal();
    let app = build_login_app(&spec);
    let mut rt = setup(&spec, LinkProfile::wifi());

    let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("login runs");
    assert_eq!(report.result, Value::Int(1), "server accepted the real credential");
    assert!(report.offloads >= 1, "cor access must offload");
    assert!(report.node_methods > 0, "some methods ran on the node");
    assert!(report.client_methods > report.node_methods, "most code stays on the client");

    // The paper's headline: zero plaintext residue on the device.
    let residue = rt.scan_residue(PASSWORD);
    assert!(residue.is_clean(), "found residue at {:?}", residue.hits);
}

#[test]
fn stock_android_leaves_residue_tinman_does_not() {
    let spec = LoginAppSpec::paypal();
    let app = build_login_app(&spec);

    // Stock: the user types the password.
    let mut rt = setup(&spec, LinkProfile::wifi());
    let secrets = HashMap::from([(spec.cor_description.to_owned(), PASSWORD.to_owned())]);
    let report = rt.run_app(&app, Mode::Stock(secrets), &inputs()).expect("stock login runs");
    assert_eq!(report.result, Value::Int(1), "stock login also succeeds");
    assert_eq!(report.offloads, 0, "stock never offloads");
    let residue = rt.scan_residue(PASSWORD);
    assert!(
        !residue.is_clean(),
        "the stock device must hold plaintext residue (that is the motivation)"
    );
}

#[test]
fn all_table3_apps_login_successfully() {
    for spec in LoginAppSpec::table3() {
        let app = build_login_app(&spec);
        let mut rt = setup(&spec, LinkProfile::wifi());
        let report = rt.run_app(&app, Mode::TinMan, &inputs()).expect("login runs");
        assert_eq!(report.result, Value::Int(1), "{} login must succeed", spec.name);
        assert!(rt.scan_residue(PASSWORD).is_clean(), "{} left residue", spec.name);
        // Table 3 shape: a handful of syncs, init >> dirty.
        assert!(
            (2..=6).contains(&report.dsm.sync_count),
            "{}: {} syncs",
            spec.name,
            report.dsm.sync_count
        );
        assert!(
            report.dsm.init_bytes > report.dsm.dirty_bytes,
            "{}: init {} <= dirty {}",
            spec.name,
            report.dsm.init_bytes,
            report.dsm.dirty_bytes
        );
    }
}

#[test]
fn login_on_3g_is_slower_than_wifi() {
    let spec = LoginAppSpec::ebay();
    let app = build_login_app(&spec);

    let mut wifi = setup(&spec, LinkProfile::wifi());
    let r_wifi = wifi.run_app(&app, Mode::TinMan, &inputs()).unwrap();
    let mut threeg = setup(&spec, LinkProfile::three_g());
    let r_3g = threeg.run_app(&app, Mode::TinMan, &inputs()).unwrap();

    assert_eq!(r_wifi.result, Value::Int(1));
    assert_eq!(r_3g.result, Value::Int(1));
    assert!(
        r_3g.latency > r_wifi.latency,
        "3G {} must exceed Wi-Fi {}",
        r_3g.latency,
        r_wifi.latency
    );
}

#[test]
fn warm_runs_skip_the_image_upload() {
    let spec = LoginAppSpec::github();
    let app = build_login_app(&spec);
    let mut rt = setup(&spec, LinkProfile::wifi());

    let cold = rt.run_app(&app, Mode::TinMan, &inputs()).unwrap();
    assert!(cold.breakdown.get("warmup") > SimDuration::ZERO, "first run uploads the image");
    let warm = rt.run_app(&app, Mode::TinMan, &inputs()).unwrap();
    assert_eq!(warm.breakdown.get("warmup"), SimDuration::ZERO, "cache hit");
    assert!(warm.latency < cold.latency);
}

#[test]
fn offline_device_cannot_access_cor() {
    let spec = LoginAppSpec::paypal();
    let app = build_login_app(&spec);
    let mut store = CorStore::new(99);
    store.register(PASSWORD, spec.cor_description, &[spec.domain]).unwrap();
    let config = TinmanConfig { online: false, ..TinmanConfig::default() };
    let mut rt = TinmanRuntime::new(store, LinkProfile::wifi(), config);
    let tls = rt.server_tls_config();
    install_auth_server(
        &mut rt.world,
        tls,
        AuthServerSpec {
            domain: spec.domain,
            user: "alice",
            password: PASSWORD.to_owned(),
            hash_login: false,
            think: SimDuration::ZERO,
            page_bytes: 0,
        },
    );
    let err = rt.run_app(&app, Mode::TinMan, &inputs()).unwrap_err();
    assert!(matches!(err, tinman::core::error::RuntimeError::Offline));
}
