//! Fleet-level guarantees: the simulated aggregate is a pure function of
//! the fleet config (worker count changes wall clock only), and a downed
//! node's sessions complete on its replica shard.

use tinman::fleet::{run_fleet, FaultPlan, FleetConfig};

fn config(sessions: usize, workers: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(sessions, workers);
    cfg.nodes = 4;
    cfg
}

#[test]
fn simulated_aggregate_is_identical_at_1_4_and_8_workers() {
    let reports: Vec<String> = [1usize, 4, 8]
        .iter()
        .map(|&w| {
            let r = run_fleet(&config(24, w)).expect("fleet runs");
            assert_eq!(r.ok, 24, "all sessions succeed at {w} workers");
            serde_json::to_string(&r.simulated_value()).expect("serializes")
        })
        .collect();
    assert_eq!(reports[0], reports[1], "1 vs 4 workers");
    assert_eq!(reports[0], reports[2], "1 vs 8 workers");
}

#[test]
fn different_seeds_change_the_simulated_aggregate() {
    let mut a = config(12, 2);
    let mut b = config(12, 2);
    a.seed = 101;
    b.seed = 202;
    let ra = serde_json::to_string(&run_fleet(&a).expect("fleet runs").simulated_value()).unwrap();
    let rb = serde_json::to_string(&run_fleet(&b).expect("fleet runs").simulated_value()).unwrap();
    assert_ne!(ra, rb, "the fleet seed must actually feed the sessions");
}

#[test]
fn downed_node_fails_over_to_its_replica() {
    // First find which node the healthy fleet loads, then down it.
    let healthy = run_fleet(&config(18, 4)).expect("fleet runs");
    let victim = healthy.per_node.iter().max_by_key(|n| n.sessions).expect("nodes exist").node;
    assert!(healthy.per_node[victim].sessions > 0);

    let mut cfg = config(18, 4);
    cfg.faults = FaultPlan { down_nodes: vec![victim], slow_nodes: vec![] };
    let report = run_fleet(&cfg).expect("fleet runs");

    assert_eq!(report.ok, 18, "every session completes despite the downed node");
    assert_eq!(report.per_node[victim].sessions, 0, "the downed node serves nothing");
    assert!(report.failovers > 0, "the victim's sessions failed over");
    // Failover costs simulated time: the failed-over sessions pay backoff.
    let moved =
        report.outcomes.iter().find(|o| o.attempts > 1).expect("at least one session retried");
    assert!(moved.success);
    assert!(moved.latency >= cfg.backoff, "retry backoff charged to latency");
}

#[test]
fn failover_is_deterministic_too() {
    let mut cfg = config(12, 1);
    cfg.faults = FaultPlan { down_nodes: vec![0], slow_nodes: vec![] };
    let a = serde_json::to_string(&run_fleet(&cfg).expect("fleet runs").simulated_value()).unwrap();
    cfg.workers = 8;
    let b = serde_json::to_string(&run_fleet(&cfg).expect("fleet runs").simulated_value()).unwrap();
    assert_eq!(a, b, "failover schedule must not depend on worker count");
}
