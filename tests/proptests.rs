//! Property-based tests over the core invariants (proptest).
//!
//! These cover the invariants DESIGN.md calls out: cipher round-trips,
//! TCP delivery under adversarial segment scheduling, DSM convergence with
//! cor tokenization, taint-engine fidelity (the asymmetric engine never
//! misses a trigger), placeholder properties, and engine-independence of
//! program results.

use proptest::prelude::*;

use tinman::cor::CorStore;
use tinman::dsm::{CorMaterializer, HeapDelta, PassthroughMaterializer};
use tinman::taint::{EngineKind, Label, PropClass, TaintEngine, TaintSet};
use tinman::tls::cipher::{cbc_decrypt, cbc_encrypt, Rc4, Xtea, BLOCK};
use tinman::tls::{CipherSuite, ContentType, TlsRole, TlsSession, TlsVersion};
use tinman::vm::Heap;

// ---------- ciphers ----------

proptest! {
    #[test]
    fn rc4_round_trips(key in proptest::collection::vec(any::<u8>(), 1..64),
                       msg in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut enc = Rc4::new(&key);
        let mut data = msg.clone();
        enc.apply(&mut data);
        let mut dec = Rc4::new(&key);
        dec.apply(&mut data);
        prop_assert_eq!(data, msg);
    }

    #[test]
    fn cbc_round_trips_any_length(key in any::<[u8; 16]>(),
                                  iv in any::<[u8; BLOCK]>(),
                                  msg in proptest::collection::vec(any::<u8>(), 0..600)) {
        let cipher = Xtea::new(&key);
        let ct = cbc_encrypt(&cipher, &iv, &msg);
        prop_assert_eq!(ct.len() % BLOCK, 0);
        prop_assert!(ct.len() > msg.len(), "padding always present");
        let back = cbc_decrypt(&cipher, &iv, &ct).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn cbc_equal_lengths_stay_equal(key in any::<[u8; 16]>(),
                                    iv in any::<[u8; BLOCK]>(),
                                    len in 0usize..300) {
        // The property payload replacement rests on: two plaintexts of the
        // same length always seal to ciphertexts of the same length.
        let cipher = Xtea::new(&key);
        let a = cbc_encrypt(&cipher, &iv, &vec![0x41; len]);
        let b = cbc_encrypt(&cipher, &iv, &vec![0x42; len]);
        prop_assert_eq!(a.len(), b.len());
    }

    #[test]
    fn tls_records_round_trip_any_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
        use_rc4 in any::<bool>(),
    ) {
        let suite = if use_rc4 { CipherSuite::Rc4HmacSha256 } else { CipherSuite::XteaCbcHmacSha256 };
        let master = [5u8; 32];
        let mut c = TlsSession::from_master(master, TlsVersion::Tls12, suite, TlsRole::Client, 1);
        let mut s = TlsSession::from_master(master, TlsVersion::Tls12, suite, TlsRole::Server, 2);
        let wire = c.seal(ContentType::ApplicationData, &payload);
        let opened = s.open(&wire).unwrap();
        prop_assert_eq!(opened.len(), 1);
        prop_assert_eq!(&opened[0].1, &payload);
    }

    #[test]
    fn tls_tampering_any_byte_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        flip in any::<usize>(),
    ) {
        let master = [5u8; 32];
        let mut c = TlsSession::from_master(
            master, TlsVersion::Tls12, CipherSuite::XteaCbcHmacSha256, TlsRole::Client, 1);
        let mut s = TlsSession::from_master(
            master, TlsVersion::Tls12, CipherSuite::XteaCbcHmacSha256, TlsRole::Server, 2);
        let mut wire = c.seal(ContentType::ApplicationData, &payload);
        // Flip one bit somewhere in the record body (skip the 4-byte
        // header: header corruption may legitimately parse as a shorter or
        // pending record).
        let n = wire.len();
        let idx = 4 + (flip % (n - 4));
        wire[idx] ^= 0x01;
        prop_assert!(s.open(&wire).is_err());
    }
}

// ---------- TCP under adversarial scheduling ----------

proptest! {
    #[test]
    fn tcp_reassembles_under_reordering_and_duplication(
        data in proptest::collection::vec(any::<u8>(), 1..8000),
        order_seed in any::<u64>(),
        duplicate in any::<bool>(),
    ) {
        use tinman::net::tcp::TcpConn;
        use tinman::net::Addr;
        use tinman::net::HostId;

        let c_addr = Addr::new(HostId(1), 40000);
        let s_addr = Addr::new(HostId(2), 443);
        let (mut client, syn) = TcpConn::connect(c_addr, s_addr, 77);
        let (mut server, syn_ack) = TcpConn::accept(s_addr, &syn, 990);
        for a in client.on_segment(&syn_ack) {
            server.on_segment(&a);
        }

        let mut segs = client.send(&data);
        if duplicate {
            let dup = segs.clone();
            segs.extend(dup);
        }
        // Deterministic shuffle from the seed.
        let mut rng = order_seed;
        for i in (1..segs.len()).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (rng >> 33) as usize % (i + 1);
            segs.swap(i, j);
        }
        for seg in segs {
            for reply in server.on_segment(&seg) {
                client.on_segment(&reply);
            }
        }
        prop_assert_eq!(server.read_available(), data);
    }
}

// ---------- taint engines ----------

proptest! {
    /// The asymmetric engine triggers exactly when tainted heap data would
    /// reach the stack or derive a new value — i.e. it cannot "miss" a flow
    /// the full engine would track onto the stack.
    #[test]
    fn asymmetric_never_misses_a_heap_exit(
        moves in proptest::collection::vec((0u8..5, any::<bool>()), 1..100),
    ) {
        let mut asym = TaintEngine::asymmetric();
        let tainted = Label::new(3).unwrap().as_set();
        let mut triggered = false;
        let mut tainted_escaped_heap = false;
        for (class, is_tainted) in moves {
            let src = if is_tainted { tainted } else { TaintSet::EMPTY };
            let outcome = match class {
                0 => asym.on_move(PropClass::HeapToHeap, src),
                1 => asym.on_move(PropClass::HeapToStack, src),
                2 => asym.on_move(PropClass::StackToStack, src),
                3 => asym.on_move(PropClass::StackToHeap, src),
                _ => asym.on_derive(src),
            };
            if matches!(class, 1 | 4) && is_tainted && !triggered {
                tainted_escaped_heap = true;
            }
            if outcome.trigger_offload {
                triggered = true;
            }
        }
        prop_assert_eq!(triggered, tainted_escaped_heap,
            "trigger iff tainted data attempted to leave the heap");
    }

    /// A pure computation's result does not depend on the taint engine.
    #[test]
    fn results_are_engine_independent(a in -1000i64..1000, b in -1000i64..1000, n in 1u32..20) {
        use tinman::vm::{interp, ExecConfig, ExecEvent, Insn, Machine, ProgramBuilder};

        let build = || {
            let mut p = ProgramBuilder::new("prop");
            let main = p.define("main", 0, 4, |bld, _| {
                bld.const_i(a).store(0);
                bld.const_i(n as i64).store(2);
                bld.for_loop(1, 2, |bld| {
                    bld.load(0).const_i(b).op(Insn::Add).const_i(3).op(Insn::Mul).store(0);
                });
                bld.load(0).op(Insn::Halt);
            });
            p.build(main)
        };
        let run = |kind: EngineKind| {
            let image = build();
            let mut m = Machine::new();
            let mut host = interp::NullHost;
            let mut e = match kind {
                EngineKind::None => TaintEngine::none(),
                EngineKind::Full => TaintEngine::full(),
                EngineKind::Asymmetric => TaintEngine::asymmetric(),
            };
            match interp::run(&mut m, &image, &mut host, &mut e, ExecConfig::client()).unwrap() {
                ExecEvent::Halted(v) => v,
                other => panic!("{other:?}"),
            }
        };
        let r0 = run(EngineKind::None);
        prop_assert_eq!(run(EngineKind::Full), r0);
        prop_assert_eq!(run(EngineKind::Asymmetric), r0);
    }
}

// ---------- DSM convergence ----------

proptest! {
    /// After a full sync, the receiving heap matches the sender except for
    /// tainted content, for arbitrary heaps.
    #[test]
    fn dsm_full_sync_converges(
        strings in proptest::collection::vec(("[a-z]{0,40}", any::<bool>()), 0..40),
    ) {
        let mut src = Heap::new();
        let label = Label::new(7).unwrap().as_set();
        for (content, tainted) in &strings {
            if *tainted {
                src.alloc_str_tainted(content.clone(), label);
            } else {
                src.alloc_str(content.clone());
            }
        }
        let mut mat = PassthroughMaterializer;
        let delta = HeapDelta::build_full(&src, &mut mat).unwrap();
        let mut dst = Heap::new();
        delta.apply(&mut dst, &mut mat).unwrap();

        prop_assert_eq!(dst.len(), src.len());
        for (id, obj) in src.iter() {
            let d = dst.get(id).unwrap();
            prop_assert_eq!(d.taint, obj.taint);
            if obj.taint.is_empty() {
                prop_assert_eq!(&d.kind, &obj.kind, "untainted content identical");
            } else {
                // Tainted content is shape-preserved but scrubbed.
                prop_assert_eq!(
                    dst.str_value(id).unwrap().len(),
                    src.str_value(id).unwrap().len()
                );
            }
        }
    }

    /// Incremental dirty syncs converge to the same state as one full sync.
    #[test]
    fn dsm_dirty_syncs_converge(
        batches in proptest::collection::vec(
            proptest::collection::vec("[a-z]{1,20}", 1..10), 1..5),
    ) {
        let mut mat = PassthroughMaterializer;
        let mut src = Heap::new();
        let mut dst = Heap::new();
        // Initial sync of an empty heap.
        HeapDelta::build_full(&src, &mut mat).unwrap().apply(&mut dst, &mut mat).unwrap();
        src.clear_sync_marks();
        for batch in &batches {
            for s in batch {
                src.alloc_str(s.clone());
            }
            let delta = HeapDelta::build_dirty(&src, &mut mat).unwrap();
            delta.apply(&mut dst, &mut mat).unwrap();
            src.clear_sync_marks();
        }
        prop_assert_eq!(dst.len(), src.len());
        for (id, obj) in src.iter() {
            prop_assert_eq!(&dst.get(id).unwrap().kind, &obj.kind);
        }
    }
}

// ---------- cor store ----------

proptest! {
    #[test]
    fn placeholders_match_length_never_value(secret in "[!-~]{1,60}") {
        let mut store = CorStore::new(3);
        // NB: the description must not share text with the secret — the
        // residue scan is substring-based and descriptions are public.
        let id = store.register(&secret, " ", &[]).unwrap();
        let ph = store.placeholder(id).unwrap();
        prop_assert_eq!(ph.len(), secret.len());
        prop_assert_ne!(ph, secret.as_str());
        // The serialized client directory never contains the secret.
        let dir = store.client_directory();
        prop_assert!(!dir.contains_text(&secret));
    }

    #[test]
    fn derived_cor_round_trip(parent in "[a-z]{4,20}", derived in "[A-Z0-9]{4,40}") {
        let mut store = CorStore::new(9);
        let p = store.register(&parent, "parent", &["site.com"]).unwrap();
        let d = store.register_derived(&derived, p.taint()).unwrap();
        prop_assert_eq!(store.plaintext(d).unwrap(), derived.as_str());
        prop_assert_eq!(store.find_by_plaintext(&derived), Some(d));
        prop_assert_eq!(store.placeholder(d).unwrap().len(), derived.len());
        // Whitelist inherited.
        prop_assert!(store.get(d).unwrap().whitelist.contains(&"site.com".to_owned()));
    }
}

// ---------- materializer leak-freedom ----------

proptest! {
    /// For any plaintext, the node-side tokenization of a tainted string
    /// never serializes the plaintext.
    #[test]
    fn node_tokens_never_leak(secret in "[a-zA-Z0-9]{8,40}") {
        use tinman::core::materialize::NodeMaterializer;
        use tinman::vm::HeapKind;

        let mut store = CorStore::new(1);
        let id = store.register(&secret, "s", &[]).unwrap();
        let mut nm = NodeMaterializer { store: &mut store };
        let token = nm.tokenize(&HeapKind::Str(secret.clone()), id.taint()).unwrap();
        let wire = serde_json::to_string(&token).unwrap();
        prop_assert!(!wire.contains(&secret));
    }
}

// ---------- vault recovery ----------

use tinman::vault::{Vault, VaultOp};

proptest! {
    /// For arbitrary WAL contents (any record set, any interleaving of
    /// commit barriers) and an arbitrary seeded crash point, recovery
    /// either reproduces the exact reference store — byte-identical
    /// snapshot JSON for the prefix it reports applied, which must cover
    /// at least every committed record — or reports a checked error.
    /// Never a panic, never a silently divergent store.
    #[test]
    fn vault_recovery_is_exact_or_a_checked_error(
        secrets in proptest::collection::vec("[a-zA-Z0-9]{4,24}", 1..6),
        commit_mask in any::<u64>(),
        crash_seed in any::<u64>(),
        reseed in any::<u64>(),
    ) {
        // Build the records by registering into a reference-seeded store;
        // duplicates are dropped (the store rejects them) rather than
        // discarded wholesale, so the generator keeps its full range.
        let mut filler = CorStore::with_label_range(7, 0, 32).unwrap();
        // The anchor cannot collide with the generated secrets (they
        // never contain '!'), so the record set is never empty.
        let anchor = filler.register("anchor!", " ", &[]).unwrap();
        let mut records = vec![filler.get(anchor).unwrap().clone()];
        for s in &secrets {
            if let Some(id) = filler.register(s, " ", &[]) {
                records.push(filler.get(id).unwrap().clone());
            }
        }

        let base = CorStore::with_label_range(7, 0, 32).unwrap();
        let mut vault = Vault::create(&base).unwrap();
        let mut committed = 0usize;
        for (i, r) in records.iter().enumerate() {
            vault.append(&VaultOp::Put { record: r.clone(), next_id: r.id.raw() + 1 }).unwrap();
            if commit_mask >> (i % 64) & 1 == 1 {
                vault.commit();
                committed = i + 1;
            }
        }
        let mut disk = vault.into_disk();
        // Arbitrary crash point: every staged byte may land, partially
        // land (a torn tail), or vanish, per the seeded budget.
        disk.crash(crash_seed);

        match Vault::recover(disk, reseed) {
            Ok(recovered) => {
                let applied = recovered.report.applied_lsn as usize;
                prop_assert!(applied >= committed,
                    "fsynced records must survive: applied {applied} < committed {committed}");
                prop_assert!(applied <= records.len());
                let mut reference = CorStore::with_label_range(7, 0, 32).unwrap();
                for r in &records[..applied] {
                    reference.install_record(r.clone(), r.id.raw() + 1).unwrap();
                }
                prop_assert_eq!(
                    recovered.store.to_json().unwrap(),
                    reference.to_json().unwrap(),
                    "recovered store must be byte-identical to the applied-prefix reference"
                );
            }
            Err(_) => {
                // A checked refusal is acceptable; silent divergence and
                // panics are not (reaching here proves neither happened).
            }
        }
    }
}

// ---------- guard: hostile bytecode always terminates, never panics ----------

/// Decodes one fuzzed `(selector, payload)` pair into an instruction.
/// Indices are taken modulo one-past-the-pool so out-of-range string,
/// class, function, local, and field references all stay reachable —
/// each must surface as a *typed* `VmError`, never a panic.
fn fuzz_insn(sel: u8, a: i64, code_len: usize) -> tinman::vm::Insn {
    use tinman::vm::{ClassId, FuncId, Insn as I, StrIdx};
    let target = (a.unsigned_abs() % (code_len as u64 + 2)) as u32;
    match sel % 44 {
        0 => I::ConstI(a),
        1 => I::ConstD(a as f64),
        2 => I::ConstS(StrIdx((a as u32) % 3)),
        3 => I::ConstNull,
        4 => I::Load((a as u16) % 6),
        5 => I::Store((a as u16) % 6),
        6 => I::Dup,
        7 => I::Pop,
        8 => I::Swap,
        9 => I::Add,
        10 => I::Sub,
        11 => I::Mul,
        12 => I::Div,
        13 => I::Rem,
        14 => I::Neg,
        15 => I::BitAnd,
        16 => I::BitOr,
        17 => I::BitXor,
        18 => I::Shl,
        19 => I::Shr,
        20 => I::CmpEq,
        21 => I::CmpLt,
        22 => I::I2D,
        23 => I::D2I,
        24 => I::Jump(target),
        25 => I::JumpIfZero(target),
        26 => I::JumpIfNonZero(target),
        27 => I::New(ClassId((a as u32) % 2)),
        28 => I::GetField((a as u16) % 3),
        29 => I::PutField((a as u16) % 3),
        30 => I::NewArr,
        31 => I::ArrLoad,
        32 => I::ArrStore,
        33 => I::ArrLen,
        34 => I::ArrCopy,
        35 => I::StrConcat,
        36 => I::StrCharAt,
        37 => I::StrLen,
        38 => I::StrSub,
        39 => I::StrIndexOf,
        40 => I::Call(FuncId((a as u32) % 3)),
        41 => I::Ret,
        42 => I::MonitorEnter,
        _ => I::Nop,
    }
}

proptest! {
    /// Arbitrary guest bytecode under a guard envelope (fuel + heap
    /// quota + depth limit) always terminates — with a halt, a
    /// suspension event, fuel exhaustion, or a *typed* `VmError` — and
    /// never retires more instructions than its fuel. Reaching the
    /// assertions at all proves no panic was reachable.
    #[test]
    fn hostile_bytecode_always_terminates_within_fuel(
        raw in proptest::collection::vec((any::<u8>(), any::<i64>()), 1..80),
        fuel in 1u64..3_000,
    ) {
        use tinman::taint::TaintEngine;
        use tinman::vm::{interp, AppImage, ClassDef, ExecConfig, FuncId, Function, Machine};

        let code_len = raw.len();
        let code: Vec<_> =
            raw.iter().map(|&(sel, a)| fuzz_insn(sel, a, code_len)).collect();
        let image = AppImage {
            name: "fuzz".to_owned(),
            functions: vec![
                Function { name: "main".to_owned(), n_args: 0, n_locals: 5, code },
                Function {
                    name: "callee".to_owned(),
                    n_args: 1,
                    n_locals: 2,
                    code: vec![tinman::vm::Insn::Load(0), tinman::vm::Insn::Ret],
                },
            ],
            classes: vec![ClassDef { name: "C".to_owned(), fields: vec!["a".into(), "b".into()] }],
            strings: vec!["s".to_owned(), "tt".to_owned()],
            natives: vec![],
            entry: FuncId(0),
        };
        let mut m = Machine::new();
        let mut host = interp::NullHost;
        let mut engine = TaintEngine::asymmetric();
        // Taint-idle above fuel so the run exercises the budgets, not the
        // migrate-back path.
        let cfg = ExecConfig::trusted_node(fuel + 1_000, fuel)
            .with_heap_quota(64, 1 << 16)
            .with_depth_limit(12);
        // Ok(any event) and Err(any typed VmError) are both termination;
        // the property is that we get *here* (no panic, no hang).
        let _ = interp::run(&mut m, &image, &mut host, &mut engine, cfg);
        prop_assert!(m.stats.instrs <= fuel, "retired {} > fuel {fuel}", m.stats.instrs);
    }
}

// ---------- fleet report stats & pool placement ----------

use tinman::fleet::{FaultPlan, LatencyStats, NodePool};
use tinman::sim::SimDuration;

proptest! {
    /// Quantiles of any latency sample are ordered and bounded by the
    /// sample's min/max; the empty sample is all zeros.
    #[test]
    fn latency_stats_quantiles_are_ordered_and_bounded(
        nanos in proptest::collection::vec(0u64..10_000_000_000, 0..200)
    ) {
        let mut sorted: Vec<SimDuration> =
            nanos.iter().map(|&n| SimDuration::from_nanos(n)).collect();
        sorted.sort_unstable();
        let stats = LatencyStats::from_sorted(&sorted);
        if sorted.is_empty() {
            prop_assert_eq!(stats.mean, SimDuration::ZERO);
            prop_assert_eq!(stats.p50, SimDuration::ZERO);
            prop_assert_eq!(stats.p99, SimDuration::ZERO);
        } else {
            let min = sorted[0];
            let max = *sorted.last().unwrap();
            prop_assert!(stats.p50 <= stats.p95);
            prop_assert!(stats.p95 <= stats.p99);
            prop_assert!(min <= stats.p50 && stats.p99 <= max);
            prop_assert!(min <= stats.mean && stats.mean <= max,
                "mean sits between min and max");
        }
    }

    /// A single sample IS every quantile and the mean.
    #[test]
    fn latency_stats_single_sample_is_every_quantile(n in 0u64..1 << 62) {
        let d = SimDuration::from_nanos(n);
        let stats = LatencyStats::from_sorted(&[d]);
        prop_assert_eq!(stats.mean, d);
        prop_assert_eq!(stats.p50, d);
        prop_assert_eq!(stats.p95, d);
        prop_assert_eq!(stats.p99, d);
    }

    /// Nearest-rank boundary behavior: over the sample `1ns..=len ns`
    /// the q-th percentile is exactly the `max(1, ceil(q*len/100))`-th
    /// smallest — checked against an independent formula so off-by-one
    /// rank arithmetic (the classic `(q*n)/100` truncation bug) fails.
    #[test]
    fn latency_stats_nearest_rank_boundaries(len in 1u64..150) {
        let sorted: Vec<SimDuration> = (1..=len).map(SimDuration::from_nanos).collect();
        let stats = LatencyStats::from_sorted(&sorted);
        let nearest = |q: u64| SimDuration::from_nanos((q * len).div_ceil(100).max(1));
        prop_assert_eq!(stats.p50, nearest(50));
        prop_assert_eq!(stats.p95, nearest(95));
        prop_assert_eq!(stats.p99, nearest(99));
    }

    /// The failover walk starts at the consistent-hash primary, never
    /// repeats a shard, and reaches every shard in the pool.
    #[test]
    fn replica_order_starts_at_primary_distinct_covers_all(
        nodes in 1usize..17, capacity in 1usize..4, key in any::<u64>()
    ) {
        let pool = NodePool::new(nodes, capacity, &FaultPlan::default()).unwrap();
        let order = pool.replica_order(key);
        prop_assert_eq!(order[0], pool.place(key), "walk starts at the primary");
        let mut dedup = order.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), order.len(), "no shard appears twice");
        prop_assert_eq!(order.len(), pool.len(), "walk covers every shard");
        prop_assert!(order.iter().all(|&n| n < pool.len()), "indices in range");
    }
}

// ---------- wire chaos on the routed net ----------

proptest! {
    /// Satellite invariant for the routed internet: a TCP exchange under
    /// combined loss + corruption + delay chaos either delivers the exact
    /// bytes or fails with a checked error (never a partial/garbled
    /// delivery), and the whole run — outcome, retransmit/sequence
    /// accounting, radio traffic — is a pure function of the dice seed:
    /// rerunning it yields byte-identical `NetChaosStats`.
    #[test]
    fn tcp_chaos_delivers_exactly_or_fails_closed_deterministically(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        loss in 0u8..101,
        corrupt in 0u8..101,
        delay_ms in 0u64..50,
        seed in any::<u64>(),
    ) {
        use tinman::net::{Addr, NetChaos, NetChaosStats, NetWorld, ServerApp, ServerReply, Traffic};
        use tinman::sim::{LinkProfile, SimClock, SimDuration};

        struct Echo;
        impl ServerApp for Echo {
            fn on_data(&mut self, _peer: Addr, data: &[u8]) -> ServerReply {
                ServerReply { data: data.to_vec(), ..ServerReply::default() }
            }
        }

        let run = || -> (Result<Vec<u8>, String>, NetChaosStats, Traffic, (u32, u32)) {
            let mut world = NetWorld::new(SimClock::new());
            let phone = world.add_host("phone", LinkProfile::wifi());
            let server = world.add_host("server", LinkProfile::ethernet());
            world.install_server(Addr::new(server, 443), Box::new(Echo));
            world.set_chaos(NetChaos {
                loss_pct: loss,
                corrupt_pct: corrupt,
                extra_delay: SimDuration::from_millis(delay_ms),
                flap: None,
                partitions: Vec::new(),
                seed,
            });
            let mut seq = (0, 0);
            let out = (|| {
                let conn =
                    world.connect(phone, Addr::new(server, 443)).map_err(|e| e.to_string())?;
                world.send(conn, &data).map_err(|e| e.to_string())?;
                let got = world.recv_available(conn).map_err(|e| e.to_string())?;
                seq = world.conn_seq(conn).map_err(|e| e.to_string())?;
                Ok(got)
            })();
            let traffic = world.traffic(phone).expect("phone exists");
            (out, world.chaos_stats(), traffic, seq)
        };

        let (a, stats_a, traffic_a, seq_a) = run();
        let (b, stats_b, traffic_b, seq_b) = run();
        prop_assert_eq!(&a, &b, "outcome is a pure function of the dice seed");
        prop_assert_eq!(stats_a, stats_b, "NetChaosStats byte-identical across reruns");
        prop_assert_eq!(traffic_a, traffic_b, "radio accounting byte-identical across reruns");
        prop_assert_eq!(seq_a, seq_b, "sequence accounting byte-identical across reruns");
        match a {
            // Loss and corruption are modeled as retransmissions, so a
            // surviving exchange must deliver the bytes exactly.
            Ok(got) => prop_assert_eq!(got, data, "delivery is exact, never garbled"),
            // Fail closed: a checked error and nothing delivered.
            Err(msg) => prop_assert!(!msg.is_empty()),
        }
    }
}

// ---------- arbitrary topology chaos plans ----------

proptest! {
    // Fleet runs are heavy; a handful of arbitrary plans per test run
    // keeps the suite fast while the seed corpus accumulates coverage.
    #![cases(6)]

    /// The acceptance property for the routed-internet families: under
    /// ANY combination of `RouterCrash`/`NatTableFlush`/`DnsOutage`/
    /// `HandoffStorm`, every session either completes (after bounded
    /// re-sync retries) or fails closed — and no outcome ever leaves cor
    /// plaintext residue on a device or ships vault bytes to one.
    #[test]
    fn arbitrary_topology_plans_complete_or_fail_closed(
        families in any::<u8>(),
        crash in (50u64..1200, 1u64..400),
        flush_at in 200u64..1500,
        dns in (0u64..300, 1u64..300, 0u64..4),
        storm in (1u32..3, 200u64..900, 0u64..250),
    ) {
        use tinman::chaos::{ChaosEvent, ChaosPlan};
        use tinman::fleet::{run_fleet_chaos, FleetConfig, FleetObs};
        use tinman::sim::SimDuration;

        // The low 4 bits of `families` pick which families this plan
        // combines, so singletons and every interaction both get cases.
        let mut events = Vec::new();
        if families & 1 != 0 {
            let (from, len) = crash;
            events.push(ChaosEvent::RouterCrash {
                from: SimDuration::from_millis(from),
                until: SimDuration::from_millis(from + len),
            });
        }
        if families & 2 != 0 {
            events.push(ChaosEvent::NatTableFlush { at: SimDuration::from_millis(flush_at) });
        }
        if families & 4 != 0 {
            let (from, len, from_session) = dns;
            events.push(ChaosEvent::DnsOutage {
                from: SimDuration::from_millis(from),
                until: SimDuration::from_millis(from + len),
                from_session,
                until_session: from_session + 2,
            });
        }
        if families & 8 != 0 {
            let (count, every, blackout) = storm;
            events.push(ChaosEvent::HandoffStorm {
                count,
                every: SimDuration::from_millis(every),
                blackout: SimDuration::from_millis(blackout),
            });
        }
        let mut plan = ChaosPlan::empty();
        plan.events = events;
        let mut cfg = FleetConfig::new(4, 2);
        cfg.nodes = 2;
        cfg.topology = true;
        let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).unwrap();
        prop_assert_eq!(report.residue_violations, 0, "no plan leaves cor residue");
        prop_assert_eq!(report.wal_device_leaks, 0, "vault bytes never reach a device");
        prop_assert_eq!(
            report.ok + report.fail_closed, report.sessions,
            "every session completes after bounded retries or fails closed"
        );
        prop_assert!(report.outcomes.iter().all(|o| o.success || o.fail_closed));
    }
}
