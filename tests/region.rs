//! Region acceptance: live membership, session migration, and
//! fail-closed region evacuation, end to end through the public facade.
//!
//! The headline scenario is the PR's acceptance bar: a canned
//! `region-failover` run with a whole-region outage mid-offload finishes
//! with every session either migrated-and-completed on a peer region or
//! failed closed with a scrubbed heap — ok + fail_closed == sessions,
//! migration_residue == 0, lost_cors == 0 — byte-identical across 1, 4,
//! and 8 workers. Flat single-region configs must produce reports
//! byte-identical to the pre-PR goldens, pinned below.

use tinman::chaos::ChaosPlan;
use tinman::fleet::{
    run_fleet_chaos, run_fleet_obs, FleetConfig, FleetObs, FleetReport, MembershipState,
};

fn simulated(report: &FleetReport) -> String {
    serde_json::to_string(&report.simulated_value()).unwrap()
}

/// The three pre-PR golden reports (clean scheduler, chaos path, tenant
/// path), captured at the seed state before any region code landed. The
/// compatibility clause: flat configs — regions ≤ 1, no drain, no
/// membership events — keep byte-identical reports through the whole
/// refactor (shared retry policy, region-aware executor, report keys).
#[test]
fn flat_reports_match_pre_pr_goldens() {
    let obs = FleetObs::default();

    let cfg = FleetConfig::new(24, 2);
    let r = run_fleet_obs(&cfg, &obs).expect("fleet runs");
    assert_eq!(simulated(&r), include_str!("golden/flat_24.json").trim_end());

    let mut cfg = FleetConfig::new(16, 2);
    cfg.seed = 7;
    let plan = ChaosPlan::canned("crash-primary").expect("canned plan");
    let r = run_fleet_chaos(&cfg, &plan, &obs).expect("fleet runs");
    assert_eq!(simulated(&r), include_str!("golden/chaos_crash_primary_16.json").trim_end());

    let mut cfg = FleetConfig::new(12, 2);
    cfg.seed = 7;
    cfg.tenants = 2;
    cfg.tenant_deny = vec!["shop.com".to_owned()];
    cfg.unattested_nodes = vec![1];
    let plan = ChaosPlan::canned("tenant-rotation").expect("canned plan");
    let r = run_fleet_chaos(&cfg, &plan, &obs).expect("fleet runs");
    assert_eq!(simulated(&r), include_str!("golden/tenant_rotation_12.json").trim_end());
}

/// The acceptance bar: whole-region outage mid-offload under the canned
/// `region-failover` plan.
#[test]
fn region_failover_migrates_or_fails_closed_byte_identically() {
    let plan = ChaosPlan::canned("region-failover").expect("canned plan");
    let mut reference: Option<String> = None;
    for workers in [1usize, 4, 8] {
        let mut cfg = FleetConfig::new(16, workers);
        cfg.regions = 2;
        let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("runs");
        assert!(report.region_mode, "region plan flips the report into region mode");
        assert!(report.migrations > 0, "in-flight sessions migrate off the dying region");
        assert_eq!(report.migration_residue, 0, "source heaps scrub clean on hand-off");
        assert_eq!(report.residue_violations, 0);
        assert_eq!(report.lost_cors, 0);
        assert_eq!(
            report.ok + report.fail_closed,
            report.sessions,
            "every session completes or fails closed"
        );
        assert!(report.ok > 0, "peer region serves the migrated and displaced sessions");
        assert!(report.outcomes.iter().all(|o| o.success || o.fail_closed));
        let bytes = simulated(&report);
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(&bytes, r, "simulated aggregate diverged at {workers} workers"),
        }
    }
}

/// Rolling upgrade: one node drains per wave; every session lands on a
/// serving node (or migrates off the draining one) and the fleet never
/// loses a cor.
#[test]
fn rolling_upgrade_drains_one_wave_at_a_time() {
    let plan = ChaosPlan::canned("rolling-upgrade").expect("canned plan");
    let mut cfg = FleetConfig::new(16, 2);
    cfg.regions = 2;
    let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("runs");
    assert!(report.region_mode);
    assert!(report.migrations > 0, "sessions admitted to a draining node migrate off it");
    assert!(report.evacuations > 0, "a planned drain is an evacuation");
    assert_eq!(report.migration_residue, 0);
    assert_eq!(report.lost_cors, 0);
    assert_eq!(report.ok + report.fail_closed, report.sessions);
    assert!(report.ok > 0);
}

/// The `no_region` fail-closed path: drain every node so a checkpointed
/// session has nowhere admissible to resume. It must fail closed with a
/// scrubbed heap, never serve from an inadmissible node.
#[test]
fn no_admissible_target_fails_closed_as_no_region() {
    use tinman::chaos::ChaosEvent;
    let mut plan = ChaosPlan::empty();
    plan.events = (0..4)
        .map(|node| ChaosEvent::NodeDrain { node, from_session: 0, until_session: u64::MAX })
        .collect();
    let mut cfg = FleetConfig::new(6, 2);
    cfg.regions = 2;
    let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).expect("runs");
    // A session whose node work all lands before the drain deadline may
    // legitimately complete; every other one must fail closed as a
    // no_region kill — no third outcome.
    assert_eq!(report.ok + report.fail_closed, report.sessions);
    assert!(report.fail_closed > 0, "drained sessions with no target fail closed");
    assert!(report.no_region_kills > 0, "checkpointed sessions with no target fail as no_region");
    assert_eq!(
        report.no_region_kills, report.fail_closed,
        "every failure here is a no_region kill"
    );
    assert_eq!(report.migration_residue, 0, "even abandoned migrations scrub clean");
    assert_eq!(report.residue_violations, 0);
    assert!(report.outcomes.iter().all(|o| o.success ^ o.fail_closed));
}

/// Region mode surfaces the five new report keys; flat mode never does.
#[test]
fn region_keys_are_gated_on_region_mode() {
    let mut cfg = FleetConfig::new(6, 2);
    cfg.regions = 2;
    let region = run_fleet_chaos(&cfg, &ChaosPlan::empty(), &FleetObs::default()).expect("runs");
    let bytes = simulated(&region);
    for key in [
        "\"migrations\"",
        "\"evacuations\"",
        "\"region_failovers\"",
        "\"migration_residue\"",
        "\"no_region_kills\"",
    ] {
        assert!(bytes.contains(key), "{key} missing from region report: {bytes}");
    }
    let flat = run_fleet_chaos(&FleetConfig::new(6, 2), &ChaosPlan::empty(), &FleetObs::default())
        .expect("runs");
    assert!(!simulated(&flat).contains("\"migrations\""));
}

// ---------- arbitrary membership plans ----------

use proptest::prelude::*;

proptest! {
    // Fleet runs are heavy; a handful of arbitrary plans per test run
    // keeps the suite fast while the seed corpus accumulates coverage.
    #![cases(6)]

    /// The robustness property: under ANY combination of membership
    /// change (drains, region outages, rolling upgrade waves, flapping
    /// rejoins) interleaved with existing chaos families, every session
    /// completes or fails closed, no outcome leaves cor residue on any
    /// surface (device, node heap, migration checkpoint), no cor is
    /// ever lost, and the simulated report is byte-identical across
    /// worker counts.
    #[test]
    fn arbitrary_membership_plans_complete_or_fail_closed(
        families in any::<u8>(),
        drain in (0usize..4, 0u64..4, 1u64..4),
        outage in (0u32..2, 0u64..4, 1u64..4),
        wave in (1u64..3, 0u64..3),
        flap in (0usize..4, 1u64..3, 0u64..3, 2u64..6),
        lag in (0usize..4, 1u64..3),
    ) {
        use tinman::chaos::ChaosEvent;

        // Always at least one drain (the migration path must be on the
        // table in every case); the low bits of `families` layer the
        // other membership families and a vault-lag interleaving on top.
        let (dn, df, dl) = drain;
        let mut events =
            vec![ChaosEvent::NodeDrain { node: dn, from_session: df, until_session: df + dl }];
        if families & 1 != 0 {
            let (region, from, len) = outage;
            events.push(ChaosEvent::RegionOutage {
                region,
                from_session: from,
                until_session: from + len,
            });
        }
        if families & 2 != 0 {
            let (wave_sessions, from_session) = wave;
            events.push(ChaosEvent::RollingUpgrade { wave_sessions, from_session });
        }
        if families & 4 != 0 {
            let (node, period_sessions, from, len) = flap;
            events.push(ChaosEvent::RejoinFlap {
                node,
                period_sessions,
                from_session: from,
                until_session: from + len,
            });
        }
        if families & 8 != 0 {
            let (node, lsns) = lag;
            events.push(ChaosEvent::ReplicaLag {
                node,
                lsns,
                from_session: 0,
                until_session: 6,
            });
        }
        let mut plan = ChaosPlan::empty();
        plan.events = events;

        let mut reference: Option<String> = None;
        for workers in [1usize, 4] {
            let mut cfg = FleetConfig::new(6, workers);
            cfg.regions = 2;
            let report = run_fleet_chaos(&cfg, &plan, &FleetObs::default()).unwrap();
            prop_assert_eq!(
                report.ok + report.fail_closed,
                report.sessions,
                "every session completes or fails closed"
            );
            prop_assert_eq!(report.residue_violations, 0, "no cor residue on any surface");
            prop_assert_eq!(report.migration_residue, 0, "migration hand-offs scrub clean");
            prop_assert_eq!(report.lost_cors, 0, "no cor is ever lost");
            let bytes = simulated(&report);
            match &reference {
                None => reference = Some(bytes),
                Some(r) => prop_assert_eq!(&bytes, r, "report diverged at {} workers", workers),
            }
        }
    }
}

/// Membership is a pure replay — spot-check the exposed state machine
/// through the facade (the `fleet::membership` unit tests own the
/// exhaustive walks).
#[test]
fn membership_states_expose_stable_names() {
    for (state, name) in [
        (MembershipState::Serving, "serving"),
        (MembershipState::Draining, "draining"),
        (MembershipState::Down, "down"),
        (MembershipState::CatchingUp, "catching_up"),
        (MembershipState::Evacuated, "evacuated"),
        (MembershipState::Decommissioned, "decommissioned"),
    ] {
        assert_eq!(state.as_str(), name);
    }
}
